//! Cross-crate integration tests at the workspace root: exercise seams
//! between the substrates that no single crate's tests cover.

use faaswild::cloud::behavior::Behavior;
use faaswild::cloud::platform::{CloudPlatform, DeploySpec, PlatformConfig};
use faaswild::dns::pdns::SharedPdns;
use faaswild::dns::resolver::Resolver;
use faaswild::dns::wire::{Message, QType, Rcode};
use faaswild::http::client::{ClientConfig, HttpClient, SimDialer};
use faaswild::http::url::Url;
use faaswild::net::{FaultConfig, SimNet};
use faaswild::probe::prober::{ProbeConfig, Prober};
use faaswild::types::{ProviderId, Rdata, RecordType};
use parking_lot::RwLock;
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

fn world() -> (CloudPlatform, SimNet, Arc<RwLock<Resolver>>, SharedPdns) {
    let net = SimNet::new(3);
    let resolver = Arc::new(RwLock::new(Resolver::new()));
    let pdns = SharedPdns::new();
    resolver.write().set_sensor(Arc::new(pdns.clone()));
    let platform = CloudPlatform::new(net.clone(), resolver.clone(), PlatformConfig::default());
    (platform, net, resolver, pdns)
}

/// DNS sensor → PDNS → identification: a probe's own resolutions land in
/// the store and identify back to the right provider.
#[test]
fn probe_resolutions_feed_pdns_and_identify() {
    let (platform, net, resolver, pdns) = world();
    let d = platform
        .deploy(DeploySpec::new(
            ProviderId::Google2,
            Behavior::JsonApi {
                service: "sensed".into(),
            },
        ))
        .unwrap();
    let prober = Prober::new(
        net,
        resolver,
        ProbeConfig {
            timeout: Duration::from_millis(500),
            workers: 1,
            ..ProbeConfig::default()
        },
    );
    let rec = prober.probe_one(&d.fqdn);
    assert_eq!(rec.outcome.status(), Some(200));

    let store = pdns.lock();
    let agg = store.aggregate(&d.fqdn).expect("sensed by the resolver");
    assert!(agg.total_request_cnt >= 1);
    let report = faaswild::core::identify::identify_functions(&*store);
    assert_eq!(report.functions.len(), 1);
    assert_eq!(report.functions[0].provider, ProviderId::Google2);
}

/// Wire-format DNS against the platform's zones: an A query for a
/// deployed Aliyun function returns the CNAME chain; a deleted Tencent
/// function returns NXDOMAIN on the wire.
#[test]
fn wire_dns_against_platform_zones() {
    let (platform, _net, resolver, _pdns) = world();
    let aliyun = platform
        .deploy(DeploySpec::new(ProviderId::Aliyun, Behavior::EmptyOk))
        .unwrap();
    let tencent = platform
        .deploy(DeploySpec::new(ProviderId::Tencent, Behavior::EmptyOk))
        .unwrap();
    platform.delete(&tencent.fqdn);

    let q = Message::query(9, aliyun.fqdn.clone(), QType::A).encode();
    let resp = Message::decode(&resolver.write().serve_wire(&q, 0).unwrap()).unwrap();
    assert_eq!(Rcode::from_code(resp.flags.rcode), Rcode::NoError);
    assert!(resp.answers.len() >= 2, "cname chain: {:?}", resp.answers);

    let q = Message::query(10, tencent.fqdn.clone(), QType::A).encode();
    let resp = Message::decode(&resolver.write().serve_wire(&q, 0).unwrap()).unwrap();
    assert_eq!(Rcode::from_code(resp.flags.rcode), Rcode::NxDomain);
}

/// The prober under an adverse network (smoltcp-style fault injection):
/// results degrade to Unreachable/timeout but never panic, and the
/// ethics budget holds.
#[test]
fn prober_survives_adverse_network() {
    let (platform, net, resolver, _pdns) = world();
    let mut domains = Vec::new();
    for i in 0..12 {
        let d = platform
            .deploy(DeploySpec::new(
                ProviderId::Aws,
                Behavior::JsonApi {
                    service: format!("s{i}"),
                },
            ))
            .unwrap();
        domains.push(d.fqdn);
    }
    net.set_faults(FaultConfig {
        drop_chance: 0.3,
        corrupt_chance: 0.2,
        reset_chance: 0.1,
        refuse_chance: 0.1,
        delay_us: 10,
    });
    let prober = Prober::new(
        net,
        resolver,
        ProbeConfig {
            timeout: Duration::from_millis(80),
            workers: 4,
            ..ProbeConfig::default()
        },
    );
    let records = prober.probe_all(&domains);
    assert_eq!(records.len(), 12);
    for rec in &records {
        assert!(rec.requests_issued <= 3, "ethics budget violated: {rec:?}");
    }
    // With 30% chunk drops some probes fail; the run itself is total.
    let reachable = records.iter().filter(|r| r.outcome.is_reachable()).count();
    assert!(reachable <= 12);
}

/// Billing and cold starts metered through the real HTTP path, including
/// the keep-alive idle-expiry boundary.
#[test]
fn billing_and_cold_starts_through_http() {
    let (platform, net, resolver, _pdns) = world();
    let mut spec = DeploySpec::new(
        ProviderId::Tencent,
        Behavior::JsonApi {
            service: "billed".into(),
        },
    );
    spec.memory_mb = Some(512);
    spec.exec_ms = Some(2_000); // 1 GB-s per warm invocation
    let d = platform.deploy(spec).unwrap();

    let ip = {
        let res = resolver.write().resolve(&d.fqdn, RecordType::A, 0).unwrap();
        match res.addresses()[0] {
            Rdata::V4(ip) => ip,
            _ => unreachable!(),
        }
    };
    let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
    let url = Url::for_domain(d.fqdn.as_str(), true);
    for i in 0..4 {
        let resp = client
            .get_url(SocketAddr::new(IpAddr::V4(ip), 443), &url)
            .unwrap();
        assert_eq!(resp.status, 200);
        if i == 1 {
            // Expire the warm environment.
            platform.advance_ms(10_000_000);
        } else {
            platform.advance_ms(1_000);
        }
    }
    let usage = platform.with_billing(|b| b.usage(&d.fqdn));
    assert_eq!(usage.invocations, 4);
    // Two cold starts (first invocation + after expiry) add cold-start
    // execution time on top of 4 × 1 GB-s.
    assert!(usage.gb_seconds > 4.0, "gb_seconds = {}", usage.gb_seconds);
    let stats = platform.stats();
    assert_eq!(
        stats.cold_starts.load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    assert_eq!(
        stats.warm_starts.load(std::sync::atomic::Ordering::Relaxed),
        2
    );
}

/// Anycast vs. regional ingress: Google resolves identically everywhere,
/// AWS functions in different regions resolve to different ingress
/// nodes, and the resolved addresses actually serve the right function.
#[test]
fn regional_vs_anycast_ingress_serve_correctly() {
    let (platform, net, resolver, _pdns) = world();
    let a = platform
        .deploy(
            DeploySpec::new(
                ProviderId::Aws,
                Behavior::JsonApi {
                    service: "east".into(),
                },
            )
            .in_region("us-east-1"),
        )
        .unwrap();
    let b = platform
        .deploy(
            DeploySpec::new(
                ProviderId::Aws,
                Behavior::JsonApi {
                    service: "tokyo".into(),
                },
            )
            .in_region("ap-northeast-1"),
        )
        .unwrap();
    let resolve = |fqdn: &faaswild::types::Fqdn| {
        let res = resolver.write().resolve(fqdn, RecordType::A, 0).unwrap();
        match res.addresses()[0] {
            Rdata::V4(ip) => ip,
            _ => unreachable!(),
        }
    };
    let (ip_a, ip_b) = (resolve(&a.fqdn), resolve(&b.fqdn));
    assert_ne!(ip_a, ip_b, "regional ingress differs across regions");

    // Each resolved ingress serves its own function by Host header.
    let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
    for (fqdn, ip, marker) in [(&a.fqdn, ip_a, "east"), (&b.fqdn, ip_b, "tokyo")] {
        let url = Url::for_domain(fqdn.as_str(), true);
        let resp = client
            .get_url(SocketAddr::new(IpAddr::V4(ip), 443), &url)
            .unwrap();
        assert!(resp.body_text().contains(marker));
    }
}

/// §6's "Warmonger" concern: egress IPs are a *shared* per-region pool,
/// so two unrelated tenants' functions emit traffic from overlapping
/// addresses — blocklisting one tenant's egress IP collaterally damages
/// the other. Demonstrated through real HTTP responses of two proxies.
#[test]
fn shared_egress_pool_across_tenants() {
    let (platform, net, resolver, _pdns) = world();
    let tenant_a = platform
        .deploy(DeploySpec::new(ProviderId::Aws, Behavior::VpnProxy).in_region("eu-west-1"))
        .unwrap();
    let tenant_b = platform
        .deploy(DeploySpec::new(ProviderId::Aws, Behavior::VpnProxy).in_region("eu-west-1"))
        .unwrap();
    let other_region = platform
        .deploy(DeploySpec::new(ProviderId::Aws, Behavior::VpnProxy).in_region("sa-east-1"))
        .unwrap();

    let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
    let egress_of = |fqdn: &faaswild::types::Fqdn| -> std::collections::HashSet<String> {
        let res = resolver.write().resolve(fqdn, RecordType::A, 0).unwrap();
        let Rdata::V4(ip) = res.addresses()[0] else {
            unreachable!()
        };
        let url = Url::for_domain(fqdn.as_str(), true);
        let mut ips = std::collections::HashSet::new();
        for _ in 0..16 {
            let resp = client
                .get_url(SocketAddr::new(IpAddr::V4(ip), 443), &url)
                .unwrap();
            // VpnProxy reports its egress: {"egress":"34.x.y.z",...}
            let body = resp.body_text();
            let egress = body
                .split("\"egress\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("egress in body")
                .to_string();
            ips.insert(egress);
        }
        ips
    };
    let a_ips = egress_of(&tenant_a.fqdn);
    let b_ips = egress_of(&tenant_b.fqdn);
    let far_ips = egress_of(&other_region.fqdn);
    // Same region → shared pool (full overlap in the simulator).
    assert!(
        !a_ips.is_disjoint(&b_ips),
        "same-region tenants share egress"
    );
    // Different region → disjoint pools.
    assert!(
        a_ips.is_disjoint(&far_ips),
        "regions have distinct egress pools"
    );
    // Rotation actually happens.
    assert!(
        a_ips.len() > 1,
        "egress rotates across invocations: {a_ips:?}"
    );
}

/// The full workload → pipeline path stays consistent for a different
/// seed (determinism is per-seed, results structurally stable across
/// seeds).
#[test]
fn pipeline_stable_across_seeds() {
    use faaswild::core::pipeline::Pipeline;
    for seed in [1u64, 99] {
        let w = faaswild::workload::World::generate(faaswild::workload::WorldConfig {
            seed,
            scale: 0.001,
            deploy_live: false,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        });
        let report = Pipeline::run_usage(&w.pdns);
        assert_eq!(report.identification.functions.len(), w.functions.len());
        assert!(report.invocation.frac_under_5 > 0.6);
        assert!(report.invocation.frac_single_day > 0.6);
    }
}
