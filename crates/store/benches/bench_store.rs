//! Criterion benches for the storage engine: sharded ingest, segment
//! encode/decode, snapshot save (flush+compact) / load (open), and
//! full-scan throughput — the paths that gate snapshot replay speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fw_dns::pdns::PdnsBackend;
use fw_store::{DiskStore, SegmentBuilder, StoreConfig};
use fw_types::{DayStamp, Fqdn, Rdata, MEASUREMENT_START};
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic synthetic PDNS row stream (no RNG dependency).
fn rows(n: usize) -> Vec<(Fqdn, Rdata, DayStamp, u64)> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let fqdn = Fqdn::parse(&format!("f{}.lambda-url.us-east-1.on.aws", state % 5_000)).unwrap();
        let rdata = Rdata::V4(Ipv4Addr::new(
            198,
            51,
            (state >> 16) as u8 % 4,
            (state >> 24) as u8,
        ));
        let day = MEASUREMENT_START + ((state >> 32) % 731) as i64;
        out.push((fqdn, rdata, day, state % 9 + 1));
    }
    out
}

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fw-store-bench-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn bench_ingest(c: &mut Criterion) {
    let data = rows(50_000);
    let mut group = c.benchmark_group("store_ingest");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("observe_50k_rows_16_shards", |b| {
        b.iter(|| {
            let dir = scratch("ingest");
            let store = DiskStore::create(
                &dir,
                StoreConfig {
                    shards: 16,
                    flush_rows: 0,
                },
            )
            .unwrap();
            for (f, r, d, cnt) in &data {
                store.observe_count(f, r, *d, *cnt);
            }
            let n = store.record_count();
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_segment_codec(c: &mut Criterion) {
    let data = rows(50_000);
    let encoded = {
        let mut b = SegmentBuilder::new();
        for (f, r, d, cnt) in &data {
            b.push(f, r, *d, *cnt);
        }
        b.finish().unwrap()
    };
    let mut group = c.benchmark_group("segment_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_50k_rows", |b| {
        b.iter(|| {
            let mut builder = SegmentBuilder::new();
            for (f, r, d, cnt) in &data {
                builder.push(f, r, *d, *cnt);
            }
            black_box(builder.finish().unwrap().len())
        })
    });
    group.bench_function("decode_50k_rows", |b| {
        b.iter(|| black_box(fw_store::decode_segment(&encoded).unwrap().rows.len()))
    });
    group.finish();
}

fn bench_snapshot_save_load(c: &mut Criterion) {
    let data = rows(50_000);
    let mut group = c.benchmark_group("snapshot");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("save_50k_rows", |b| {
        b.iter(|| {
            let dir = scratch("save");
            let store = DiskStore::create(
                &dir,
                StoreConfig {
                    shards: 16,
                    flush_rows: 0,
                },
            )
            .unwrap();
            for (f, r, d, cnt) in &data {
                store.observe_count(f, r, *d, *cnt);
            }
            store.flush().unwrap();
            store.compact().unwrap();
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        })
    });

    // One persisted store reused across load iterations.
    let dir = scratch("load");
    {
        let store = DiskStore::create(
            &dir,
            StoreConfig {
                shards: 16,
                flush_rows: 0,
            },
        )
        .unwrap();
        for (f, r, d, cnt) in &data {
            store.observe_count(f, r, *d, *cnt);
        }
        store.flush().unwrap();
        store.compact().unwrap();
    }
    group.bench_function("load_50k_rows", |b| {
        b.iter(|| black_box(DiskStore::open_read_only(&dir).unwrap().record_count()))
    });

    let store = DiskStore::open_read_only(&dir).unwrap();
    group.bench_function("full_scan_50k_rows", |b| {
        b.iter(|| {
            let mut total = 0u64;
            store.for_each_row(&mut |_f, _t, _r, _d, cnt| total += cnt);
            black_box(total)
        })
    });
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
    group.finish();
}

fn bench_varint_decode(c: &mut Criterion) {
    // Mixed-width varints shaped like real segment columns: mostly 1-2
    // byte counts/deltas with a long tail of wide values.
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    let mut values = Vec::with_capacity(100_000);
    for _ in 0..100_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let width = state % 10;
        values.push(if width < 6 {
            state % 128
        } else if width < 9 {
            state % (1 << 14)
        } else {
            state % (1 << 40)
        });
    }
    let mut encoded = Vec::new();
    for v in &values {
        fw_store::codec::put_uvarint(&mut encoded, *v);
    }

    let mut group = c.benchmark_group("varint_decode");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("scalar_100k", |b| {
        b.iter(|| {
            let mut r = fw_store::codec::Reader::new(&encoded);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(r.uvarint().unwrap());
            }
            black_box(sum)
        })
    });
    group.bench_function("swar_100k", |b| {
        b.iter(|| {
            let mut r = fw_store::codec::Reader::new(&encoded);
            let mut sum = 0u64;
            for _ in 0..values.len() {
                sum = sum.wrapping_add(r.uvarint_swar().unwrap());
            }
            black_box(sum)
        })
    });
    group.bench_function("swar_batch4_100k", |b| {
        b.iter(|| {
            let mut r = fw_store::codec::Reader::new(&encoded);
            let mut sum = 0u64;
            for _ in 0..values.len() / 4 {
                for v in r.uvarint4().unwrap() {
                    sum = sum.wrapping_add(v);
                }
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_mmap_scan(c: &mut Criterion) {
    // One compacted shard (single sorted segment), scanned through the
    // mmap-backed visitor path the fused pipeline runs per shard.
    let data = rows(50_000);
    let dir = scratch("mmap-scan");
    {
        let store = DiskStore::create(
            &dir,
            StoreConfig {
                shards: 1,
                flush_rows: 0,
            },
        )
        .unwrap();
        for (f, r, d, cnt) in &data {
            store.observe_count(f, r, *d, *cnt);
        }
        store.flush().unwrap();
        store.compact().unwrap();
    }
    let mut group = c.benchmark_group("mmap_scan");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("scan_shard_visit_50k_rows", |b| {
        b.iter(|| {
            let mut aggs = 0usize;
            let mut total = 0u64;
            fw_store::scan_shard_visit(
                &dir,
                0,
                &mut |_agg| aggs += 1,
                Some(&mut |_f, _r, _d, cnt| total += cnt),
            )
            .unwrap();
            black_box((aggs, total))
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_segment_codec,
    bench_snapshot_save_load,
    bench_varint_decode,
    bench_mmap_scan
);
criterion_main!(benches);
