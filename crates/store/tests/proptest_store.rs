//! Property tests for the segment codec: encode → decode is lossless up
//! to the documented canonicalization (sorting + duplicate-key merge),
//! and any truncation or byte corruption of an encoded segment is
//! rejected rather than mis-decoded.

use fw_store::{decode_segment, SegRow, SegmentBuilder};
use fw_types::{DayStamp, Fqdn, Rdata, MEASUREMENT_START};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A compact row spec the strategies generate: small index spaces force
/// both dictionary reuse and duplicate-key merging.
type RowSpec = (u8, u8, u16, u16, u32);

/// Strategy for one [`RowSpec`] (the vendored proptest shim has no
/// tuple `Arbitrary`, so the tuple-of-strategies form is used).
fn row_spec() -> impl Strategy<Value = RowSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
    )
}

fn materialize(rows: &[RowSpec]) -> Vec<(Fqdn, Rdata, DayStamp, u64)> {
    rows.iter()
        .map(|&(f, r, day, host, cnt)| {
            let fqdn = Fqdn::parse(&format!("fn{f}.lambda-url.us-east-1.on.aws")).unwrap();
            let rdata = match r % 3 {
                0 => Rdata::V4(Ipv4Addr::new(198, 51, 100, r)),
                1 => Rdata::V6(format!("2001:db8::{:x}", u16::from(r) + 1).parse().unwrap()),
                _ => Rdata::Name(Fqdn::parse(&format!("edge{host}.a.run.app")).unwrap()),
            };
            (
                fqdn,
                rdata,
                MEASUREMENT_START + i64::from(day % 731),
                u64::from(cnt) + 1,
            )
        })
        .collect()
}

/// The canonical view of a row set: `(fqdn, rdata, pdate) → total cnt`.
fn canonical(rows: &[(Fqdn, Rdata, DayStamp, u64)]) -> HashMap<(Fqdn, Rdata, i64), u64> {
    let mut out = HashMap::new();
    for (f, r, d, c) in rows {
        *out.entry((f.clone(), r.clone(), d.0)).or_insert(0) += c;
    }
    out
}

fn decoded_canonical(bytes: &[u8]) -> HashMap<(Fqdn, Rdata, i64), u64> {
    let seg = decode_segment(bytes).expect("valid segment decodes");
    let mut out = HashMap::new();
    for SegRow {
        fqdn,
        pdate,
        rdata,
        cnt,
    } in seg.rows
    {
        let prev = out.insert(
            (
                seg.fqdns[fqdn as usize].clone(),
                seg.rdatas[rdata as usize].clone(),
                pdate.0,
            ),
            cnt,
        );
        assert!(prev.is_none(), "decoded segment repeated a row key");
    }
    out
}

fn encode(rows: &[(Fqdn, Rdata, DayStamp, u64)]) -> Vec<u8> {
    let mut b = SegmentBuilder::new();
    for (f, r, d, c) in rows {
        b.push(f, r, *d, *c);
    }
    b.finish().expect("non-empty segment")
}

proptest! {
    /// Encode → decode reproduces exactly the canonical row multiset.
    #[test]
    fn roundtrip_is_lossless(spec in proptest::collection::vec(row_spec(), 1..120)) {
        let rows = materialize(&spec);
        let bytes = encode(&rows);
        prop_assert_eq!(decoded_canonical(&bytes), canonical(&rows));
    }

    /// Decoded rows come back sorted by `(fqdn, pdate, rdata)`.
    #[test]
    fn decoded_rows_are_sorted(spec in proptest::collection::vec(row_spec(), 1..80)) {
        let rows = materialize(&spec);
        let seg = decode_segment(&encode(&rows)).unwrap();
        let keys: Vec<(String, i64, u32)> = seg
            .rows
            .iter()
            .map(|r| (seg.fqdns[r.fqdn as usize].as_str().to_string(), r.pdate.0, r.rdata))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted);
    }

    /// Any strict prefix of a segment fails to decode.
    #[test]
    fn truncation_rejected(
        spec in proptest::collection::vec(row_spec(), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode(&materialize(&spec));
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_segment(&bytes[..cut]).is_err());
    }

    /// Any single corrupted byte fails to decode (whole-file CRC plus
    /// per-block CRCs and magics leave no unprotected byte).
    #[test]
    fn corruption_rejected(
        spec in proptest::collection::vec(row_spec(), 1..40),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode(&materialize(&spec));
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        prop_assert!(decode_segment(&bytes).is_err(), "flip at {} survived", pos);
    }

    /// SWAR batch uvarint decode ≡ the scalar `Reader` on encoded value
    /// streams spanning every varint length (1..=10 bytes).
    #[test]
    fn swar_uvarint_matches_scalar_on_encoded_streams(
        seeds in proptest::collection::vec((any::<u64>(), 0u32..64), 1..200),
    ) {
        // Shift each raw seed by a random bit width so short and long
        // varints are equally likely.
        let values: Vec<u64> = seeds.iter().map(|&(v, s)| v >> s).collect();
        let mut buf = Vec::new();
        for &v in &values {
            fw_store::codec::put_uvarint(&mut buf, v);
        }
        let mut scalar = fw_store::codec::Reader::new(&buf);
        let mut swar = fw_store::codec::Reader::new(&buf);
        for &v in &values {
            prop_assert_eq!(scalar.uvarint().unwrap(), v);
            prop_assert_eq!(swar.uvarint_swar().unwrap(), v);
        }
        prop_assert!(scalar.is_empty());
        prop_assert!(swar.is_empty());
    }

    /// SWAR and scalar decode accept/reject exactly the same arbitrary
    /// byte strings: same values, same errors, in lockstep until the
    /// buffer is exhausted.
    #[test]
    fn swar_uvarint_matches_scalar_on_random_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut scalar = fw_store::codec::Reader::new(&bytes);
        let mut swar = fw_store::codec::Reader::new(&bytes);
        loop {
            let done = scalar.is_empty();
            prop_assert_eq!(done, swar.is_empty());
            if done {
                break;
            }
            match (scalar.uvarint(), swar.uvarint_swar()) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => {
                    prop_assert_eq!(a.to_string(), b.to_string());
                    break;
                }
                (a, b) => prop_assert!(false, "scalar {:?} vs swar {:?}", a, b),
            }
        }
    }
}
