//! The persistent sharded store.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/superblock.fws          versioned superblock (magic, shard count, CRC)
//! <dir>/shard-000/seg-00000001.fws
//! <dir>/shard-000/seg-00000002.fws
//! <dir>/shard-001/...
//! ```
//!
//! Ingestion is lock-striped: an fqdn hashes (FNV-1a, stable across
//! processes) to one of N shards, each behind its own mutex, so
//! concurrent sensors contend only when they touch the same shard.
//! Each shard keeps a merged in-memory table (the query view) plus
//! per-row flush watermarks; `flush` writes the unflushed deltas as one
//! immutable sorted segment. Reopening a store replays all segments,
//! summing duplicate `(fqdn, rdata, pdate)` keys, which makes segments
//! append-only and crash-tolerant: a half-written segment fails its CRC
//! and is reported, never silently merged. `compact` rewrites each
//! shard's flushed state as a single segment and deletes the rest.

use crate::segment::{read_segment, SegmentBuilder};
use crate::{StoreConfig, StoreError};
use fw_dns::pdns::{FqdnAggregate, PdnsBackend};
use fw_types::fnv::FnvBuildHasher;
use fw_types::{DayStamp, Fqdn, Rdata, RecordType};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

const SUPER_MAGIC: &[u8; 8] = b"FWSUPER\x01";
const SUPER_VERSION: u32 = 1;
const SUPERBLOCK: &str = "superblock.fws";

#[derive(Debug, Clone, Copy)]
struct Row {
    pdate: i64,
    rdata: u32,
    cnt: u64,
    /// How much of `cnt` is already durable in some segment.
    flushed: u64,
}

#[derive(Debug, Default)]
struct Entry {
    rdatas: Vec<Rdata>,
    rdata_idx: HashMap<Rdata, u32, FnvBuildHasher>,
    rows: Vec<Row>,
    /// `(pdate, rdata_idx) → position in rows`: exact-key merge.
    row_idx: HashMap<(i64, u32), u32, FnvBuildHasher>,
    dirty: bool,
}

impl Entry {
    fn intern(&mut self, rdata: &Rdata) -> u32 {
        if let Some(&i) = self.rdata_idx.get(rdata) {
            return i;
        }
        let i = self.rdatas.len() as u32;
        self.rdatas.push(rdata.clone());
        self.rdata_idx.insert(rdata.clone(), i);
        i
    }

    /// Rebuild `row_idx` from `rows`. Segment replay skips building the
    /// merge index for fqdns loaded from a single segment (the common
    /// case after compaction); anything that merges into an existing
    /// entry calls this first.
    fn ensure_row_idx(&mut self) {
        if self.row_idx.is_empty() && !self.rows.is_empty() {
            self.row_idx = self
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| ((r.pdate, r.rdata), i as u32))
                .collect();
        }
    }
}

#[derive(Debug)]
struct Shard {
    /// This shard's index, for trace labels and per-shard stats.
    idx: usize,
    dir: PathBuf,
    /// FNV-keyed: ingest does two lookups per observed row and SipHash
    /// was a measurable slice of single-core ingest wall time.
    table: HashMap<Fqdn, Entry, FnvBuildHasher>,
    /// Distinct `(fqdn, rdata, pdate)` keys.
    rows: usize,
    /// Rows with an unflushed delta.
    pending: usize,
    /// Fqdns with unflushed deltas (each appears once: guarded by
    /// `Entry::dirty`).
    dirty: Vec<Fqdn>,
    next_seg: u64,
    segments: Vec<PathBuf>,
    /// Lifetime flush count (segments written by `flush`).
    flushes: u64,
    /// Wall nanoseconds spent inside `flush`.
    flush_ns: u64,
    /// Duration of every individual flush, for tail-latency (p99)
    /// accounting in the gate report.
    flush_samples_ns: Vec<u64>,
    /// Segment bytes written by this shard (flush + compact).
    bytes_written: u64,
}

impl Shard {
    fn observe(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        // Two cheap FNV lookups instead of `entry(fqdn.clone())`: the
        // entry API would clone (allocate) the key on every observed
        // row, not just on first sight.
        if !self.table.contains_key(fqdn) {
            self.table.insert(fqdn.clone(), Entry::default());
        }
        let entry = self.table.get_mut(fqdn).expect("key just ensured");
        entry.ensure_row_idx();
        let idx = entry.intern(rdata);
        let key = (day.0, idx);
        let was_clean;
        match entry.row_idx.get(&key) {
            Some(&pos) => {
                let row = &mut entry.rows[pos as usize];
                was_clean = row.cnt == row.flushed;
                row.cnt += count;
            }
            None => {
                entry.row_idx.insert(key, entry.rows.len() as u32);
                entry.rows.push(Row {
                    pdate: day.0,
                    rdata: idx,
                    cnt: count,
                    flushed: 0,
                });
                self.rows += 1;
                was_clean = true;
            }
        }
        if was_clean {
            self.pending += 1;
        }
        if !entry.dirty {
            entry.dirty = true;
            self.dirty.push(fqdn.clone());
        }
    }

    /// [`observe`](Self::observe) for a batch of rows sharing one fqdn:
    /// the table lookup and dirty bookkeeping are paid once per batch
    /// instead of once per row. Row-for-row equivalent to calling
    /// `observe` in iteration order (zero counts are skipped there by
    /// the caller, here by the loop).
    fn observe_rows<'r>(
        &mut self,
        fqdn: &Fqdn,
        rows: impl Iterator<Item = (&'r Rdata, DayStamp, u64)>,
    ) -> u64 {
        let mut observed = 0u64;
        let mut new_rows = 0usize;
        let mut newly_pending = 0usize;
        let mut any = false;
        if !self.table.contains_key(fqdn) {
            self.table.insert(fqdn.clone(), Entry::default());
        }
        let entry = self.table.get_mut(fqdn).expect("key just ensured");
        entry.ensure_row_idx();
        for (rdata, day, count) in rows {
            if count == 0 {
                continue;
            }
            any = true;
            observed += 1;
            let idx = entry.intern(rdata);
            let key = (day.0, idx);
            let was_clean;
            match entry.row_idx.get(&key) {
                Some(&pos) => {
                    let row = &mut entry.rows[pos as usize];
                    was_clean = row.cnt == row.flushed;
                    row.cnt += count;
                }
                None => {
                    entry.row_idx.insert(key, entry.rows.len() as u32);
                    entry.rows.push(Row {
                        pdate: day.0,
                        rdata: idx,
                        cnt: count,
                        flushed: 0,
                    });
                    new_rows += 1;
                    was_clean = true;
                }
            }
            if was_clean {
                newly_pending += 1;
            }
        }
        if any && !entry.dirty {
            entry.dirty = true;
            self.dirty.push(fqdn.clone());
        }
        self.rows += new_rows;
        self.pending += newly_pending;
        observed
    }

    /// Write unflushed deltas as one segment. Returns bytes written.
    fn flush(&mut self) -> Result<u64, StoreError> {
        if self.pending == 0 {
            self.dirty.clear();
            return Ok(0);
        }
        let start = Instant::now();
        let _trace = fw_obs::trace_span_arg("store/flush", self.idx as u64);
        // `dirty`/`pending` bound the dictionary and row counts exactly,
        // so the builder never regrows mid-flush — this was the shard
        // flush tail-latency outlier at scale 1.0.
        let mut builder = SegmentBuilder::with_capacity(self.dirty.len(), self.pending);
        for fqdn in self.dirty.drain(..) {
            let entry = self.table.get_mut(&fqdn).expect("dirty fqdn in table");
            entry.dirty = false;
            for row in &mut entry.rows {
                if row.cnt > row.flushed {
                    builder.push(
                        &fqdn,
                        &entry.rdatas[row.rdata as usize],
                        DayStamp(row.pdate),
                        row.cnt - row.flushed,
                    );
                    row.flushed = row.cnt;
                }
            }
        }
        self.pending = 0;
        let Some(bytes) = builder.finish() else {
            return Ok(0);
        };
        let path = self.write_segment(&bytes)?;
        self.segments.push(path);
        self.flushes += 1;
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        self.flush_ns += elapsed_ns;
        self.flush_samples_ns.push(elapsed_ns);
        self.bytes_written += bytes.len() as u64;
        fw_obs::counter_inc!("fw.store.segments_written");
        fw_obs::counter_add!("fw.store.bytes_written", bytes.len() as u64);
        fw_obs::histogram_record!("fw.store.flush_us", start.elapsed().as_micros() as u64);
        Ok(bytes.len() as u64)
    }

    /// Rewrite the flushed state as a single segment; drop the others.
    fn compact(&mut self) -> Result<(), StoreError> {
        if self.segments.len() < 2 {
            return Ok(());
        }
        let _trace = fw_obs::trace_span_arg("store/compact_shard", self.idx as u64);
        let mut builder = SegmentBuilder::with_capacity(self.table.len(), self.rows);
        for (fqdn, entry) in &self.table {
            for row in &entry.rows {
                if row.flushed > 0 {
                    builder.push(
                        fqdn,
                        &entry.rdatas[row.rdata as usize],
                        DayStamp(row.pdate),
                        row.flushed,
                    );
                }
            }
        }
        let Some(bytes) = builder.finish() else {
            return Ok(());
        };
        let path = self.write_segment(&bytes)?;
        for old in std::mem::take(&mut self.segments) {
            std::fs::remove_file(&old)?;
        }
        self.segments.push(path);
        self.bytes_written += bytes.len() as u64;
        fw_obs::counter_inc!("fw.store.compactions");
        fw_obs::counter_add!("fw.store.bytes_written", bytes.len() as u64);
        Ok(())
    }

    /// Terminal write for an ingest-then-scan pipeline: encode the whole
    /// in-memory table as one segment and drop the incremental segments.
    /// Content-equivalent to `flush` + `compact`, but the data is
    /// encoded and written once — the staged sequence writes the pending
    /// deltas, then re-encodes every flushed row a second time.
    fn seal(&mut self) -> Result<(), StoreError> {
        if self.pending == 0 && self.segments.len() < 2 {
            self.dirty.clear();
            return Ok(());
        }
        let start = Instant::now();
        let _trace = fw_obs::trace_span_arg("store/seal", self.idx as u64);
        let had_pending = self.pending > 0;
        let mut builder = SegmentBuilder::for_distinct_fqdns(self.table.len(), self.rows);
        for (fqdn, entry) in &mut self.table {
            entry.dirty = false;
            let rdatas = &entry.rdatas;
            // Table keys are distinct, so the map-free per-fqdn push
            // applies (one dictionary clone per fqdn, no dedupe hashes).
            builder.push_fqdn_rows(
                fqdn,
                entry.rows.iter_mut().map(|row| {
                    row.flushed = row.cnt;
                    (&rdatas[row.rdata as usize], DayStamp(row.pdate), row.cnt)
                }),
            );
        }
        self.dirty.clear();
        self.pending = 0;
        let Some(bytes) = builder.finish() else {
            return Ok(());
        };
        let path = self.write_segment(&bytes)?;
        for old in std::mem::take(&mut self.segments) {
            std::fs::remove_file(&old)?;
        }
        self.segments.push(path);
        self.bytes_written += bytes.len() as u64;
        // The seal write retires the pending deltas, so it counts as a
        // flush in the ingest stats (tail-latency accounting included).
        if had_pending {
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            self.flushes += 1;
            self.flush_ns += elapsed_ns;
            self.flush_samples_ns.push(elapsed_ns);
            fw_obs::histogram_record!("fw.store.flush_us", start.elapsed().as_micros() as u64);
        }
        fw_obs::counter_inc!("fw.store.segments_written");
        fw_obs::counter_add!("fw.store.bytes_written", bytes.len() as u64);
        Ok(())
    }

    /// Durably write `bytes` as the next segment (tmp file + rename).
    fn write_segment(&mut self, bytes: &[u8]) -> Result<PathBuf, StoreError> {
        let name = format!("seg-{:08}.fws", self.next_seg);
        self.next_seg += 1;
        let tmp = self.dir.join(format!(".tmp-{name}"));
        let path = self.dir.join(name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Persistent, sharded, append-only PDNS store.
///
/// Implements [`PdnsBackend`], so the whole measurement pipeline runs
/// against it exactly as against the in-memory [`fw_dns::pdns::PdnsStore`].
pub struct DiskStore {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    flush_rows: usize,
    read_only: bool,
    /// First error from an auto-flush inside `observe_count` (which has
    /// no error channel); surfaced by the next explicit `flush`.
    deferred_err: Mutex<Option<StoreError>>,
}

impl DiskStore {
    /// Create a fresh store directory. Fails if one already exists there.
    pub fn create(dir: &Path, config: StoreConfig) -> Result<DiskStore, StoreError> {
        let shard_count = config.shards.clamp(1, 4096);
        if dir.join(SUPERBLOCK).exists() {
            return Err(StoreError::AlreadyExists(dir.to_path_buf()));
        }
        std::fs::create_dir_all(dir)?;
        let mut superblock = Vec::with_capacity(24);
        superblock.extend_from_slice(SUPER_MAGIC);
        superblock.extend_from_slice(&SUPER_VERSION.to_le_bytes());
        superblock.extend_from_slice(&(shard_count as u32).to_le_bytes());
        superblock.extend_from_slice(&0u32.to_le_bytes()); // flags
        superblock.extend_from_slice(&crate::crc32(&superblock).to_le_bytes());
        std::fs::write(dir.join(SUPERBLOCK), &superblock)?;

        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let shard_dir = dir.join(format!("shard-{i:03}"));
            std::fs::create_dir_all(&shard_dir)?;
            shards.push(Mutex::new(Shard {
                idx: i,
                dir: shard_dir,
                table: HashMap::default(),
                rows: 0,
                pending: 0,
                dirty: Vec::new(),
                next_seg: 1,
                segments: Vec::new(),
                flushes: 0,
                flush_ns: 0,
                flush_samples_ns: Vec::new(),
                bytes_written: 0,
            }));
        }
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            shards,
            flush_rows: config.flush_rows,
            read_only: false,
            deferred_err: Mutex::new(None),
        })
    }

    /// Open an existing store for appending.
    pub fn open(dir: &Path) -> Result<DiskStore, StoreError> {
        Self::open_inner(dir, false)
    }

    /// Open an existing store read-only (the snapshot replay path):
    /// `observe_count` panics rather than silently mutating a snapshot.
    pub fn open_read_only(dir: &Path) -> Result<DiskStore, StoreError> {
        Self::open_inner(dir, true)
    }

    fn open_inner(dir: &Path, read_only: bool) -> Result<DiskStore, StoreError> {
        let _span = fw_obs::span("store/open");
        let shard_count = read_superblock(dir)?;

        // Shards are independent on disk, so replay them concurrently —
        // on a multi-core host this takes open from O(total rows) to
        // O(largest shard).
        let loaded: Vec<Result<Shard, StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shard_count)
                .map(|i| scope.spawn(move || Self::load_shard(dir, i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard loader does not panic"))
                .collect()
        });
        let mut shards = Vec::with_capacity(shard_count);
        for shard in loaded {
            shards.push(Mutex::new(shard?));
        }

        Ok(DiskStore {
            dir: dir.to_path_buf(),
            shards,
            flush_rows: StoreConfig::default().flush_rows,
            read_only,
            deferred_err: Mutex::new(None),
        })
    }

    /// Replay one shard directory's segments into an in-memory table.
    fn load_shard(dir: &Path, i: usize) -> Result<Shard, StoreError> {
        let shard_dir = dir.join(format!("shard-{i:03}"));
        let seg_paths = shard_segment_paths(dir, i)?;
        let next_seg = seg_paths
            .iter()
            .filter_map(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n[4..n.len() - 4].parse::<u64>().ok())
            })
            .max()
            .unwrap_or(0)
            + 1;

        let mut shard = Shard {
            idx: i,
            dir: shard_dir,
            table: HashMap::default(),
            rows: 0,
            pending: 0,
            dirty: Vec::new(),
            next_seg,
            segments: seg_paths.clone(),
            flushes: 0,
            flush_ns: 0,
            flush_samples_ns: Vec::new(),
            bytes_written: 0,
        };
        for path in &seg_paths {
            let seg = read_segment(path)?;
            // Segment rows are sorted, so each fqdn forms one contiguous
            // run: resolve the table entry once per run, not per row.
            let rows = &seg.rows;
            let mut r = 0;
            while r < rows.len() {
                let fqdn_idx = rows[r].fqdn;
                let mut end = r + 1;
                while end < rows.len() && rows[end].fqdn == fqdn_idx {
                    end += 1;
                }
                let fqdn = &seg.fqdns[fqdn_idx as usize];
                let entry = shard.table.entry(fqdn.clone()).or_default();
                if entry.rows.is_empty() {
                    // First segment touching this fqdn. A builder-written
                    // run carries unique (pdate, rdata) keys, so append
                    // without maintaining the merge index; it is rebuilt
                    // on demand if another segment (or a later observe)
                    // touches this entry.
                    entry.rows.reserve(end - r);
                    for row in &rows[r..end] {
                        let idx = entry.intern(&seg.rdatas[row.rdata as usize]);
                        entry.rows.push(Row {
                            pdate: row.pdate.0,
                            rdata: idx,
                            cnt: row.cnt,
                            flushed: row.cnt,
                        });
                    }
                    shard.rows += end - r;
                } else {
                    entry.ensure_row_idx();
                    for row in &rows[r..end] {
                        let idx = entry.intern(&seg.rdatas[row.rdata as usize]);
                        let key = (row.pdate.0, idx);
                        match entry.row_idx.get(&key) {
                            Some(&pos) => {
                                let q = &mut entry.rows[pos as usize];
                                q.cnt += row.cnt;
                                q.flushed += row.cnt;
                            }
                            None => {
                                entry.row_idx.insert(key, entry.rows.len() as u32);
                                entry.rows.push(Row {
                                    pdate: row.pdate.0,
                                    rdata: idx,
                                    cnt: row.cnt,
                                    flushed: row.cnt,
                                });
                                shard.rows += 1;
                            }
                        }
                    }
                }
                r = end;
            }
        }
        Ok(shard)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total on-disk segment files across shards.
    pub fn segment_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().segments.len()).sum()
    }

    fn shard_of(&self, fqdn: &Fqdn) -> MutexGuard<'_, Shard> {
        // FNV-1a, stable across processes (unlike SipHash with a random
        // key) so a reopened store shards identically.
        let h = fw_types::fnv::fnv1a(fqdn.as_str().as_bytes());
        self.shards[(h % self.shards.len() as u64) as usize].lock()
    }

    /// Record `count` observations. Lock-striped: concurrent callers on
    /// different shards proceed in parallel.
    pub fn observe_count(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        if count == 0 {
            return;
        }
        assert!(
            !self.read_only,
            "observe_count on a read-only snapshot store"
        );
        fw_obs::counter_inc!("fw.store.ingest.rows");
        let mut shard = self.shard_of(fqdn);
        shard.observe(fqdn, rdata, day, count);
        if self.flush_rows > 0 && shard.pending >= self.flush_rows {
            if let Err(e) = shard.flush() {
                self.deferred_err.lock().get_or_insert(e);
            }
        }
    }

    /// Record a batch of observations sharing one fqdn under a single
    /// shard lock. Equivalent to [`observe_count`](Self::observe_count)
    /// once per element in iteration order, except the flush-threshold
    /// check runs once per batch — which can only shift *where* a
    /// flush-mode store cuts its pre-compaction segments, never the
    /// merged row content.
    pub fn observe_rows<'r>(
        &self,
        fqdn: &Fqdn,
        rows: impl Iterator<Item = (&'r Rdata, DayStamp, u64)>,
    ) {
        let mut rows = rows.filter(|(_, _, c)| *c > 0).peekable();
        if rows.peek().is_none() {
            return;
        }
        assert!(
            !self.read_only,
            "observe_rows on a read-only snapshot store"
        );
        let mut shard = self.shard_of(fqdn);
        let observed = shard.observe_rows(fqdn, rows);
        fw_obs::counter_add!("fw.store.ingest.rows", observed);
        if self.flush_rows > 0 && shard.pending >= self.flush_rows {
            if let Err(e) = shard.flush() {
                self.deferred_err.lock().get_or_insert(e);
            }
        }
    }

    /// Flush all unflushed deltas to segments. Also surfaces any error an
    /// earlier auto-flush hit inside `observe_count`.
    pub fn flush(&self) -> Result<u64, StoreError> {
        if let Some(e) = self.deferred_err.lock().take() {
            return Err(e);
        }
        if self.read_only {
            return Ok(0);
        }
        let _span = fw_obs::span("store/flush");
        // Shards flush to independent files: do them concurrently.
        let parts: Vec<Result<u64, StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.lock().flush()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flush workers do not panic"))
                .collect()
        });
        let mut total = 0u64;
        for part in parts {
            total += part?;
        }
        Ok(total)
    }

    /// Merge each shard's segments into one (after a final flush).
    pub fn compact(&self) -> Result<(), StoreError> {
        self.flush()?;
        let _span = fw_obs::span("store/compact");
        let parts: Vec<Result<(), StoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.lock().compact()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("compact workers do not panic"))
                .collect()
        });
        for part in parts {
            part?;
        }
        Ok(())
    }

    /// Flush and compact one shard, leaving it a single sorted segment
    /// ready for the streaming scan. The per-shard half of `compact`:
    /// the fused pipeline seals shards individually so identify/usage
    /// can consume a sealed shard while later shards are still
    /// flushing. Also surfaces any deferred auto-flush error.
    pub fn seal_shard(&self, shard: usize) -> Result<(), StoreError> {
        if let Some(e) = self.deferred_err.lock().take() {
            return Err(e);
        }
        if self.read_only {
            return Ok(());
        }
        let _trace = fw_obs::trace_span_arg("store/seal_shard", shard as u64);
        self.shards[shard].lock().seal()
    }

    /// Drop one shard's in-memory table, keeping its on-disk segments
    /// and flush accounting. After release, table reads (aggregates,
    /// `for_each_*`) see the shard as empty — only ingest-then-scan
    /// pipelines that re-read sealed shards from disk should call this;
    /// they do it to bound peak RSS to roughly one shard instead of the
    /// whole store.
    pub fn release_shard_table(&self, shard: usize) {
        let mut s = self.shards[shard].lock();
        assert_eq!(
            s.pending, 0,
            "release_shard_table on a shard with unflushed rows"
        );
        s.table = HashMap::default();
        s.dirty = Vec::new();
        s.rows = 0;
    }

    /// One shard's [`ShardIngestStats`], for callers that seal and
    /// release shards individually and need the counts before the table
    /// is dropped.
    pub fn shard_stats(&self, shard: usize) -> ShardIngestStats {
        stats_of(&self.shards[shard].lock())
    }

    fn aggregate_inner(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        let shard = self.shard_of(fqdn);
        let entry = shard.table.get(fqdn)?;
        Some(aggregate_entry(fqdn, entry))
    }

    /// Re-ingest every row of `src` on up to `workers` producer threads.
    /// Producers partition `src`'s fqdns round-robin over a sorted list
    /// (same scheme as `par_map_indexed`), so each fqdn's rows are
    /// written by exactly one producer in `records_for` order — the
    /// merged table contents are identical at any worker count; only
    /// segment *boundaries* (auto-flush timing) may differ, and those
    /// are erased by `compact`.
    pub fn ingest_parallel<B: PdnsBackend + ?Sized>(&self, src: &B, workers: usize) {
        let _span = fw_obs::span("store/ingest");
        let fqdns = src.sorted_fqdns();
        let workers = workers.clamp(1, fqdns.len().max(1));
        fw_obs::counter_add!("fw.store.ingest.producers", workers as u64);
        if workers == 1 {
            src.for_each_row(&mut |fqdn, _rtype, rdata, pdate, cnt| {
                self.observe_count(fqdn, rdata, pdate, cnt);
            });
            return;
        }
        let fork = fw_obs::current_trace_span();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let fqdns = &fqdns;
                scope.spawn(move || {
                    let _trace = fw_obs::trace_span_child_of(fork, "store/ingest_worker", w as u64);
                    for fqdn in fqdns.iter().skip(w).step_by(workers) {
                        src.for_each_record_of(fqdn, &mut |_rtype, rdata, pdate, cnt| {
                            self.observe_count(fqdn, rdata, pdate, cnt);
                        });
                    }
                });
            }
        });
    }

    /// Per-shard ingest/flush accounting since this handle was created.
    /// Row counts cover the current table (including replayed segments);
    /// flush timings cover only work done through this handle.
    pub fn shard_ingest_stats(&self) -> Vec<ShardIngestStats> {
        self.shards.iter().map(|s| stats_of(&s.lock())).collect()
    }
}

fn stats_of(s: &Shard) -> ShardIngestStats {
    let flush_p99_ns = if s.flush_samples_ns.is_empty() {
        0
    } else {
        let mut sorted = s.flush_samples_ns.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() * 99).div_ceil(100).saturating_sub(1)]
    };
    ShardIngestStats {
        shard: s.idx,
        fqdns: s.table.len(),
        rows: s.rows,
        flushes: s.flushes,
        flush_ns: s.flush_ns,
        flush_p99_ns,
        bytes_written: s.bytes_written,
        segments: s.segments.len(),
    }
}

/// Per-shard ingest accounting, surfaced in `pipeline_gate`'s JSON so
/// the bench regression gate can localize IO/skew regressions to a
/// shard instead of a whole stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardIngestStats {
    pub shard: usize,
    /// Distinct fqdns resident in the shard table.
    pub fqdns: usize,
    /// Distinct `(fqdn, rdata, pdate)` rows.
    pub rows: usize,
    /// Segments written by `flush` through this handle.
    pub flushes: u64,
    /// Wall nanoseconds spent in `flush` through this handle.
    pub flush_ns: u64,
    /// p99 of individual flush durations through this handle (0 if the
    /// shard never flushed).
    pub flush_p99_ns: u64,
    /// Segment bytes written (flush + compact) through this handle.
    pub bytes_written: u64,
    /// Segment files currently on disk.
    pub segments: usize,
}

/// Read and verify a store directory's superblock; returns the shard
/// count. Shared by `DiskStore::open` and the streaming snapshot scan,
/// which reads segments without building shard tables.
pub(crate) fn read_superblock(dir: &Path) -> Result<usize, StoreError> {
    let superblock = std::fs::read(dir.join(SUPERBLOCK))?;
    if superblock.len() != 24 || &superblock[..8] != SUPER_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{}: bad superblock",
            dir.display()
        )));
    }
    let crc = u32::from_le_bytes(superblock[20..24].try_into().expect("4 bytes"));
    if crate::crc32(&superblock[..20]) != crc {
        return Err(StoreError::Corrupt(format!(
            "{}: superblock CRC mismatch",
            dir.display()
        )));
    }
    let version = u32::from_le_bytes(superblock[8..12].try_into().expect("4 bytes"));
    if version != SUPER_VERSION {
        return Err(StoreError::Version {
            found: u64::from(version),
            expected: u64::from(SUPER_VERSION),
        });
    }
    let shard_count = u32::from_le_bytes(superblock[12..16].try_into().expect("4 bytes")) as usize;
    if !(1..=4096).contains(&shard_count) {
        return Err(StoreError::Corrupt(format!(
            "{}: implausible shard count {shard_count}",
            dir.display()
        )));
    }
    Ok(shard_count)
}

/// List one shard directory's segment files in replay order. Shared by
/// `DiskStore::load_shard` and the streaming snapshot scan.
pub(crate) fn shard_segment_paths(dir: &Path, shard: usize) -> Result<Vec<PathBuf>, StoreError> {
    let shard_dir = dir.join(format!("shard-{shard:03}"));
    let mut seg_paths: Vec<PathBuf> = Vec::new();
    if shard_dir.is_dir() {
        for entry in std::fs::read_dir(&shard_dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("seg-") && name.ends_with(".fws") {
                seg_paths.push(path);
            }
        }
    }
    seg_paths.sort();
    Ok(seg_paths)
}

/// Aggregate one in-memory entry (shared by the point lookup and the
/// per-shard parallel sweep).
fn aggregate_entry(fqdn: &Fqdn, entry: &Entry) -> FqdnAggregate {
    let mut first = i64::MAX;
    let mut last = i64::MIN;
    let mut total = 0u64;
    let mut dist: Vec<u64> = vec![0; entry.rdatas.len()];
    let mut days: Vec<i64> = Vec::with_capacity(entry.rows.len());
    for row in &entry.rows {
        first = first.min(row.pdate);
        last = last.max(row.pdate);
        total += row.cnt;
        dist[row.rdata as usize] += row.cnt;
        days.push(row.pdate);
    }
    days.sort_unstable();
    days.dedup();
    let mut rdata_dist: Vec<(Rdata, u64)> = entry.rdatas.iter().cloned().zip(dist).collect();
    rdata_dist.sort_by(|a, b| a.0.cmp(&b.0));
    FqdnAggregate {
        fqdn: fqdn.clone(),
        first_seen_all: DayStamp(first),
        last_seen_all: DayStamp(last),
        days_count: days.len() as u32,
        total_request_cnt: total,
        rdata_dist,
    }
}

impl PdnsBackend for DiskStore {
    fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        DiskStore::observe_count(self, fqdn, rdata, day, count);
    }

    fn fqdn_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.len()).sum()
    }

    fn record_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().rows).sum()
    }

    fn for_each_fqdn(&self, f: &mut dyn FnMut(&Fqdn)) {
        // Snapshot each shard's keys before invoking the callback:
        // consumers routinely call `aggregate` from inside it (the
        // identification stage does), which would re-take the shard lock.
        for shard in &self.shards {
            let keys: Vec<Fqdn> = shard.lock().table.keys().cloned().collect();
            for fqdn in &keys {
                f(fqdn);
            }
        }
    }

    fn for_each_row(&self, f: &mut dyn FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64)) {
        for shard in &self.shards {
            let shard = shard.lock();
            for (fqdn, entry) in &shard.table {
                for row in &entry.rows {
                    let rdata = &entry.rdatas[row.rdata as usize];
                    f(fqdn, rdata.rtype(), rdata, DayStamp(row.pdate), row.cnt);
                }
            }
        }
    }

    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        self.aggregate_inner(fqdn)
    }

    fn for_each_record_of(
        &self,
        fqdn: &Fqdn,
        f: &mut dyn FnMut(RecordType, &Rdata, DayStamp, u64),
    ) {
        let shard = self.shard_of(fqdn);
        let Some(entry) = shard.table.get(fqdn) else {
            return;
        };
        // Canonical `(pdate, rdata text)` order, matching
        // `PdnsStore::records_for`; texts render once per distinct rdata.
        let texts: Vec<String> = entry.rdatas.iter().map(|r| r.text()).collect();
        let mut order: Vec<&Row> = entry.rows.iter().collect();
        order.sort_by(|a, b| {
            (a.pdate, texts[a.rdata as usize].as_str())
                .cmp(&(b.pdate, texts[b.rdata as usize].as_str()))
        });
        for row in order {
            let rdata = &entry.rdatas[row.rdata as usize];
            f(rdata.rtype(), rdata, DayStamp(row.pdate), row.cnt);
        }
    }

    /// Shard-parallel override: each worker sweeps whole shards under
    /// one lock acquisition instead of re-hashing every fqdn through
    /// `aggregate`. The final sort by fqdn makes the output identical to
    /// the provided implementation at any worker count.
    fn par_aggregates(&self, workers: usize) -> Vec<FqdnAggregate> {
        let workers = workers.clamp(1, self.shards.len());
        let fork = fw_obs::current_trace_span();
        let mut out: Vec<FqdnAggregate> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let _trace =
                            fw_obs::trace_span_child_of(fork, "store/agg_worker", w as u64);
                        let mut part = Vec::new();
                        for shard in self.shards.iter().skip(w).step_by(workers) {
                            let shard = shard.lock();
                            part.extend(
                                shard
                                    .table
                                    .iter()
                                    .map(|(fqdn, entry)| aggregate_entry(fqdn, entry)),
                            );
                        }
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("aggregate workers do not panic"))
                .collect()
        });
        out.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
        out
    }
}

/// Shareable handle implementing the resolver [`fw_dns::resolver::Sensor`],
/// so live traffic can feed the disk store directly, sharded writes and
/// all.
#[derive(Clone)]
pub struct SharedDiskStore(pub std::sync::Arc<DiskStore>);

impl fw_dns::resolver::Sensor for SharedDiskStore {
    fn observe(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
        self.0.observe_count(fqdn, rdata, day, 1);
    }
}
