//! Read-only memory mapping for segment files.
//!
//! Segment files are immutable once the tmp-file + rename in
//! `write_segment` completes, so the scan path can map them instead of
//! copying them through a read buffer: page-cache-hot scans skip the
//! copy entirely and cold scans fault pages in on demand. CRC framing
//! is still verified over the mapped bytes — bit rot is rejected on
//! the mmap path exactly as on the buffered path.
//!
//! No mmap crate is vendored; on unix we declare the two libc symbols
//! we need directly (libc is always linked by std). Anything that
//! can't map — zero-length files, exotic filesystems, non-unix targets
//! — falls back to an owned `std::fs::read` buffer with identical
//! semantics.

use crate::StoreError;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
}

/// An immutable byte view over a segment file: either a private
/// read-only mapping or an owned fallback buffer.
pub(crate) enum SegmentBytes {
    #[cfg(unix)]
    Mapped(Mmap),
    Owned(Vec<u8>),
}

impl std::ops::Deref for SegmentBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            SegmentBytes::Mapped(m) => m.bytes(),
            SegmentBytes::Owned(v) => v,
        }
    }
}

#[cfg(unix)]
pub(crate) struct Mmap {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(unix)]
impl Mmap {
    fn bytes(&self) -> &[u8] {
        // Safety: `ptr` is a live PROT_READ/MAP_PRIVATE mapping of
        // exactly `len` bytes, held until Drop. Segment files are
        // write-once (tmp + rename), so the backing file is never
        // truncated or rewritten under the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // Safety: exact (ptr, len) pair returned by mmap.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

// Safety: the mapping is private and read-only for its whole lifetime.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

/// Map `path` read-only, falling back to a buffered read when mapping
/// is unavailable.
pub(crate) fn map_file(path: &Path) -> Result<SegmentBytes, StoreError> {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;

        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(SegmentBytes::Owned(Vec::new()));
        }
        if usize::try_from(len).is_ok() {
            let len = len as usize;
            // Safety: valid fd, len > 0; a MAP_FAILED return is handled
            // by falling through to the buffered read.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                fw_obs::counter_add!("fw.store.mmap.mapped_bytes", len as u64);
                return Ok(SegmentBytes::Mapped(Mmap { ptr, len }));
            }
        }
    }
    Ok(SegmentBytes::Owned(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fw-mmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = tmp_path("roundtrip");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let bytes = map_file(&path).unwrap();
        assert_eq!(&*bytes, &payload[..]);
        drop(bytes);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let bytes = map_file(&path).unwrap();
        assert!(bytes.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(map_file(Path::new("/nonexistent/fw-mmap-missing")).is_err());
    }
}
