//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every segment block and the superblock. Slicing-by-8
//! table-driven with `const`-built tables, no dependencies: eight bytes
//! advance per step through eight precomputed tables instead of one,
//! which matters because every segment byte is CRC'd once on write and
//! once on every scan.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b]: CRC of byte `b` followed by k zero bytes — lets the
    // 8-byte kernel combine per-byte lookups with plain xors.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `data` (standard init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
