//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every segment block and the superblock. Table-driven with a
//! `const`-built table, no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (standard init `!0`, final xor `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
