//! The immutable segment file — the on-disk unit of the store.
//!
//! A segment holds a sorted, de-duplicated batch of PDNS daily-aggregate
//! rows for one shard, dictionary-compressed and delta-encoded:
//!
//! ```text
//! [0..8)   magic  "FWSEG\x00\x00\x01"
//! blocks, each framed as
//!          [u8 tag] [u32le payload_len] [payload] [u32le crc32(payload)]
//!   tag 1  dictionary block: fqdn table then rdata table
//!   tag 2  rows block: delta-encoded rows, sorted by (fqdn, pdate, rdata)
//!   tag 3  footer block: counts, day range, absolute block offsets
//! tail     [u64le footer_offset] [u32le crc32(bytes before tail)]
//!          [8B magic "FWSEGEND"]
//! ```
//!
//! The footer is an index: a reader seeks the 20-byte tail, verifies the
//! whole-file checksum, jumps to the footer and from there to the blocks
//! it needs. Every payload additionally carries its own CRC so a reader
//! that skips the full-file check (e.g. a future partial-scan path) still
//! rejects bit rot. Rows encode as four varints each —
//! `fqdn_idx` delta from the previous row, `pdate − min_day`, `rdata_idx`,
//! `request_cnt` — which at PDNS shapes compresses to a few bytes per row.
//!
//! Dictionary entries: fqdns as length-prefixed lowercase text (sorted,
//! so fqdn deltas are non-negative); rdatas tagged `0` = A (4 raw bytes),
//! `1` = AAAA (16 raw bytes), `2` = CNAME (length-prefixed text).

use crate::codec::{put_ivarint, put_uvarint, Reader};
use crate::crc::crc32;
use crate::StoreError;
use fw_types::fnv::FnvBuildHasher;
use fw_types::{DayStamp, Fqdn, Rdata};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::path::Path;

pub(crate) const SEG_MAGIC: &[u8; 8] = b"FWSEG\x00\x00\x01";
pub(crate) const SEG_END_MAGIC: &[u8; 8] = b"FWSEGEND";
pub(crate) const SEG_VERSION: u64 = 1;
const TAG_DICT: u8 = 1;
const TAG_ROWS: u8 = 2;
const TAG_FOOTER: u8 = 3;
/// Tail: footer offset (8) + file CRC (4) + end magic (8).
const TAIL_LEN: usize = 20;
/// Upper bound accepted for any length prefix — segments are flush-sized,
/// so anything beyond this is corruption, not data.
const MAX_ITEMS: usize = 1 << 32;

/// One decoded row: indices into the segment's dictionaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRow {
    pub fqdn: u32,
    pub pdate: DayStamp,
    pub rdata: u32,
    pub cnt: u64,
}

/// A fully decoded segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentData {
    pub fqdns: Vec<Fqdn>,
    pub rdatas: Vec<Rdata>,
    /// Sorted by `(fqdn, pdate, rdata)`, unique on that key.
    pub rows: Vec<SegRow>,
    pub min_day: DayStamp,
    pub max_day: DayStamp,
}

/// Accumulates rows, then encodes one segment.
#[derive(Debug, Default)]
pub struct SegmentBuilder {
    fqdns: Vec<Fqdn>,
    fqdn_idx: HashMap<Fqdn, u32, FnvBuildHasher>,
    rdatas: Vec<Rdata>,
    rdata_idx: HashMap<Rdata, u32, FnvBuildHasher>,
    /// `(fqdn_idx, pdate, rdata_idx, cnt)` in arrival order.
    rows: Vec<(u32, i64, u32, u64)>,
    /// Dictionary index of the most recently pushed fqdn. Flush paths
    /// push each fqdn's rows consecutively, so one string compare
    /// usually replaces a hash lookup.
    last_fqdn: Option<u32>,
}

impl SegmentBuilder {
    pub fn new() -> SegmentBuilder {
        SegmentBuilder::default()
    }

    /// Builder with pre-sized tables. Flush paths know exactly how many
    /// dirty fqdns and pending rows they are about to push; sizing the
    /// dictionary maps and the row vector up front keeps a large flush
    /// from paying a rehash/regrow cascade at its tail.
    pub fn with_capacity(fqdns: usize, rows: usize) -> SegmentBuilder {
        SegmentBuilder {
            fqdns: Vec::with_capacity(fqdns),
            fqdn_idx: HashMap::with_capacity_and_hasher(fqdns, FnvBuildHasher::default()),
            rdatas: Vec::new(),
            rdata_idx: HashMap::default(),
            rows: Vec::with_capacity(rows),
            last_fqdn: None,
        }
    }

    /// [`with_capacity`](Self::with_capacity) for callers feeding only
    /// [`push_fqdn_rows`](Self::push_fqdn_rows): the fqdn dedupe map is
    /// never consulted, so it stays unallocated.
    pub fn for_distinct_fqdns(fqdns: usize, rows: usize) -> SegmentBuilder {
        SegmentBuilder {
            fqdns: Vec::with_capacity(fqdns),
            fqdn_idx: HashMap::default(),
            rdatas: Vec::new(),
            rdata_idx: HashMap::default(),
            rows: Vec::with_capacity(rows),
            last_fqdn: None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn push(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, cnt: u64) {
        if cnt == 0 {
            return;
        }
        let fi = match self.last_fqdn {
            Some(i) if self.fqdns[i as usize] == *fqdn => i,
            _ => match self.fqdn_idx.get(fqdn) {
                Some(&i) => i,
                None => {
                    let i = self.fqdns.len() as u32;
                    self.fqdns.push(fqdn.clone());
                    self.fqdn_idx.insert(fqdn.clone(), i);
                    i
                }
            },
        };
        self.last_fqdn = Some(fi);
        let ri = match self.rdata_idx.get(rdata) {
            Some(&i) => i,
            None => {
                let i = self.rdatas.len() as u32;
                self.rdatas.push(rdata.clone());
                self.rdata_idx.insert(rdata.clone(), i);
                i
            }
        };
        self.rows.push((fi, day.0, ri, cnt));
    }

    /// Push every row of one fqdn, minting its dictionary entry without
    /// consulting (or populating) the dedupe map — one key clone and
    /// zero hashes instead of two clones plus a map insert. Caller
    /// contract: each fqdn is passed at most once per builder (the seal
    /// path walks the shard table, so keys are distinct); `push` may
    /// still be mixed in for *other* fqdns.
    pub fn push_fqdn_rows<'r>(
        &mut self,
        fqdn: &Fqdn,
        rows: impl Iterator<Item = (&'r Rdata, DayStamp, u64)>,
    ) {
        let mut fi = None;
        // Rows of one fqdn usually repeat one rdata across days; a
        // last-rdata compare dodges the hash for that run.
        let mut last_rdata: Option<u32> = None;
        for (rdata, day, cnt) in rows {
            if cnt == 0 {
                continue;
            }
            let fi = *fi.get_or_insert_with(|| {
                let i = self.fqdns.len() as u32;
                self.fqdns.push(fqdn.clone());
                i
            });
            let ri = match last_rdata {
                Some(i) if self.rdatas[i as usize] == *rdata => i,
                _ => match self.rdata_idx.get(rdata) {
                    Some(&i) => i,
                    None => {
                        let i = self.rdatas.len() as u32;
                        self.rdatas.push(rdata.clone());
                        self.rdata_idx.insert(rdata.clone(), i);
                        i
                    }
                },
            };
            last_rdata = Some(ri);
            self.rows.push((fi, day.0, ri, cnt));
        }
        // Keep the consecutive-push cache honest for mixed callers.
        self.last_fqdn = None;
    }

    /// Sort, merge duplicate `(fqdn, pdate, rdata)` keys, and encode.
    /// Returns `None` for an empty builder (the store never writes empty
    /// segments).
    pub fn finish(mut self) -> Option<Vec<u8>> {
        if self.rows.is_empty() {
            return None;
        }

        // Sort the fqdn dictionary so row order is lexicographic and the
        // per-row fqdn delta is non-negative.
        // Unstable is safe: the dictionary holds each fqdn once.
        let mut fqdn_order: Vec<u32> = (0..self.fqdns.len() as u32).collect();
        fqdn_order.sort_unstable_by(|&a, &b| self.fqdns[a as usize].cmp(&self.fqdns[b as usize]));
        let mut remap = vec![0u32; self.fqdns.len()];
        for (new, &old) in fqdn_order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut fqdns = Vec::with_capacity(self.fqdns.len());
        for &old in &fqdn_order {
            fqdns.push(std::mem::replace(
                &mut self.fqdns[old as usize],
                Fqdn::parse("x.invalid").expect("placeholder fqdn"),
            ));
        }
        for row in &mut self.rows {
            row.0 = remap[row.0 as usize];
        }

        self.rows.sort_unstable_by_key(|r| (r.0, r.1, r.2));
        let mut merged: Vec<(u32, i64, u32, u64)> = Vec::with_capacity(self.rows.len());
        for row in self.rows.drain(..) {
            match merged.last_mut() {
                Some(last) if (last.0, last.1, last.2) == (row.0, row.1, row.2) => {
                    last.3 += row.3;
                }
                _ => merged.push(row),
            }
        }

        let min_day = merged.iter().map(|r| r.1).min().expect("non-empty");
        let max_day = merged.iter().map(|r| r.1).max().expect("non-empty");

        // Dictionary block payload. Pre-size from the dictionary text
        // itself (length prefixes are a few bytes per entry).
        let fqdn_text: usize = fqdns.iter().map(|f| f.as_str().len() + 2).sum();
        let mut dict = Vec::with_capacity(fqdn_text + self.rdatas.len() * 20 + 16);
        put_uvarint(&mut dict, fqdns.len() as u64);
        for f in &fqdns {
            let s = f.as_str().as_bytes();
            put_uvarint(&mut dict, s.len() as u64);
            dict.extend_from_slice(s);
        }
        put_uvarint(&mut dict, self.rdatas.len() as u64);
        for r in &self.rdatas {
            match r {
                Rdata::V4(ip) => {
                    dict.push(0);
                    dict.extend_from_slice(&ip.octets());
                }
                Rdata::V6(ip) => {
                    dict.push(1);
                    dict.extend_from_slice(&ip.octets());
                }
                Rdata::Name(n) => {
                    dict.push(2);
                    let s = n.as_str().as_bytes();
                    put_uvarint(&mut dict, s.len() as u64);
                    dict.extend_from_slice(s);
                }
            }
        }

        // Rows block payload; at PDNS shapes a row averages well under
        // eight varint bytes, so this almost never regrows.
        let mut rows = Vec::with_capacity(merged.len() * 8 + 16);
        put_uvarint(&mut rows, merged.len() as u64);
        let mut prev_fqdn = 0u32;
        for &(fi, pdate, ri, cnt) in &merged {
            put_uvarint(&mut rows, u64::from(fi - prev_fqdn));
            put_uvarint(&mut rows, (pdate - min_day) as u64);
            put_uvarint(&mut rows, u64::from(ri));
            put_uvarint(&mut rows, cnt);
            prev_fqdn = fi;
        }

        // Assemble the file.
        let mut out = Vec::with_capacity(dict.len() + rows.len() + 64);
        out.extend_from_slice(SEG_MAGIC);
        let dict_offset = out.len() as u64;
        write_block(&mut out, TAG_DICT, &dict);
        let rows_offset = out.len() as u64;
        write_block(&mut out, TAG_ROWS, &rows);

        let mut footer = Vec::new();
        put_uvarint(&mut footer, SEG_VERSION);
        put_uvarint(&mut footer, merged.len() as u64);
        put_uvarint(&mut footer, fqdns.len() as u64);
        put_uvarint(&mut footer, self.rdatas.len() as u64);
        put_ivarint(&mut footer, min_day);
        put_ivarint(&mut footer, max_day);
        put_uvarint(&mut footer, dict_offset);
        put_uvarint(&mut footer, rows_offset);
        let footer_offset = out.len() as u64;
        write_block(&mut out, TAG_FOOTER, &footer);

        out.extend_from_slice(&footer_offset.to_le_bytes());
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out.extend_from_slice(SEG_END_MAGIC);
        Some(out)
    }
}

fn write_block(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Read one framed block at `offset`, verify tag and CRC, return payload.
fn read_block(bytes: &[u8], offset: usize, want_tag: u8) -> Result<&[u8], StoreError> {
    let header_end = offset
        .checked_add(5)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| corrupt(format!("block header out of bounds at {offset}")))?;
    let tag = bytes[offset];
    if tag != want_tag {
        return Err(corrupt(format!(
            "block tag mismatch at {offset}: found {tag}, want {want_tag}"
        )));
    }
    let len =
        u32::from_le_bytes(bytes[offset + 1..header_end].try_into().expect("4 bytes")) as usize;
    let payload_end = header_end
        .checked_add(len)
        .filter(|&e| e + 4 <= bytes.len())
        .ok_or_else(|| corrupt(format!("block payload out of bounds at {offset}")))?;
    let payload = &bytes[header_end..payload_end];
    let stored = u32::from_le_bytes(
        bytes[payload_end..payload_end + 4]
            .try_into()
            .expect("4 bytes"),
    );
    if crc32(payload) != stored {
        return Err(corrupt(format!("block CRC mismatch at {offset}")));
    }
    Ok(payload)
}

/// A segment's dictionaries and row-block framing, parsed without
/// materializing any rows — the shared front half of the materializing
/// decoder and the streaming aggregate scanner.
pub(crate) struct SegmentDicts {
    pub fqdns: Vec<Fqdn>,
    pub rdatas: Vec<Rdata>,
    pub min_day: DayStamp,
    pub max_day: DayStamp,
    pub n_rows: usize,
}

/// Verify magic/CRCs, decode the dictionaries, and return a [`Reader`]
/// positioned at the first row varint (the row count has been read and
/// checked against the footer).
pub(crate) fn parse_segment(bytes: &[u8]) -> Result<(SegmentDicts, Reader<'_>), StoreError> {
    if bytes.len() < SEG_MAGIC.len() + TAIL_LEN {
        return Err(corrupt("segment shorter than header + tail"));
    }
    if &bytes[..8] != SEG_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let tail = &bytes[bytes.len() - TAIL_LEN..];
    if &tail[12..] != SEG_END_MAGIC {
        return Err(corrupt("bad segment end magic"));
    }
    let body = &bytes[..bytes.len() - 12];
    let stored_crc = u32::from_le_bytes(tail[8..12].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(corrupt("file CRC mismatch"));
    }
    let footer_offset = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes")) as usize;

    // Footer.
    let footer = read_block(bytes, footer_offset, TAG_FOOTER)?;
    let mut r = Reader::new(footer);
    let version = r.uvarint()?;
    if version != SEG_VERSION {
        return Err(StoreError::Version {
            found: version,
            expected: SEG_VERSION,
        });
    }
    let n_rows = r.read_len(MAX_ITEMS)?;
    let n_fqdns = r.read_len(MAX_ITEMS)?;
    let n_rdatas = r.read_len(MAX_ITEMS)?;
    let min_day = DayStamp(r.ivarint()?);
    let max_day = DayStamp(r.ivarint()?);
    if min_day > max_day {
        return Err(corrupt("inverted day range"));
    }
    let dict_offset = r.read_len(bytes.len())?;
    let rows_offset = r.read_len(bytes.len())?;

    // Dictionaries.
    let dict = read_block(bytes, dict_offset, TAG_DICT)?;
    let mut r = Reader::new(dict);
    let fqdn_cnt = r.read_len(MAX_ITEMS)?;
    if fqdn_cnt != n_fqdns {
        return Err(corrupt("fqdn count disagrees with footer"));
    }
    let mut fqdns = Vec::with_capacity(fqdn_cnt);
    for _ in 0..fqdn_cnt {
        let len = r.read_len(253)?;
        let raw = r.bytes(len)?;
        let text = std::str::from_utf8(raw).map_err(|_| corrupt("fqdn not UTF-8"))?;
        fqdns.push(Fqdn::parse(text).map_err(|e| corrupt(format!("bad fqdn in dictionary: {e}")))?);
    }
    let rdata_cnt = r.read_len(MAX_ITEMS)?;
    if rdata_cnt != n_rdatas {
        return Err(corrupt("rdata count disagrees with footer"));
    }
    let mut rdatas = Vec::with_capacity(rdata_cnt);
    for _ in 0..rdata_cnt {
        let kind = r.u8()?;
        rdatas.push(match kind {
            0 => {
                let o: [u8; 4] = r.bytes(4)?.try_into().expect("4 bytes");
                Rdata::V4(Ipv4Addr::from(o))
            }
            1 => {
                let o: [u8; 16] = r.bytes(16)?.try_into().expect("16 bytes");
                Rdata::V6(Ipv6Addr::from(o))
            }
            2 => {
                let len = r.read_len(253)?;
                let raw = r.bytes(len)?;
                let text = std::str::from_utf8(raw).map_err(|_| corrupt("cname not UTF-8"))?;
                Rdata::Name(
                    Fqdn::parse(text).map_err(|e| corrupt(format!("bad cname rdata: {e}")))?,
                )
            }
            other => return Err(corrupt(format!("unknown rdata kind {other}"))),
        });
    }

    // Rows block framing; rows themselves are decoded by the caller.
    let rows_blk = read_block(bytes, rows_offset, TAG_ROWS)?;
    let mut r = Reader::new(rows_blk);
    let row_cnt = r.read_len(MAX_ITEMS)?;
    if row_cnt != n_rows {
        return Err(corrupt("row count disagrees with footer"));
    }
    Ok((
        SegmentDicts {
            fqdns,
            rdatas,
            min_day,
            max_day,
            n_rows,
        },
        r,
    ))
}

/// Decode the next row from the rows block. Delta state lives in
/// `prev_fqdn`, which the caller threads through consecutive calls
/// (starting at 0).
pub(crate) fn next_row(
    r: &mut Reader<'_>,
    dicts: &SegmentDicts,
    prev_fqdn: &mut u64,
) -> Result<SegRow, StoreError> {
    let [d_fqdn, day_off, rdata, cnt] = r.uvarint4()?;
    *prev_fqdn += d_fqdn;
    if *prev_fqdn >= dicts.fqdns.len() as u64 {
        return Err(corrupt("row fqdn index out of range"));
    }
    if rdata >= dicts.rdatas.len() as u64 {
        return Err(corrupt("row rdata index out of range"));
    }
    let pdate = DayStamp(
        dicts
            .min_day
            .0
            .checked_add(day_off as i64)
            .ok_or_else(|| corrupt("day offset overflow"))?,
    );
    if pdate > dicts.max_day {
        return Err(corrupt("row day outside footer range"));
    }
    if cnt == 0 {
        return Err(corrupt("zero-count row"));
    }
    Ok(SegRow {
        fqdn: *prev_fqdn as u32,
        pdate,
        rdata: rdata as u32,
        cnt,
    })
}

/// Decode a segment from raw file bytes.
pub fn decode_segment(bytes: &[u8]) -> Result<SegmentData, StoreError> {
    let (dicts, mut r) = parse_segment(bytes)?;
    let mut rows = Vec::with_capacity(dicts.n_rows);
    let mut prev_fqdn = 0u64;
    for _ in 0..dicts.n_rows {
        rows.push(next_row(&mut r, &dicts, &mut prev_fqdn)?);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in rows block"));
    }
    Ok(SegmentData {
        fqdns: dicts.fqdns,
        rdatas: dicts.rdatas,
        rows,
        min_day: dicts.min_day,
        max_day: dicts.max_day,
    })
}

/// Read and decode a segment file via a read-only memory mapping.
pub fn read_segment(path: &Path) -> Result<SegmentData, StoreError> {
    let bytes = crate::mmap::map_file(path)?;
    decode_segment(&bytes).map_err(|e| match e {
        StoreError::Corrupt(msg) => StoreError::Corrupt(format!("{}: {msg}", path.display())),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn sample() -> Vec<u8> {
        let mut b = SegmentBuilder::new();
        let d0 = fw_types::MEASUREMENT_START;
        b.push(
            &fq("b.on.aws"),
            &Rdata::V4(Ipv4Addr::new(198, 51, 100, 1)),
            d0,
            3,
        );
        b.push(
            &fq("a.on.aws"),
            &Rdata::V4(Ipv4Addr::new(198, 51, 100, 2)),
            d0 + 1,
            5,
        );
        b.push(
            &fq("a.on.aws"),
            &Rdata::Name(fq("edge.a.run.app")),
            d0 + 1,
            2,
        );
        b.push(
            &fq("b.on.aws"),
            &Rdata::V4(Ipv4Addr::new(198, 51, 100, 1)),
            d0,
            4,
        );
        b.push(
            &fq("c.on.aws"),
            &Rdata::V6("2001:db8::1".parse().unwrap()),
            d0 + 700,
            1,
        );
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_sorts_and_merges() {
        let seg = decode_segment(&sample()).unwrap();
        assert_eq!(
            seg.fqdns,
            vec![fq("a.on.aws"), fq("b.on.aws"), fq("c.on.aws")]
        );
        assert_eq!(seg.rows.len(), 4); // the two b.on.aws rows merged
                                       // Sorted by (fqdn, pdate, rdata).
        let keys: Vec<(u32, i64, u32)> = seg
            .rows
            .iter()
            .map(|r| (r.fqdn, r.pdate.0, r.rdata))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let merged = seg
            .rows
            .iter()
            .find(|r| seg.fqdns[r.fqdn as usize] == fq("b.on.aws"))
            .unwrap();
        assert_eq!(merged.cnt, 7);
        assert_eq!(seg.min_day, fw_types::MEASUREMENT_START);
        assert_eq!(seg.max_day, fw_types::MEASUREMENT_START + 700);
    }

    #[test]
    fn empty_builder_yields_no_segment() {
        assert!(SegmentBuilder::new().finish().is_none());
        let mut b = SegmentBuilder::new();
        b.push(
            &fq("a.on.aws"),
            &Rdata::V4(Ipv4Addr::new(1, 2, 3, 4)),
            fw_types::MEASUREMENT_START,
            0,
        );
        assert!(b.finish().is_none());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            assert!(
                decode_segment(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = sample();
        for pos in 0..bytes.len() {
            let mut dup = bytes.clone();
            dup[pos] ^= 0x01;
            assert!(
                decode_segment(&dup).is_err(),
                "bit flip at {pos} must not decode"
            );
        }
    }

    #[test]
    fn version_mismatch_is_reported() {
        // Rebuild with a patched version varint in the footer: simplest
        // is to corrupt via the public surface — decode must fail with
        // Version for a future-versioned footer. Emulate by encoding a
        // segment, then bumping the version byte and re-stamping CRCs.
        let mut bytes = sample();
        let footer_offset = u64::from_le_bytes(
            bytes[bytes.len() - 20..bytes.len() - 12]
                .try_into()
                .unwrap(),
        ) as usize;
        // Footer payload starts after [tag][u32 len]; first varint is the
        // version (value 1, single byte).
        let payload_start = footer_offset + 5;
        assert_eq!(bytes[payload_start], 1);
        bytes[payload_start] = 2;
        // Re-stamp the footer block CRC.
        let len = u32::from_le_bytes(
            bytes[footer_offset + 1..footer_offset + 5]
                .try_into()
                .unwrap(),
        ) as usize;
        let crc = crc32(&bytes[payload_start..payload_start + len]);
        bytes[payload_start + len..payload_start + len + 4].copy_from_slice(&crc.to_le_bytes());
        // Re-stamp the file CRC.
        let body_end = bytes.len() - 12;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
        match decode_segment(&bytes) {
            Err(StoreError::Version {
                found: 2,
                expected: 1,
            }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }
}
