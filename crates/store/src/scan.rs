//! Streaming columnar scan: segment bytes → per-fqdn aggregates.
//!
//! `DiskStore::open` replays every segment into per-shard hash tables
//! before anything can be queried — the right trade when the store will
//! be queried repeatedly, but pure overhead for the identification
//! stage, which needs exactly one [`FqdnAggregate`] per fqdn and never
//! looks at the table again. This module decodes the delta-encoded rows
//! block directly into aggregates instead: segment rows are sorted by
//! `(fqdn, pdate, rdata)`, so each fqdn is one contiguous run, the day
//! count is a run-length count over `pdate`, and no intermediate
//! `SegRow` vector, hash table, or `PdnsRecord` is ever materialized.
//!
//! The fast path requires one segment per shard — what `compact`
//! guarantees and every snapshot written by `fw_snapshot` satisfies. A
//! multi-segment shard (an uncompacted store) falls back to replaying
//! that shard through an in-memory [`PdnsStore`], trading speed for the
//! exact-merge semantics; the output is identical either way.

use crate::segment::{next_row, parse_segment};
use crate::store::{read_superblock, shard_segment_paths};
use crate::StoreError;
use fw_dns::pdns::{FqdnAggregate, PdnsBackend as _, PdnsStore};
use fw_types::{DayStamp, Fqdn, Rdata};
use std::path::Path;

/// Per-row scan callback: `(fqdn, rdata, pdate, request_cnt)` with the
/// dictionary entries already resolved.
pub type RowVisitor<'v> = dyn FnMut(&Fqdn, &Rdata, DayStamp, u64) + 'v;

/// Stream one segment's rows into per-fqdn aggregates, emitting each
/// aggregate as its run ends. Emission order is the segment's fqdn
/// dictionary order (lexicographic). With a row visitor attached, each
/// row is emitted as it decodes, and every fqdn's aggregate fires after
/// its last row and before the next fqdn's first row.
fn scan_segment_into(
    bytes: &[u8],
    emit: &mut dyn FnMut(FqdnAggregate),
    mut on_row: Option<&mut RowVisitor<'_>>,
) -> Result<(), StoreError> {
    let (dicts, mut r) = parse_segment(bytes)?;
    // Per-run state. `dist` maps segment rdata index → count via linear
    // scan: a run's distinct rdatas are few even when the segment's
    // dictionary is large.
    let mut run_fqdn: Option<u32> = None;
    let mut first = DayStamp(i64::MAX);
    let mut last = DayStamp(i64::MIN);
    let mut prev_day = DayStamp(i64::MIN);
    let mut days = 0u32;
    let mut total = 0u64;
    let mut dist: Vec<(u32, u64)> = Vec::new();
    let mut prev = 0u64;

    let mut flush = |fqdn_idx: u32,
                     first: DayStamp,
                     last: DayStamp,
                     days: u32,
                     total: u64,
                     dist: &mut Vec<(u32, u64)>| {
        let mut rdata_dist: Vec<(Rdata, u64)> = dist
            .drain(..)
            .map(|(ri, cnt)| (dicts.rdatas[ri as usize].clone(), cnt))
            .collect();
        rdata_dist.sort_by(|a, b| a.0.cmp(&b.0));
        emit(FqdnAggregate {
            fqdn: dicts.fqdns[fqdn_idx as usize].clone(),
            first_seen_all: first,
            last_seen_all: last,
            days_count: days,
            total_request_cnt: total,
            rdata_dist,
        });
    };

    for _ in 0..dicts.n_rows {
        let row = next_row(&mut r, &dicts, &mut prev)?;
        if run_fqdn != Some(row.fqdn) {
            if let Some(done) = run_fqdn {
                flush(done, first, last, days, total, &mut dist);
            }
            run_fqdn = Some(row.fqdn);
            first = row.pdate;
            last = row.pdate;
            prev_day = row.pdate;
            days = 1;
            total = 0;
        } else {
            // Rows are sorted, so within a run pdate is non-decreasing:
            // `last` is the current row and a new day is a transition.
            last = row.pdate;
            if row.pdate != prev_day {
                days += 1;
                prev_day = row.pdate;
            }
        }
        total += row.cnt;
        match dist.iter_mut().find(|(ri, _)| *ri == row.rdata) {
            Some((_, cnt)) => *cnt += row.cnt,
            None => dist.push((row.rdata, row.cnt)),
        }
        if let Some(visit) = on_row.as_deref_mut() {
            visit(
                &dicts.fqdns[row.fqdn as usize],
                &dicts.rdatas[row.rdata as usize],
                row.pdate,
                row.cnt,
            );
        }
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt(
            "trailing bytes in rows block".to_string(),
        ));
    }
    if let Some(done) = run_fqdn {
        flush(done, first, last, days, total, &mut dist);
    }
    Ok(())
}

/// Aggregate one shard: streaming for the compacted single-segment
/// case, `PdnsStore` replay for multi-segment shards.
fn scan_shard(dir: &Path, shard: usize) -> Result<Vec<FqdnAggregate>, StoreError> {
    let mut out = Vec::new();
    scan_shard_visit(dir, shard, &mut |agg| out.push(agg), None)?;
    Ok(out)
}

/// Stream one shard of a snapshot directory in a single pass, emitting
/// both per-fqdn aggregates and individual rows.
///
/// Emission contract: each fqdn's rows arrive consecutively, and its
/// aggregate fires after its last row and before the next fqdn's first
/// row — so a caller can classify an fqdn once when its run starts and
/// reuse the verdict for every row and the trailing aggregate. This is
/// the per-shard feed for the fused pipeline, where identify and usage
/// consume a shard as soon as it seals. The single-segment fast path
/// decodes straight out of a read-only mmap; multi-segment shards fall
/// back to an exact-merge replay with the same emission contract.
pub fn scan_shard_visit(
    dir: &Path,
    shard: usize,
    on_agg: &mut dyn FnMut(FqdnAggregate),
    mut on_row: Option<&mut RowVisitor<'_>>,
) -> Result<(), StoreError> {
    let _trace = fw_obs::trace_span_arg("store/scan_shard", shard as u64);
    let paths = shard_segment_paths(dir, shard)?;
    match paths.as_slice() {
        [] => {}
        [single] => {
            let bytes = crate::mmap::map_file(single)?;
            fw_obs::counter_inc!("fw.store.scan.segments_streamed");
            scan_segment_into(&bytes, on_agg, on_row).map_err(|e| match e {
                StoreError::Corrupt(msg) => {
                    StoreError::Corrupt(format!("{}: {msg}", single.display()))
                }
                other => other,
            })?;
        }
        many => {
            fw_obs::counter_inc!("fw.store.scan.shards_replayed");
            let mut replay = PdnsStore::new();
            for path in many {
                let seg = crate::segment::read_segment(path)?;
                for row in &seg.rows {
                    replay.observe_count(
                        &seg.fqdns[row.fqdn as usize],
                        &seg.rdatas[row.rdata as usize],
                        row.pdate,
                        row.cnt,
                    );
                }
            }
            for fqdn in replay.sorted_fqdns() {
                if let Some(visit) = on_row.as_deref_mut() {
                    replay.for_each_record_of(&fqdn, |_rtype, rdata, pdate, cnt| {
                        visit(&fqdn, rdata, pdate, cnt);
                    });
                }
                on_agg(replay.aggregate(&fqdn).expect("fqdn is in the replay"));
            }
        }
    }
    Ok(())
}

/// Aggregate a snapshot directory directly from its segments on up to
/// `workers` threads, without building `DiskStore` shard tables.
///
/// Output is sorted by fqdn — element-wise equal to
/// `DiskStore::open_read_only(dir)?.all_aggregates()` — and independent
/// of the worker count: workers claim whole shards round-robin and the
/// final sort erases completion order.
pub fn stream_snapshot_aggregates(
    dir: &Path,
    workers: usize,
) -> Result<Vec<FqdnAggregate>, StoreError> {
    let _span = fw_obs::span("store/stream_scan");
    let shard_count = read_superblock(dir)?;
    let workers = workers.clamp(1, shard_count);
    let fork = fw_obs::current_trace_span();
    let parts: Vec<Result<Vec<FqdnAggregate>, StoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let _trace = fw_obs::trace_span_child_of(fork, "store/scan_worker", w as u64);
                    let mut part = Vec::new();
                    for shard in (w..shard_count).step_by(workers) {
                        part.extend(scan_shard(dir, shard)?);
                    }
                    Ok(part)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan workers do not panic"))
            .collect()
    });
    let mut out = Vec::new();
    for part in parts {
        out.extend(part?);
    }
    out.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskStore, StoreConfig};
    use fw_types::Fqdn;
    use std::net::Ipv4Addr;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "fw-scan-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn fill(store: &DiskStore) {
        let d0 = fw_types::MEASUREMENT_START;
        for i in 0..60u8 {
            let f = fq(&format!("fn{i}.fcapp.run"));
            for day in 0..5i64 {
                store.observe_count(&f, &Rdata::V4(Ipv4Addr::new(198, 51, 100, i)), d0 + day, 3);
                if day % 2 == 0 {
                    store.observe_count(&f, &Rdata::Name(fq("edge.fcapp.run")), d0 + day, 1);
                }
            }
        }
    }

    #[test]
    fn streamed_aggregates_equal_table_aggregates() {
        let tmp = TempDir::new("equal");
        let store = DiskStore::create(&tmp.0, StoreConfig::default()).unwrap();
        fill(&store);
        store.compact().unwrap();
        let want = store.all_aggregates();
        for workers in [1, 3, 8] {
            let got = stream_snapshot_aggregates(&tmp.0, workers).unwrap();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn multi_segment_shards_fall_back_to_replay() {
        let tmp = TempDir::new("multiseg");
        let store = DiskStore::create(
            &tmp.0,
            StoreConfig {
                shards: 2,
                flush_rows: 0,
            },
        )
        .unwrap();
        // Two flushes → two segments per touched shard, no compaction:
        // counts for the same (fqdn, pdate, rdata) key split across
        // segments and must be re-merged by the fallback.
        let d0 = fw_types::MEASUREMENT_START;
        for round in 0..2 {
            for i in 0..10u8 {
                let f = fq(&format!("fn{i}.fcapp.run"));
                store.observe_count(&f, &Rdata::V4(Ipv4Addr::new(198, 51, 100, i)), d0, 2);
                store.observe_count(
                    &f,
                    &Rdata::V4(Ipv4Addr::new(198, 51, 100, i)),
                    d0 + i64::from(round),
                    1,
                );
            }
            store.flush().unwrap();
        }
        assert!(store.segment_count() > store.shard_count());
        let want = store.all_aggregates();
        let got = stream_snapshot_aggregates(&tmp.0, 4).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_visit_rows_and_aggregates_are_consistent() {
        let tmp = TempDir::new("visit");
        let store = DiskStore::create(&tmp.0, StoreConfig::default()).unwrap();
        fill(&store);
        store.compact().unwrap();
        let want = store.all_aggregates();
        let shard_count = store.shard_count();
        drop(store);

        // Rows for an fqdn must arrive consecutively, each aggregate
        // right after its run, and totals must reconcile. Shared cells
        // because both callbacks observe the run state.
        use std::cell::{Cell, RefCell};
        let mut aggs = Vec::new();
        let row_total = Cell::new(0u64);
        let run_total = Cell::new(0u64);
        let cur: RefCell<Option<Fqdn>> = RefCell::new(None);
        let seen_runs: RefCell<Vec<Fqdn>> = RefCell::new(Vec::new());
        for shard in 0..shard_count {
            scan_shard_visit(
                &tmp.0,
                shard,
                &mut |agg: FqdnAggregate| {
                    assert_eq!(
                        cur.borrow().as_ref(),
                        Some(&agg.fqdn),
                        "aggregate closes its run"
                    );
                    assert_eq!(run_total.get(), agg.total_request_cnt);
                    run_total.set(0);
                    *cur.borrow_mut() = None;
                    aggs.push(agg);
                },
                Some(&mut |fqdn, _rdata, _day, cnt| {
                    if cur.borrow().as_ref() != Some(fqdn) {
                        assert!(
                            cur.borrow().is_none(),
                            "previous run not closed by an aggregate"
                        );
                        assert!(
                            !seen_runs.borrow().contains(fqdn),
                            "fqdn runs must be contiguous"
                        );
                        seen_runs.borrow_mut().push(fqdn.clone());
                        *cur.borrow_mut() = Some(fqdn.clone());
                    }
                    row_total.set(row_total.get() + cnt);
                    run_total.set(run_total.get() + cnt);
                }),
            )
            .unwrap();
        }
        aggs.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
        assert_eq!(aggs, want);
        assert_eq!(
            row_total.get(),
            want.iter().map(|a| a.total_request_cnt).sum::<u64>()
        );
    }

    #[test]
    fn mmap_scan_rejects_bit_rot() {
        let tmp = TempDir::new("bitrot");
        let store = DiskStore::create(&tmp.0, StoreConfig::default()).unwrap();
        fill(&store);
        store.compact().unwrap();
        drop(store);
        assert!(stream_snapshot_aggregates(&tmp.0, 4).is_ok());

        // Flip one byte in the middle of each shard's segment: the
        // mmap-backed scan must reject every poisoned shard via CRC.
        let mut flipped = 0;
        for shard in 0..StoreConfig::default().shards {
            for path in shard_segment_paths(&tmp.0, shard).unwrap() {
                let mut bytes = std::fs::read(&path).unwrap();
                if bytes.len() < 64 {
                    continue;
                }
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                std::fs::write(&path, &bytes).unwrap();
                flipped += 1;
                let err = scan_shard(&tmp.0, shard);
                assert!(err.is_err(), "bit rot in {} must not scan", path.display());
                bytes[mid] ^= 0x40;
                std::fs::write(&path, &bytes).unwrap();
            }
        }
        assert!(flipped > 0, "test must have poisoned at least one segment");
        assert!(stream_snapshot_aggregates(&tmp.0, 4).is_ok());
    }

    #[test]
    fn empty_store_streams_empty() {
        let tmp = TempDir::new("empty");
        let store = DiskStore::create(&tmp.0, StoreConfig::default()).unwrap();
        store.flush().unwrap();
        drop(store);
        assert!(stream_snapshot_aggregates(&tmp.0, 4).unwrap().is_empty());
    }
}
