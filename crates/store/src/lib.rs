//! # fw-store
//!
//! Persistent, sharded, append-only storage engine for PDNS
//! daily-aggregate rows — the ingest-once / query-many substrate that
//! lets figure binaries replay a snapshot instead of regenerating a
//! synthetic world (DESIGN.md §9).
//!
//! Three layers:
//!
//! * [`SegmentBuilder`] / [`decode_segment`] — the immutable segment
//!   file: CRC-checksummed blocks of delta-encoded rows with a per-
//!   segment fqdn dictionary and a footer index (see `segment.rs` for
//!   the byte layout).
//! * [`DiskStore`] — N hash-sharded, lock-striped in-memory tables, each
//!   journaled to its own segment directory; `flush` persists unflushed
//!   deltas as sorted segments, `compact` folds a shard's segments into
//!   one. Reopening replays segments and reproduces identical
//!   [`fw_dns::pdns::FqdnAggregate`]s.
//! * [`fw_dns::pdns::PdnsBackend`] — the storage trait the measurement
//!   pipeline consumes; `DiskStore` and the in-memory `PdnsStore` are
//!   interchangeable behind it.
//!
//! Everything is `std`-only. Telemetry (`fw.store.*` counters and the
//! `fw.store.flush_us` histogram) flows through `fw-obs` and is inert
//! unless metrics are enabled.

pub mod codec;
mod crc;
mod mmap;
mod scan;
mod segment;
mod store;

pub use crc::crc32;
pub use scan::{scan_shard_visit, stream_snapshot_aggregates, RowVisitor};
pub use segment::{decode_segment, read_segment, SegRow, SegmentBuilder, SegmentData};
pub use store::{DiskStore, ShardIngestStats, SharedDiskStore};

use std::path::PathBuf;

/// Tuning knobs for [`DiskStore::create`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of hash shards (lock stripes / segment directories).
    pub shards: usize,
    /// Auto-flush a shard once this many rows hold unflushed deltas
    /// (0 disables auto-flush; `flush`/`compact` remain explicit).
    pub flush_rows: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            shards: 16,
            flush_rows: 1 << 16,
        }
    }
}

/// Everything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Structural damage: bad magic, CRC mismatch, truncation,
    /// out-of-range indices.
    Corrupt(String),
    /// Format version from a different (future) build.
    Version {
        found: u64,
        expected: u64,
    },
    /// `create` refused to clobber an existing store.
    AlreadyExists(PathBuf),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
            StoreError::Version { found, expected } => {
                write!(
                    f,
                    "store format version {found}, this build reads {expected}"
                )
            }
            StoreError::AlreadyExists(dir) => {
                write!(f, "store already exists at {}", dir.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::{PdnsBackend, PdnsStore};
    use fw_types::{DayStamp, Fqdn, Rdata, MEASUREMENT_START};
    use std::net::Ipv4Addr;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn v4(a: u8, b: u8) -> Rdata {
        Rdata::V4(Ipv4Addr::new(198, 51, a, b))
    }

    fn day(n: i64) -> DayStamp {
        MEASUREMENT_START + n
    }

    /// Unique scratch directory per test invocation, removed on drop.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "fw-store-test-{}-{tag}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            shards: 4,
            flush_rows: 0,
        }
    }

    #[test]
    fn create_flush_reopen_preserves_aggregates() {
        let tmp = TempDir::new("roundtrip");
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        store.observe_count(&fq("a.on.aws"), &v4(100, 1), day(0), 5);
        store.observe_count(&fq("a.on.aws"), &v4(100, 1), day(0), 2);
        store.observe_count(&fq("a.on.aws"), &v4(100, 2), day(3), 1);
        store.observe_count(
            &fq("b.lambda-url.us-east-1.on.aws"),
            &v4(100, 3),
            day(10),
            9,
        );
        assert_eq!(store.fqdn_count(), 2);
        assert_eq!(store.record_count(), 3);
        let before = store.all_aggregates();
        store.flush().unwrap();
        drop(store);

        let reopened = DiskStore::open_read_only(tmp.path()).unwrap();
        assert_eq!(reopened.fqdn_count(), 2);
        assert_eq!(reopened.record_count(), 3);
        assert_eq!(reopened.all_aggregates(), before);
        let agg = reopened.aggregate(&fq("a.on.aws")).unwrap();
        assert_eq!(agg.total_request_cnt, 8);
        assert_eq!(agg.days_count, 2);
    }

    #[test]
    fn deltas_after_flush_accumulate_across_segments() {
        let tmp = TempDir::new("deltas");
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        store.observe_count(&fq("x.on.aws"), &v4(1, 1), day(0), 10);
        store.flush().unwrap();
        // Same key again after the flush: lands in a second segment.
        store.observe_count(&fq("x.on.aws"), &v4(1, 1), day(0), 7);
        store.observe_count(&fq("x.on.aws"), &v4(1, 2), day(1), 1);
        store.flush().unwrap();
        drop(store);

        let reopened = DiskStore::open(tmp.path()).unwrap();
        let agg = reopened.aggregate(&fq("x.on.aws")).unwrap();
        assert_eq!(agg.total_request_cnt, 18);
        assert_eq!(reopened.record_count(), 2);
        // The duplicate key merged on replay: counts summed across segments.
        let dist: u64 = agg
            .rdata_dist
            .iter()
            .filter(|(r, _)| *r == v4(1, 1))
            .map(|(_, c)| *c)
            .sum();
        assert_eq!(dist, 17);
    }

    #[test]
    fn compaction_folds_segments_and_preserves_content() {
        let tmp = TempDir::new("compact");
        let store = DiskStore::create(
            tmp.path(),
            StoreConfig {
                shards: 2,
                flush_rows: 0,
            },
        )
        .unwrap();
        for round in 0..5i64 {
            for i in 0..20u8 {
                store.observe_count(&fq(&format!("f{i}.on.aws")), &v4(2, i), day(round), 1);
            }
            store.flush().unwrap();
        }
        let before = store.all_aggregates();
        assert!(store.segment_count() >= 5);
        store.compact().unwrap();
        assert!(store.segment_count() <= 2, "one segment per shard");
        assert_eq!(store.all_aggregates(), before);
        drop(store);
        let reopened = DiskStore::open(tmp.path()).unwrap();
        assert_eq!(reopened.all_aggregates(), before);
    }

    #[test]
    fn auto_flush_kicks_in() {
        let tmp = TempDir::new("autoflush");
        let store = DiskStore::create(
            tmp.path(),
            StoreConfig {
                shards: 1,
                flush_rows: 10,
            },
        )
        .unwrap();
        for i in 0..25i64 {
            store.observe_count(&fq("hot.on.aws"), &v4(3, 1), day(i), 1);
        }
        assert!(store.segment_count() >= 2, "auto-flush wrote segments");
        store.flush().unwrap();
        drop(store);
        let reopened = DiskStore::open(tmp.path()).unwrap();
        assert_eq!(
            reopened.aggregate(&fq("hot.on.aws")).unwrap().days_count,
            25
        );
    }

    #[test]
    fn matches_in_memory_store() {
        let tmp = TempDir::new("equiv");
        let mut mem = PdnsStore::new();
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        // Deterministic pseudo-random workload, no RNG dependency.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..2_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = fq(&format!("f{}.on.aws", state % 97));
            let r = v4((state >> 16) as u8 % 7, (state >> 24) as u8 % 11);
            let d = day((state >> 32) as i64 % 200);
            let cnt = state % 5 + 1;
            mem.observe_count(&f, &r, d, cnt);
            store.observe_count(&f, &r, d, cnt);
        }
        store.flush().unwrap();
        assert_eq!(store.fqdn_count(), mem.fqdn_count());
        assert_eq!(store.all_aggregates(), mem.all_aggregates());
        drop(store);
        let reopened = DiskStore::open_read_only(tmp.path()).unwrap();
        assert_eq!(reopened.all_aggregates(), mem.all_aggregates());
    }

    #[test]
    fn create_refuses_to_clobber() {
        let tmp = TempDir::new("clobber");
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        drop(store);
        match DiskStore::create(tmp.path(), small_config()) {
            Err(StoreError::AlreadyExists(_)) => {}
            other => panic!("expected AlreadyExists, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn corrupted_segment_is_rejected_on_open() {
        let tmp = TempDir::new("corrupt");
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        store.observe_count(&fq("c.on.aws"), &v4(5, 5), day(0), 3);
        store.flush().unwrap();
        drop(store);
        // Flip one byte in the middle of the (only) segment file.
        let mut seg_path = None;
        for shard in std::fs::read_dir(tmp.path()).unwrap() {
            let shard = shard.unwrap().path();
            if shard.is_dir() {
                for f in std::fs::read_dir(&shard).unwrap() {
                    let f = f.unwrap().path();
                    if f.extension().is_some_and(|e| e == "fws") {
                        seg_path = Some(f);
                    }
                }
            }
        }
        let seg_path = seg_path.expect("segment written");
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg_path, &bytes).unwrap();
        match DiskStore::open(tmp.path()) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("CRC") || msg.contains("corrupt") || !msg.is_empty())
            }
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn missing_superblock_is_io_error() {
        let tmp = TempDir::new("missing");
        match DiskStore::open(tmp.path()) {
            Err(StoreError::Io(_)) => {}
            other => panic!("expected Io, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn read_only_store_rejects_writes() {
        let tmp = TempDir::new("readonly");
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        store.observe_count(&fq("r.on.aws"), &v4(9, 9), day(0), 1);
        store.flush().unwrap();
        drop(store);
        let ro = DiskStore::open_read_only(tmp.path()).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ro.observe_count(&fq("r.on.aws"), &v4(9, 9), day(1), 1);
        }));
        assert!(result.is_err(), "read-only store must reject writes");
    }

    #[test]
    fn concurrent_sharded_ingest() {
        use std::sync::Arc;
        let tmp = TempDir::new("concurrent");
        let store = Arc::new(
            DiskStore::create(
                tmp.path(),
                StoreConfig {
                    shards: 8,
                    flush_rows: 500,
                },
            )
            .unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000i64 {
                    let f = fq(&format!("t{t}-{}.on.aws", i % 50));
                    store.observe_count(&f, &v4(t, (i % 256) as u8), day(i % 30), 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        store.flush().unwrap();
        assert_eq!(store.fqdn_count(), 200);
        let total: u64 = store
            .all_aggregates()
            .iter()
            .map(|a| a.total_request_cnt)
            .sum();
        assert_eq!(total, 4_000);
        drop(store);
        // Note: Arc::try_unwrap not needed; reopen from disk instead.
        let reopened = DiskStore::open(tmp.path()).unwrap();
        let total: u64 = reopened
            .all_aggregates()
            .iter()
            .map(|a| a.total_request_cnt)
            .sum();
        assert_eq!(total, 4_000);
    }

    /// Build the same pseudo-random workload into both backend flavors.
    fn twin_stores(tmp: &TempDir) -> (PdnsStore, DiskStore) {
        let mut mem = PdnsStore::new();
        let store = DiskStore::create(tmp.path(), small_config()).unwrap();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..3_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = fq(&format!("f{}.on.aws", state % 83));
            let r = v4((state >> 16) as u8 % 5, (state >> 24) as u8 % 9);
            let d = day((state >> 32) as i64 % 120);
            let cnt = state % 7 + 1;
            mem.observe_count(&f, &r, d, cnt);
            store.observe_count(&f, &r, d, cnt);
        }
        (mem, store)
    }

    /// The non-allocating visitor must see exactly the rows — and the
    /// row order — its own backend's materializing read path produces.
    /// (Row *lists* are not comparable across backends: `PdnsStore`
    /// merges same-day duplicates only at the tail while `DiskStore`
    /// merges on exact key; only aggregates are backend-invariant.)
    #[test]
    fn record_visitor_matches_records_for_order() {
        let tmp = TempDir::new("visitor");
        let (mem, store) = twin_stores(&tmp);
        let mut checked = 0usize;
        for fqdn in mem.sorted_fqdns() {
            // PdnsStore: visitor ≡ records_for, element for element.
            let owned: Vec<_> = mem
                .records_for(&fqdn)
                .into_iter()
                .map(|r| (r.rtype, r.rdata, r.pdate, r.request_cnt))
                .collect();
            assert!(!owned.is_empty());
            let mut via_mem = Vec::new();
            mem.for_each_record_of(&fqdn, |rt, rd, pd, cnt| {
                via_mem.push((rt, rd.clone(), pd, cnt));
            });
            assert_eq!(via_mem, owned, "PdnsStore visitor diverges for {fqdn}");

            // DiskStore: visitor ≡ its own rows in canonical
            // `(pdate, rdata text)` order.
            let mut disk_rows = Vec::new();
            store.for_each_row(&mut |f, rt, rd, pd, cnt| {
                if *f == fqdn {
                    disk_rows.push((rt, rd.clone(), pd, cnt));
                }
            });
            disk_rows.sort_by_key(|a| (a.2, a.1.text()));
            let mut via_disk = Vec::new();
            store.for_each_record_of(&fqdn, &mut |rt, rd, pd, cnt| {
                via_disk.push((rt, rd.clone(), pd, cnt));
            });
            assert_eq!(via_disk, disk_rows, "DiskStore visitor diverges for {fqdn}");
            checked += owned.len();
        }
        assert!(checked > 100, "workload produced enough rows to matter");
        // Unknown fqdns: no rows, no panic.
        store.for_each_record_of(&fq("missing.on.aws"), &mut |_, _, _, _| {
            panic!("visited a row of an unknown fqdn")
        });
    }

    #[test]
    fn par_aggregates_is_worker_count_invariant() {
        let tmp = TempDir::new("paragg");
        let (mem, store) = twin_stores(&tmp);
        let want = mem.all_aggregates();
        for workers in [1, 3, 8] {
            assert_eq!(mem.par_aggregates(workers), want, "mem workers={workers}");
            assert_eq!(
                store.par_aggregates(workers),
                want,
                "disk workers={workers}"
            );
        }
    }

    #[test]
    fn parallel_ingest_matches_serial() {
        let src_tmp = TempDir::new("ingest-src");
        let (mem, _src_disk) = twin_stores(&src_tmp);
        let mut want = None;
        for workers in [1, 3, 8] {
            let tmp = TempDir::new(&format!("ingest-w{workers}"));
            let dst = DiskStore::create(
                tmp.path(),
                StoreConfig {
                    shards: 4,
                    flush_rows: 512,
                },
            )
            .unwrap();
            dst.ingest_parallel(&mem, workers);
            dst.compact().unwrap();
            let got = dst.all_aggregates();
            assert_eq!(got, mem.all_aggregates(), "workers={workers}");
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(&got, w, "workers={workers}"),
            }
        }
    }
}
