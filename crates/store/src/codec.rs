//! Variable-length integer codec used inside segment blocks: LEB128 for
//! unsigned values, zigzag-LEB128 for signed day stamps, plus a bounded
//! byte reader whose every failure maps to [`StoreError::Corrupt`] — a
//! truncated or bit-flipped block must never panic, only error.

use crate::StoreError;

/// Append `v` as LEB128.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` zigzag-encoded.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Bounded reader over one decoded block payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::Corrupt(format!("{what} at offset {}", self.pos))
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.corrupt("truncated byte"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("truncated byte run"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn uvarint(&mut self) -> Result<u64, StoreError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(self.corrupt("uvarint overflow"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.corrupt("uvarint too long"));
            }
        }
    }

    pub fn ivarint(&mut self) -> Result<i64, StoreError> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// [`Reader::uvarint`] with a word-at-a-time (SWAR) fast path.
    ///
    /// Loads 8 bytes as one little-endian word and finds the varint
    /// terminator from the continuation-bit mask, so varints up to 8
    /// bytes (56 value bits — every row field the segment builder
    /// emits at PDNS shapes) decode without a per-byte loop. Longer
    /// varints and reads within 8 bytes of the buffer end fall back to
    /// the scalar decoder, which also owns every error path — the two
    /// decoders accept and reject exactly the same byte strings with
    /// the same errors (proptest-enforced in `tests/proptest_store.rs`).
    #[inline]
    pub fn uvarint_swar(&mut self) -> Result<u64, StoreError> {
        const CONT: u64 = 0x8080_8080_8080_8080;
        const DATA: u64 = 0x7F7F_7F7F_7F7F_7F7F;
        if let Some(window) = self.buf.get(self.pos..self.pos + 8) {
            let word = u64::from_le_bytes(window.try_into().expect("8 bytes"));
            let non_cont = !word & CONT;
            if non_cont != 0 {
                let len = (non_cont.trailing_zeros() >> 3) as usize + 1;
                // Truncate to the varint's own bytes (the tail of the
                // word belongs to the next varint), drop continuation
                // bits, then compact the eight 7-bit groups pairwise:
                // 7+7 → 14-bit lanes, 14+14 → 28, 28+28 → 56.
                let keep = if len == 8 {
                    word
                } else {
                    word & ((1u64 << (8 * len)) - 1)
                };
                let x = keep & DATA;
                let x = (x & 0x007F_007F_007F_007F) | ((x & 0x7F00_7F00_7F00_7F00) >> 1);
                let x = (x & 0x0000_3FFF_0000_3FFF) | ((x & 0x3FFF_0000_3FFF_0000) >> 2);
                let x = (x & 0x0000_0000_0FFF_FFFF) | ((x & 0x0FFF_FFFF_0000_0000) >> 4);
                self.pos += len;
                return Ok(x);
            }
        }
        self.uvarint()
    }

    /// Decode four consecutive uvarints — one delta-encoded segment row
    /// — through the SWAR fast path.
    #[inline]
    pub fn uvarint4(&mut self) -> Result<[u64; 4], StoreError> {
        Ok([
            self.uvarint_swar()?,
            self.uvarint_swar()?,
            self.uvarint_swar()?,
            self.uvarint_swar()?,
        ])
    }

    /// `uvarint` narrowed to `usize`-addressable lengths, guarded so a
    /// corrupted length can never trigger a huge allocation.
    pub fn read_len(&mut self, max: usize) -> Result<usize, StoreError> {
        let v = self.uvarint()?;
        if v > max as u64 {
            return Err(self.corrupt("implausible length"));
        }
        Ok(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.uvarint().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn ivarint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, 19083, -19083, i64::MIN, i64::MAX];
        for &v in &values {
            put_ivarint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.ivarint().unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_error() {
        let mut r = Reader::new(&[0x80]);
        assert!(r.uvarint().is_err());
        let mut r = Reader::new(&[0x80; 11]);
        assert!(r.uvarint().is_err());
        let mut r = Reader::new(&[1, 2]);
        assert!(r.bytes(3).is_err());
    }
}
