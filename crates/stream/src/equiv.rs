//! Streaming ↔ batch equivalence checks.
//!
//! The daemon's whole design rests on one claim: its incremental state
//! is *exactly* the batch pipeline's output — not approximately, not
//! modulo ordering, but field-for-field equal. This module states the
//! claim as a checkable function shared by the `fw_stream_gate` CI
//! binary and the integration tests: given a finished daemon and the
//! source backend it streamed from, recompute everything with the
//! batch code path (`identify_functions_with` + the §4 sweeps) and
//! compare verdict maps, usage tables, and row counts. Any mismatch
//! returns a description of the first divergence.

use crate::daemon::DaemonFinal;
use fw_core::identify::{identify_functions_with, IdentificationReport};
use fw_core::usage::{
    ingress_table_with, invocation_report, monthly_new_fqdns, monthly_requests_with,
};
use fw_dns::pdns::PdnsBackend;

fn check_reports(
    streamed: &IdentificationReport,
    batch: &IdentificationReport,
) -> Result<(), String> {
    if streamed.unmatched != batch.unmatched {
        return Err(format!(
            "unmatched: streamed {} vs batch {}",
            streamed.unmatched, batch.unmatched
        ));
    }
    if streamed.total_requests != batch.total_requests {
        return Err(format!(
            "total_requests: streamed {} vs batch {}",
            streamed.total_requests, batch.total_requests
        ));
    }
    if streamed.functions.len() != batch.functions.len() {
        return Err(format!(
            "function count: streamed {} vs batch {}",
            streamed.functions.len(),
            batch.functions.len()
        ));
    }
    for (s, b) in streamed.functions.iter().zip(&batch.functions) {
        if s.fqdn != b.fqdn {
            return Err(format!("function order: {} vs {}", s.fqdn, b.fqdn));
        }
        if s.provider != b.provider || s.region != b.region {
            return Err(format!("verdict mismatch for {}", s.fqdn));
        }
        if s.agg != b.agg {
            return Err(format!(
                "aggregate mismatch for {}: streamed {:?} vs batch {:?}",
                s.fqdn, s.agg, b.agg
            ));
        }
    }
    Ok(())
}

/// Verify a finished daemon against a batch run over `source` (the
/// backend whose rows were streamed). `workers` drives the batch-side
/// sweeps — both sides are worker-count invariant, so any value must
/// pass. Checks, in order: the identification report (verdict map +
/// per-function §3.2 aggregates), the Figure 3/4 monthly series, the
/// Table 2 ingress rows, the Figure 5 invocation stats, and the
/// absorbed store's row/fqdn counts.
pub fn check_equivalence<B, S>(
    fin: &DaemonFinal<B>,
    source: &S,
    workers: usize,
) -> Result<(), String>
where
    B: PdnsBackend,
    S: PdnsBackend + ?Sized,
{
    let batch = identify_functions_with(source, workers);
    check_reports(&fin.report, &batch).map_err(|e| format!("identification: {e}"))?;

    let new_fqdns = monthly_new_fqdns(&batch);
    if fin.new_fqdns != new_fqdns {
        return Err("figure 3 (monthly new fqdns) diverges".to_string());
    }
    let request_series = monthly_requests_with(&batch, source, workers);
    if fin.request_series != request_series {
        return Err(format!(
            "figure 4 (monthly requests) diverges: streamed {:?} vs batch {:?}",
            fin.request_series.total(),
            request_series.total()
        ));
    }
    let ingress = ingress_table_with(&batch, source, workers);
    if fin.ingress != ingress {
        for (s, b) in fin.ingress.iter().zip(&ingress) {
            if s != b {
                return Err(format!(
                    "table 2 (ingress) diverges: streamed {s:?} vs batch {b:?}"
                ));
            }
        }
        return Err(format!(
            "table 2 (ingress) diverges: {} streamed rows vs {} batch rows",
            fin.ingress.len(),
            ingress.len()
        ));
    }
    let invocation = invocation_report(&batch);
    if fin.invocation != invocation {
        return Err("figure 5 (invocation) diverges".to_string());
    }

    if fin.store.fqdn_count() != source.fqdn_count() {
        return Err(format!(
            "store fqdn count: streamed {} vs source {}",
            fin.store.fqdn_count(),
            source.fqdn_count()
        ));
    }
    // Raw `record_count` is a storage metric (backends merge duplicate
    // `(fqdn, rdata, pdate)` keys differently — see `PdnsBackend`), so
    // row-content equality is checked canonically: every fqdn's full
    // aggregate (day counts, request totals, rdata distribution) must
    // match between the absorbed store and the source.
    let mut streamed_aggs = fin.store.par_aggregates(workers);
    let mut source_aggs = source.par_aggregates(workers);
    streamed_aggs.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
    source_aggs.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
    if streamed_aggs != source_aggs {
        for (s, b) in streamed_aggs.iter().zip(&source_aggs) {
            if s != b {
                return Err(format!(
                    "absorbed store aggregate diverges for {}: {:?} vs {:?}",
                    s.fqdn, s, b
                ));
            }
        }
        return Err("absorbed store aggregates diverge".to_string());
    }
    if fin.checkpoint.identified != batch.functions.len() as u64 {
        return Err("checkpoint identified count diverges from batch".to_string());
    }
    Ok(())
}
