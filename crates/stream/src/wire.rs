//! Frame codec for streaming PDNS batches over a
//! [`Connection`](fw_net::Connection).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame     := 0x01 seq:u64 watermark:i64 count:u32 row*   (batch)
//!            | 0x02                                        (end of stream)
//! row       := fqdn_len:u16 fqdn_bytes
//!              rdata_tag:u8 rdata_body
//!              day:i64 cnt:u64
//! rdata_body:= 4 bytes            (tag 0, A)
//!            | 16 bytes           (tag 1, AAAA)
//!            | name_len:u16 bytes (tag 2, CNAME target)
//! ```
//!
//! Rdata is encoded structurally (not as display text) so a decoded
//! row is `==` to the encoded one — the equivalence gate depends on
//! the codec being lossless. After the end-of-stream frame the daemon
//! answers with a single [`ACK`] byte, which the feeder blocks on; the
//! ack doubles as the "all batches applied" barrier in virtual time.

use fw_dns::pdns::PdnsRow;
use fw_net::Connection;
use fw_types::{DayStamp, Fqdn, Rdata};
use std::io;
use std::net::{Ipv4Addr, Ipv6Addr};

const TAG_BATCH: u8 = 0x01;
const TAG_EOS: u8 = 0x02;

const RDATA_V4: u8 = 0;
const RDATA_V6: u8 = 1;
const RDATA_NAME: u8 = 2;

/// Byte the daemon writes back after processing the end-of-stream
/// frame.
pub const ACK: u8 = 0xA5;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Batch {
        seq: u64,
        watermark_day: DayStamp,
        rows: Vec<PdnsRow>,
    },
    Eos,
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "string too long for frame"))?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_row(buf: &mut Vec<u8>, row: &PdnsRow) -> io::Result<()> {
    put_str(buf, row.fqdn.as_str())?;
    match &row.rdata {
        Rdata::V4(ip) => {
            buf.push(RDATA_V4);
            buf.extend_from_slice(&ip.octets());
        }
        Rdata::V6(ip) => {
            buf.push(RDATA_V6);
            buf.extend_from_slice(&ip.octets());
        }
        Rdata::Name(name) => {
            buf.push(RDATA_NAME);
            put_str(buf, name.as_str())?;
        }
    }
    buf.extend_from_slice(&row.day.0.to_le_bytes());
    buf.extend_from_slice(&row.cnt.to_le_bytes());
    Ok(())
}

/// Encode and send one batch frame; returns the bytes written.
pub fn write_batch<C: Connection + ?Sized>(
    conn: &mut C,
    seq: u64,
    watermark_day: DayStamp,
    rows: &[PdnsRow],
) -> io::Result<usize> {
    let mut buf = Vec::with_capacity(32 + rows.len() * 48);
    buf.push(TAG_BATCH);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&watermark_day.0.to_le_bytes());
    let count = u32::try_from(rows.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "batch too large"))?;
    buf.extend_from_slice(&count.to_le_bytes());
    for row in rows {
        put_row(&mut buf, row)?;
    }
    conn.write_all(&buf)?;
    Ok(buf.len())
}

/// Send the end-of-stream frame.
pub fn write_eos<C: Connection + ?Sized>(conn: &mut C) -> io::Result<usize> {
    conn.write_all(&[TAG_EOS])?;
    Ok(1)
}

fn get_u16<C: Connection + ?Sized>(conn: &mut C) -> io::Result<u16> {
    let mut b = [0u8; 2];
    conn.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn get_u32<C: Connection + ?Sized>(conn: &mut C) -> io::Result<u32> {
    let mut b = [0u8; 4];
    conn.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<C: Connection + ?Sized>(conn: &mut C) -> io::Result<u64> {
    let mut b = [0u8; 8];
    conn.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_str<C: Connection + ?Sized>(conn: &mut C) -> io::Result<String> {
    let len = get_u16(conn)? as usize;
    let mut bytes = vec![0u8; len];
    conn.read_exact(&mut bytes)?;
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 string in frame"))
}

fn get_fqdn<C: Connection + ?Sized>(conn: &mut C) -> io::Result<Fqdn> {
    let s = get_str(conn)?;
    Fqdn::parse(&s).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad fqdn in frame: {e}"),
        )
    })
}

fn get_row<C: Connection + ?Sized>(conn: &mut C) -> io::Result<PdnsRow> {
    let fqdn = get_fqdn(conn)?;
    let mut tag = [0u8; 1];
    conn.read_exact(&mut tag)?;
    let rdata = match tag[0] {
        RDATA_V4 => {
            let mut o = [0u8; 4];
            conn.read_exact(&mut o)?;
            Rdata::V4(Ipv4Addr::from(o))
        }
        RDATA_V6 => {
            let mut o = [0u8; 16];
            conn.read_exact(&mut o)?;
            Rdata::V6(Ipv6Addr::from(o))
        }
        RDATA_NAME => Rdata::Name(get_fqdn(conn)?),
        t => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown rdata tag {t}"),
            ))
        }
    };
    let day = DayStamp(get_u64(conn)? as i64);
    let cnt = get_u64(conn)?;
    Ok(PdnsRow {
        fqdn,
        rdata,
        day,
        cnt,
    })
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
pub fn read_frame<C: Connection + ?Sized>(conn: &mut C) -> io::Result<Option<Frame>> {
    let mut tag = [0u8; 1];
    if conn.read(&mut tag)? == 0 {
        return Ok(None);
    }
    match tag[0] {
        TAG_EOS => Ok(Some(Frame::Eos)),
        TAG_BATCH => {
            let seq = get_u64(conn)?;
            let watermark_day = DayStamp(get_u64(conn)? as i64);
            let count = get_u32(conn)? as usize;
            let mut rows = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                rows.push(get_row(conn)?);
            }
            Ok(Some(Frame::Batch {
                seq,
                watermark_day,
                rows,
            }))
        }
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown frame tag {t}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_net::SimNet;
    use std::net::SocketAddr;

    fn rows() -> Vec<PdnsRow> {
        vec![
            PdnsRow {
                fqdn: Fqdn::parse("fn1.example.com").unwrap(),
                rdata: Rdata::V4(Ipv4Addr::new(203, 0, 113, 7)),
                day: DayStamp(19_100),
                cnt: 42,
            },
            PdnsRow {
                fqdn: Fqdn::parse("fn2.example.com").unwrap(),
                rdata: Rdata::V6(Ipv6Addr::LOCALHOST),
                day: DayStamp(19_101),
                cnt: 1,
            },
            PdnsRow {
                fqdn: Fqdn::parse("fn3.example.com").unwrap(),
                rdata: Rdata::Name(Fqdn::parse("edge.cdn.example.net").unwrap()),
                day: DayStamp(19_102),
                cnt: u64::MAX / 2,
            },
        ]
    }

    #[test]
    fn frames_round_trip_over_simnet() {
        let net = SimNet::new(7);
        let addr: SocketAddr = "10.0.0.1:9000".parse().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        net.listen_fn(addr, move |mut conn| loop {
            match read_frame(&mut conn).expect("read frame") {
                Some(Frame::Eos) => {
                    conn.write_all(&[ACK]).unwrap();
                    tx.send(Frame::Eos).unwrap();
                    break;
                }
                Some(f) => tx.send(f).unwrap(),
                None => break,
            }
        });
        let reg = net.clock().register();
        let net2 = net.clone();
        let sent = rows();
        let sent2 = sent.clone();
        let feeder = std::thread::spawn(move || {
            let _active = reg.map(|r| r.activate());
            let mut conn = net2.connect(addr).expect("connect");
            write_batch(&mut conn, 3, DayStamp(19_102), &sent2).unwrap();
            write_eos(&mut conn).unwrap();
            let mut ack = [0u8; 1];
            conn.read_exact(&mut ack).unwrap();
            assert_eq!(ack[0], ACK);
        });
        let got = rx.recv().unwrap();
        assert_eq!(
            got,
            Frame::Batch {
                seq: 3,
                watermark_day: DayStamp(19_102),
                rows: sent
            }
        );
        assert_eq!(rx.recv().unwrap(), Frame::Eos);
        feeder.join().unwrap();
    }
}
