//! Batch source: slice a PDNS row set into the time-ordered batches a
//! sensor would deliver.
//!
//! The real collection pipeline (paper §3.2) receives passive-DNS
//! daily aggregates in feed order; the replay source reproduces that
//! cadence from any [`PdnsBackend`]: all rows of virtual day `D` are
//! delivered `D - first_day` virtual days after stream start. With
//! `batches_per_day > 1` a day's rows are further partitioned by fqdn
//! hash into sub-day batches — a deterministic stand-in for intra-day
//! feed flushes. Partitioning is by fqdn (not by row) so a batch is a
//! self-contained slice of the day, and because every downstream
//! update commutes over rows, the granularity never changes final
//! state — only the timestamps at which evidence becomes visible.

use fw_dns::pdns::{PdnsBackend, PdnsRow};
use fw_types::{fnv, DayStamp};

/// Microseconds per virtual day.
pub const DAY_US: u64 = 86_400_000_000;

/// One time-ordered delivery unit.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stream-lifetime sequence number (0-based, contiguous).
    pub seq: u64,
    /// Watermark this batch closes: every row in it is on this day,
    /// and the source emits no further rows for earlier days.
    pub watermark_day: DayStamp,
    /// Virtual arrival time, µs from stream start.
    pub offset_us: u64,
    pub rows: Vec<PdnsRow>,
}

/// Dump a backend's rows in deterministic `(day, fqdn, rdata)` order —
/// the canonical replay order regardless of backend iteration order.
pub fn collect_rows<B: PdnsBackend + ?Sized>(pdns: &B) -> Vec<PdnsRow> {
    let mut rows = Vec::with_capacity(pdns.record_count());
    pdns.for_each_row(&mut |fqdn, _rtype, rdata, day, cnt| {
        rows.push(PdnsRow {
            fqdn: fqdn.clone(),
            rdata: rdata.clone(),
            day,
            cnt,
        });
    });
    rows.sort_by(|a, b| {
        (a.day, &a.fqdn, &a.rdata)
            .cmp(&(b.day, &b.fqdn, &b.rdata))
            .then(a.cnt.cmp(&b.cnt))
    });
    rows
}

/// Slice day-sorted rows into batches. `batches_per_day` of 1 yields
/// one batch per active day; 4 ≈ 6-hour flushes; 24 ≈ hourly. Days
/// (and sub-day slots) with no rows produce no batch — the watermark
/// simply jumps forward with the next delivery. Panics if `rows` is
/// not sorted by day (use [`collect_rows`]).
pub fn day_batches(rows: &[PdnsRow], batches_per_day: u32) -> Vec<Batch> {
    let bpd = batches_per_day.max(1) as u64;
    let slot_us = DAY_US / bpd;
    let mut batches: Vec<Batch> = Vec::new();
    let Some(first_day) = rows.first().map(|r| r.day) else {
        return batches;
    };
    let mut i = 0;
    while i < rows.len() {
        let day = rows[i].day;
        let mut j = i;
        while j < rows.len() && rows[j].day == day {
            j += 1;
        }
        assert!(day >= first_day, "rows not sorted by day");
        let day_rows = &rows[i..j];
        let day_base = (day.0 - first_day.0) as u64 * DAY_US;
        if bpd == 1 {
            batches.push(Batch {
                seq: batches.len() as u64,
                watermark_day: day,
                offset_us: day_base,
                rows: day_rows.to_vec(),
            });
        } else {
            // Stable fqdn-hash partition: a function's whole day lands
            // in one slot, and slot membership is independent of the
            // other rows in the day.
            let mut slots: Vec<Vec<PdnsRow>> = vec![Vec::new(); bpd as usize];
            for row in day_rows {
                let slot = fnv::fnv1a(row.fqdn.as_str().as_bytes()) % bpd;
                slots[slot as usize].push(row.clone());
            }
            for (slot, slot_rows) in slots.into_iter().enumerate() {
                if slot_rows.is_empty() {
                    continue;
                }
                batches.push(Batch {
                    seq: batches.len() as u64,
                    watermark_day: day,
                    offset_us: day_base + slot as u64 * slot_us,
                    rows: slot_rows,
                });
            }
        }
        i = j;
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{Fqdn, Rdata};
    use std::net::Ipv4Addr;

    fn row(fqdn: &str, last: u8, day: i64, cnt: u64) -> PdnsRow {
        PdnsRow {
            fqdn: Fqdn::parse(fqdn).unwrap(),
            rdata: Rdata::V4(Ipv4Addr::new(198, 51, 100, last)),
            day: DayStamp(day),
            cnt,
        }
    }

    #[test]
    fn daily_batches_cover_all_rows_in_day_order() {
        let mut store = PdnsStore::new();
        for r in [
            row("a.example.com", 1, 19_100, 3),
            row("b.example.com", 2, 19_100, 1),
            row("a.example.com", 1, 19_102, 5),
        ] {
            store.observe_count(&r.fqdn, &r.rdata, r.day, r.cnt);
        }
        let rows = collect_rows(&store);
        let batches = day_batches(&rows, 1);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].watermark_day, DayStamp(19_100));
        assert_eq!(batches[0].rows.len(), 2);
        assert_eq!(batches[0].offset_us, 0);
        assert_eq!(batches[1].watermark_day, DayStamp(19_102));
        assert_eq!(batches[1].offset_us, 2 * DAY_US);
        assert_eq!(batches[1].rows.len(), 1);
        let seqs: Vec<u64> = batches.iter().map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn sub_day_batches_partition_without_loss() {
        let rows: Vec<PdnsRow> = (0..50)
            .map(|i| row(&format!("f{i}.example.com"), (i % 10) as u8, 19_100, 1))
            .collect();
        for bpd in [4, 24] {
            let batches = day_batches(&rows, bpd);
            let total: usize = batches.iter().map(|b| b.rows.len()).sum();
            assert_eq!(total, rows.len(), "bpd={bpd} lost rows");
            for b in &batches {
                assert_eq!(b.watermark_day, DayStamp(19_100));
                assert!(b.offset_us < DAY_US);
            }
            // Offsets strictly increase with seq within the day.
            for w in batches.windows(2) {
                assert!(w[0].offset_us < w[1].offset_us);
            }
            // Same fqdn always lands in the same slot: regenerating
            // yields identical batches.
            let again = day_batches(&rows, bpd);
            assert_eq!(batches.len(), again.len());
            for (a, b) in batches.iter().zip(&again) {
                assert_eq!(a.rows, b.rows);
            }
        }
    }

    #[test]
    fn empty_input_yields_no_batches() {
        assert!(day_batches(&[], 4).is_empty());
    }
}
