//! Abuse-candidate re-scoring over the verdict delta stream.
//!
//! The batch pipeline scans for abuse once, after the fact; the daemon
//! instead keeps a candidate set current, re-scoring each identified
//! function every time a batch brings new evidence. The gate here is
//! deliberately the cheap front-of-funnel from the paper's abuse
//! analysis (§5): campaigns that matter run *sustained* — multiple
//! active days — or *hot* — request bursts well beyond the §4.3 "most
//! functions see < 5 requests" baseline. A function crossing either
//! threshold becomes a candidate for the full content-side abuse scan;
//! what this module measures is the *detection latency*: the virtual
//! time between the first row that mentions a function and the batch
//! whose cumulative evidence first crosses the gate. Families the gate
//! never catches (e.g. 1–2-day dynamic redirects that stay under both
//! thresholds) are reported as coverage gaps, not silently dropped.

use fw_core::VerdictChange;
use fw_types::{Fqdn, ProviderId};
use std::collections::{HashMap, HashSet};

/// Candidate gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ScoreConfig {
    /// Flag once a function has been active on at least this many
    /// distinct days…
    pub min_active_days: u32,
    /// …or has accumulated at least this many requests (the §4.3
    /// "> 100 requests" tail the paper calls out as the active
    /// minority).
    pub burst_requests: u64,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig {
            min_active_days: 3,
            burst_requests: 100,
        }
    }
}

/// One function crossing the candidate gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    pub fqdn: Fqdn,
    pub provider: ProviderId,
    /// Virtual time the stream first mentioned the function.
    pub first_seen_us: u64,
    /// Virtual time of the batch whose evidence crossed the gate.
    pub flagged_us: u64,
}

impl Detection {
    /// Detection latency in virtual microseconds.
    pub fn latency_us(&self) -> u64 {
        self.flagged_us.saturating_sub(self.first_seen_us)
    }
}

/// Incremental candidate scorer consuming [`VerdictChange`] deltas.
/// Scope matches the paper's probing scope: only function-identifiable
/// providers (a candidate must be attributable to one function).
#[derive(Debug, Default)]
pub struct CandidateScorer {
    config: ScoreConfig,
    first_seen_us: HashMap<Fqdn, u64>,
    flagged: HashSet<Fqdn>,
    detections: Vec<Detection>,
}

impl CandidateScorer {
    pub fn new(config: ScoreConfig) -> Self {
        CandidateScorer {
            config,
            first_seen_us: HashMap::new(),
            flagged: HashSet::new(),
            detections: Vec::new(),
        }
    }

    /// Fold in one batch's deltas, stamped with the batch's virtual
    /// arrival time. Returns how many functions were newly flagged.
    pub fn observe(&mut self, changes: &[VerdictChange], now_us: u64) -> u64 {
        let mut newly = 0;
        for change in changes {
            match change {
                VerdictChange::Identified { fqdn, provider, .. } => {
                    if provider.function_identifiable() {
                        self.first_seen_us.entry(fqdn.clone()).or_insert(now_us);
                    }
                }
                VerdictChange::Evidence {
                    fqdn,
                    provider,
                    total_requests,
                    days_count,
                    ..
                } => {
                    if !provider.function_identifiable() || self.flagged.contains(fqdn) {
                        continue;
                    }
                    if *days_count >= self.config.min_active_days
                        || *total_requests >= self.config.burst_requests
                    {
                        let first = self.first_seen_us.get(fqdn).copied().unwrap_or(now_us);
                        self.flagged.insert(fqdn.clone());
                        self.detections.push(Detection {
                            fqdn: fqdn.clone(),
                            provider: *provider,
                            first_seen_us: first,
                            flagged_us: now_us,
                        });
                        newly += 1;
                    }
                }
                VerdictChange::Unmatched { .. } => {}
            }
        }
        newly
    }

    /// Functions flagged so far, in flag order.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    pub fn candidate_count(&self) -> u64 {
        self.detections.len() as u64
    }

    pub fn into_detections(self) -> Vec<Detection> {
        self.detections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fqdn(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn evidence(f: &Fqdn, provider: ProviderId, total: u64, days: u32) -> VerdictChange {
        VerdictChange::Evidence {
            fqdn: f.clone(),
            provider,
            total_requests: total,
            days_count: days,
            first_seen: fw_types::DayStamp(19_100),
            last_seen: fw_types::DayStamp(19_100 + days as i64),
        }
    }

    #[test]
    fn flags_once_on_threshold_with_latency() {
        let f = fqdn("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws");
        let mut scorer = CandidateScorer::new(ScoreConfig::default());
        let identified = VerdictChange::Identified {
            fqdn: f.clone(),
            provider: ProviderId::Aws,
            region: None,
        };
        assert_eq!(
            scorer.observe(&[identified, evidence(&f, ProviderId::Aws, 5, 1)], 1_000),
            0
        );
        // Crosses the day threshold two batches later.
        assert_eq!(
            scorer.observe(&[evidence(&f, ProviderId::Aws, 20, 3)], 5_000),
            1
        );
        // Never re-flagged.
        assert_eq!(
            scorer.observe(&[evidence(&f, ProviderId::Aws, 900, 9)], 9_000),
            0
        );
        let d = &scorer.detections()[0];
        assert_eq!(d.first_seen_us, 1_000);
        assert_eq!(d.flagged_us, 5_000);
        assert_eq!(d.latency_us(), 4_000);
    }

    #[test]
    fn burst_gate_and_scope() {
        let aws = fqdn("abc111.lambda-url.us-east-1.on.aws");
        let goog = fqdn("us-central1-proj.cloudfunctions.net");
        let mut scorer = CandidateScorer::new(ScoreConfig::default());
        // Burst on day one flags immediately.
        assert_eq!(
            scorer.observe(
                &[
                    VerdictChange::Identified {
                        fqdn: aws.clone(),
                        provider: ProviderId::Aws,
                        region: None,
                    },
                    evidence(&aws, ProviderId::Aws, 500, 1)
                ],
                42
            ),
            1
        );
        assert_eq!(scorer.detections()[0].latency_us(), 0);
        // Non-function-identifiable providers are out of scope even
        // with overwhelming evidence.
        assert_eq!(
            scorer.observe(&[evidence(&goog, ProviderId::Google, 1_000_000, 700)], 99),
            0
        );
        assert_eq!(scorer.candidate_count(), 1);
    }
}
