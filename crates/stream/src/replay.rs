//! Virtual-time replay: stream batches over `SimNet` into a daemon.
//!
//! Topology: the daemon runs as a `SimNet` listener (its handler
//! thread is clock-registered by `SimNet` before spawn); the feeder
//! runs on its own pre-registered thread, connects, and for each batch
//! sleeps the *virtual* clock to the batch's arrival offset before
//! writing the frame. Virtual time advances only when every registered
//! thread is blocked in a clock wait, so:
//!
//! - while the daemon processes a batch its thread is runnable and the
//!   clock is pinned — processing is instantaneous in virtual time, and
//!   every batch is applied at exactly `offset_us`;
//! - between batches both threads block (daemon on the pipe, feeder on
//!   its sleep) and the clock jumps straight to the next arrival — two
//!   years of telemetry replay in wall-seconds.
//!
//! The run is fully deterministic: virtual timestamps, verdict deltas,
//! and detection latencies are pure functions of `(rows, config)`,
//! independent of wall-clock scheduling and worker count.

use crate::daemon::{DaemonFinal, StreamConfig, StreamDaemon};
use crate::source::Batch;
use crate::wire::{self, Frame};
use fw_dns::pdns::{PdnsBackend, PdnsStore};
use fw_net::vclock::ClockSource;
use fw_net::SimNet;
use fw_obs::counter_add;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of a full replay.
#[derive(Debug)]
pub struct ReplayResult<B> {
    pub final_state: DaemonFinal<B>,
    /// Virtual time at end of stream (µs since stream start).
    pub virtual_us: u64,
    /// Wire bytes the feeder pushed.
    pub wire_bytes: u64,
}

/// Address the daemon listens on inside the simulated network.
const DAEMON_ADDR: &str = "10.99.0.1:7400";

/// Replay `batches` through a daemon over a fresh virtual-time
/// `SimNet`, absorbing rows into `store`. Blocks until the feeder has
/// streamed every batch and the daemon has acknowledged end-of-stream.
pub fn replay<B>(batches: Vec<Batch>, config: &StreamConfig, store: B, seed: u64) -> ReplayResult<B>
where
    B: PdnsBackend + Send + 'static,
{
    let _span = fw_obs::span("stream/replay");
    let net = SimNet::new(seed);
    let addr: SocketAddr = DAEMON_ADDR.parse().expect("static addr");

    let daemon = Arc::new(Mutex::new(Some(StreamDaemon::with_store(config, store))));
    let daemon_in_handler = Arc::clone(&daemon);
    let clock_in_handler = net.clock().clone();
    net.listen_fn(addr, move |mut conn| {
        let _ = conn.set_read_timeout(None);
        loop {
            match wire::read_frame(&mut conn) {
                Ok(Some(Frame::Batch {
                    seq: _,
                    watermark_day,
                    rows,
                })) => {
                    let now_us = clock_in_handler.now_us();
                    let mut guard = daemon_in_handler.lock();
                    if let Some(d) = guard.as_mut() {
                        d.apply_batch(watermark_day, &rows, now_us);
                    }
                }
                Ok(Some(Frame::Eos)) => {
                    let _ = conn.write_all(&[wire::ACK]);
                    break;
                }
                Ok(None) | Err(_) => break,
            }
        }
    });

    // Feeder thread, registered with the virtual clock before spawn so
    // its sleeps participate in quiescence from the first instruction.
    let registration = net.clock().register();
    let feeder_net = net.clone();
    let feeder = std::thread::spawn(move || -> std::io::Result<(u64, u64)> {
        let _active = registration.map(|r| r.activate());
        let clock = feeder_net.clock().clone();
        let mut conn = feeder_net.connect(addr)?;
        conn.set_read_timeout(None)?;
        let mut wire_bytes = 0u64;
        for batch in &batches {
            let now = clock.now_us();
            if batch.offset_us > now {
                clock.sleep(Duration::from_micros(batch.offset_us - now));
            }
            wire_bytes +=
                wire::write_batch(&mut conn, batch.seq, batch.watermark_day, &batch.rows)? as u64;
        }
        wire_bytes += wire::write_eos(&mut conn)? as u64;
        // Block until the daemon has applied everything; the ack pins
        // the end-of-stream virtual timestamp.
        let mut ack = [0u8; 1];
        conn.read_exact(&mut ack)?;
        debug_assert_eq!(ack[0], wire::ACK);
        Ok((clock.now_us(), wire_bytes))
    });

    let (virtual_us, wire_bytes) = feeder
        .join()
        .expect("feeder thread panicked")
        .expect("feeder stream failed");
    counter_add!("fw.stream.wire_bytes", wire_bytes);

    let final_state = daemon
        .lock()
        .take()
        .expect("daemon consumed twice")
        .finish();
    ReplayResult {
        final_state,
        virtual_us,
        wire_bytes,
    }
}

/// [`replay`] into a fresh in-memory store.
pub fn replay_in_memory(
    batches: Vec<Batch>,
    config: &StreamConfig,
    seed: u64,
) -> ReplayResult<PdnsStore> {
    replay(batches, config, PdnsStore::new(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{collect_rows, day_batches, DAY_US};
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Fqdn, Rdata};
    use std::net::Ipv4Addr;

    #[test]
    fn replay_applies_batches_at_their_virtual_offsets() {
        let mut store = PdnsStore::new();
        let f = Fqdn::parse("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws").unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 1));
        // Three active days with a gap: days 0, 1, and 9.
        for (d, cnt) in [(19_100, 50), (19_101, 60), (19_109, 5)] {
            store.observe_count(&f, &ip, DayStamp(d), cnt);
        }
        let batches = day_batches(&collect_rows(&store), 1);
        assert_eq!(batches.len(), 3);
        let config = StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        };
        let result = replay_in_memory(batches, &config, 42);
        // End-of-stream lands on the last batch's arrival: 9 virtual
        // days after start.
        assert_eq!(result.virtual_us, 9 * DAY_US);
        let cp = result.final_state.checkpoint;
        assert_eq!(cp.batches, 3);
        assert_eq!(cp.rows, 3);
        assert_eq!(cp.identified, 1);
        // Burst threshold (100 requests cumulative) crossed on day 1's
        // batch → detection latency exactly one virtual day.
        let det = &result.final_state.detections;
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].first_seen_us, 0);
        assert_eq!(det[0].flagged_us, DAY_US);
        assert_eq!(det[0].latency_us(), DAY_US);
    }
}
