//! The sensing daemon: incremental identify/usage state with an
//! explicit watermark (DESIGN.md §14).
//!
//! One [`StreamDaemon`] owns the four pieces of always-on state:
//!
//! 1. an [`IdentifyEngine`] fed row deltas (verdicts + cumulative
//!    §3.2 aggregates),
//! 2. a [`UsageState`] accumulating the §4 monthly/ingress tables for
//!    rows the engine routes to identified functions,
//! 3. the backing [`PdnsBackend`] (any implementation — the in-memory
//!    store by default, the persistent `fw-store` engine for a durable
//!    deployment), absorbing every row so the daemon can serve batch
//!    sweeps and snapshots at any time,
//! 4. a [`CandidateScorer`] re-scoring abuse candidates on each
//!    batch's evidence.
//!
//! The watermark is the contract with the source: a batch stamped with
//! watermark day `D` promises no further rows for days before `D` will
//! follow. Rows *below* the current watermark are still applied —
//! every aggregate update commutes, so correctness never depends on
//! ordering — but they are counted (`fw.stream.late_rows`) as feed
//! disorder, which a production deployment would alert on.

use crate::checkpoint::Checkpoint;
use crate::score::{CandidateScorer, ScoreConfig};
use fw_core::identify::{IdentificationReport, IdentifyEngine, VerdictChange};
use fw_core::usage::{
    ingress_table_with, invocation_report, monthly_new_fqdns, monthly_requests_with, IngressRow,
    InvocationReport, MonthlySeries, UsageState,
};
use fw_dns::pdns::{PdnsBackend, PdnsRow, PdnsStore};
use fw_obs::{counter_add, counter_inc, histogram_record, trace_span_arg};
use fw_types::{DayStamp, Json};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Worker threads for per-batch classification (1 = inline).
    pub workers: usize,
    /// Source granularity: batches per virtual day (1 = daily,
    /// 4 = 6-hourly, 24 = hourly).
    pub batches_per_day: u32,
    pub score: ScoreConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: fw_analysis::par::default_workers(),
            batches_per_day: 1,
            score: ScoreConfig::default(),
        }
    }
}

/// Outcome of one applied batch.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Verdict deltas the batch produced (fqdn-sorted per group; see
    /// [`IdentifyEngine::apply_rows`]).
    pub changes: Vec<VerdictChange>,
    /// Functions newly flagged as abuse candidates.
    pub newly_flagged: u64,
    /// Rows below the pre-batch watermark.
    pub late_rows: u64,
}

/// Final materialized state of a finished daemon — field-for-field the
/// shape of a batch `Pipeline::run_usage`, plus the streaming-only
/// outputs (detections, checkpoint, the absorbed store).
#[derive(Debug)]
pub struct DaemonFinal<B> {
    pub report: IdentificationReport,
    pub new_fqdns: MonthlySeries,
    pub request_series: MonthlySeries,
    pub ingress: Vec<IngressRow>,
    pub invocation: InvocationReport,
    pub detections: Vec<crate::score::Detection>,
    pub checkpoint: Checkpoint,
    pub store: B,
}

/// Long-lived incremental sensing state over any PDNS backend.
pub struct StreamDaemon<B: PdnsBackend = PdnsStore> {
    engine: IdentifyEngine,
    usage: UsageState,
    store: B,
    scorer: CandidateScorer,
    watermark_day: Option<DayStamp>,
    batches: u64,
    rows: u64,
    late_rows: u64,
}

impl StreamDaemon<PdnsStore> {
    /// Daemon over a fresh in-memory store.
    pub fn new(config: &StreamConfig) -> Self {
        Self::with_store(config, PdnsStore::new())
    }
}

impl<B: PdnsBackend> StreamDaemon<B> {
    /// Daemon absorbing rows into a caller-provided backend (e.g. a
    /// persistent `fw-store` `DiskStore`).
    pub fn with_store(config: &StreamConfig, store: B) -> Self {
        StreamDaemon {
            engine: IdentifyEngine::with_workers(config.workers),
            usage: UsageState::new(),
            store,
            scorer: CandidateScorer::new(config.score),
            watermark_day: None,
            batches: 0,
            rows: 0,
            late_rows: 0,
        }
    }

    /// Fold one batch in, stamped with its virtual arrival time.
    ///
    /// `watermark_day` is the day this batch closes; it must be
    /// non-decreasing across calls (the source contract). Rows are
    /// applied in one pass each to the backing store, the identify
    /// engine, and — for rows of identified functions — the usage
    /// state; the batch's verdict deltas then drive the candidate
    /// scorer.
    pub fn apply_batch(
        &mut self,
        watermark_day: DayStamp,
        rows: &[PdnsRow],
        now_us: u64,
    ) -> BatchSummary {
        let _span = trace_span_arg("stream/batch", self.batches);
        if self
            .watermark_day
            .map(|w| watermark_day.0 > w.0)
            .unwrap_or(true)
        {
            // A new epoch: the watermark advanced.
            fw_obs::trace_instant("stream/epoch", watermark_day.0 as u64);
            counter_inc!("fw.stream.epochs");
        }
        let late = self
            .watermark_day
            .map(|w| rows.iter().filter(|r| r.day < w).count() as u64)
            .unwrap_or(0);

        for row in rows {
            self.store
                .observe_count(&row.fqdn, &row.rdata, row.day, row.cnt);
        }
        let changes = self.engine.apply_rows(rows);
        for row in rows {
            if let Some(provider) = self.engine.provider_of(&row.fqdn) {
                self.usage
                    .apply(provider, row.rdata.rtype(), &row.rdata, row.day, row.cnt);
            }
        }
        let newly_flagged = self.scorer.observe(&changes, now_us);

        self.watermark_day = Some(match self.watermark_day {
            Some(w) => DayStamp(w.0.max(watermark_day.0)),
            None => watermark_day,
        });
        self.batches += 1;
        self.rows += rows.len() as u64;
        self.late_rows += late;

        counter_inc!("fw.stream.batches");
        counter_add!("fw.stream.rows", rows.len() as u64);
        counter_add!("fw.stream.late_rows", late);
        counter_add!(
            "fw.stream.verdicts",
            changes
                .iter()
                .filter(|c| {
                    matches!(
                        c,
                        VerdictChange::Identified { .. } | VerdictChange::Unmatched { .. }
                    )
                })
                .count() as u64
        );
        counter_add!("fw.stream.candidates", newly_flagged);
        histogram_record!("fw.stream.batch_rows", rows.len() as u64);

        BatchSummary {
            changes,
            newly_flagged,
            late_rows: late,
        }
    }

    /// Current progress summary.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            watermark_day: self.watermark_day,
            batches: self.batches,
            rows: self.rows,
            late_rows: self.late_rows,
            identified: self.engine.function_count() as u64,
            unmatched: self.engine.unmatched_count(),
            total_requests: self.engine.total_requests(),
            candidates: self.scorer.candidate_count(),
        }
    }

    /// Status document (the checkpoint as JSON) — what a supervisor
    /// polls.
    pub fn status_json(&self) -> Json {
        self.checkpoint().to_json()
    }

    /// Read access to the absorbed backend.
    pub fn store(&self) -> &B {
        &self.store
    }

    /// Consume the daemon into its final materialized reports. The
    /// identification report and the §4 tables come straight out of
    /// the incremental state — no sweep over the store — yet match a
    /// batch sweep byte-for-byte (see [`crate::equiv`]).
    pub fn finish(self) -> DaemonFinal<B> {
        let checkpoint = self.checkpoint();
        let report = self.engine.into_report();
        let request_series = self.usage.monthly_series();
        let ingress = self.usage.ingress_rows(&report);
        DaemonFinal {
            new_fqdns: monthly_new_fqdns(&report),
            invocation: invocation_report(&report),
            request_series,
            ingress,
            detections: self.scorer.into_detections(),
            checkpoint,
            store: self.store,
            report,
        }
    }

    /// Materialize the §4 tables by sweeping the backing store with
    /// the *batch* code path (provided-method sweeps over aggregates).
    /// Only used by tests/tools to cross-check the incremental state;
    /// the daemon itself never re-sweeps.
    pub fn sweep_usage(&self, workers: usize) -> (MonthlySeries, Vec<IngressRow>) {
        let report = self.engine.report();
        (
            monthly_requests_with(&report, &self.store, workers),
            ingress_table_with(&report, &self.store, workers),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_types::{Fqdn, Rdata};
    use std::net::Ipv4Addr;

    fn row(fqdn: &str, last: u8, day: i64, cnt: u64) -> PdnsRow {
        PdnsRow {
            fqdn: Fqdn::parse(fqdn).unwrap(),
            rdata: Rdata::V4(Ipv4Addr::new(198, 51, 100, last)),
            day: DayStamp(day),
            cnt,
        }
    }

    #[test]
    fn watermark_advances_and_late_rows_count() {
        let mut d = StreamDaemon::new(&StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        });
        assert_eq!(d.checkpoint().watermark_day, None);
        d.apply_batch(
            DayStamp(19_100),
            &[row(
                "a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
                1,
                19_100,
                4,
            )],
            0,
        );
        assert_eq!(d.checkpoint().watermark_day, Some(DayStamp(19_100)));
        // A batch with one on-time and one late row.
        let summary = d.apply_batch(
            DayStamp(19_101),
            &[
                row("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws", 1, 19_101, 2),
                row("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws", 2, 19_099, 1),
            ],
            DAY_US_TEST,
        );
        assert_eq!(summary.late_rows, 1);
        let cp = d.checkpoint();
        assert_eq!(cp.watermark_day, Some(DayStamp(19_101)));
        assert_eq!(cp.batches, 2);
        assert_eq!(cp.rows, 3);
        assert_eq!(cp.late_rows, 1);
        assert_eq!(cp.identified, 1);
        assert_eq!(cp.total_requests, 7);
        // Late row was applied anyway: first_seen reflects day 19_099.
        let fin = d.finish();
        assert_eq!(fin.report.functions.len(), 1);
        assert_eq!(fin.report.functions[0].agg.first_seen_all, DayStamp(19_099));
        assert_eq!(fin.report.functions[0].agg.days_count, 3);
        assert_eq!(fin.checkpoint.rows, 3);
        assert_eq!(fin.store.record_count(), 3);
    }

    const DAY_US_TEST: u64 = crate::source::DAY_US;

    #[test]
    fn incremental_usage_matches_store_sweep() {
        let rows = [
            row("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws", 1, 19_100, 4),
            row("myfn-a1b2c3d4e5-uc.a.run.app", 2, 19_130, 60),
            row("myfn-a1b2c3d4e5-uc.a.run.app", 3, 19_160, 60),
            row("www.example.com", 4, 19_100, 99),
        ];
        let mut d = StreamDaemon::new(&StreamConfig {
            workers: 1,
            ..StreamConfig::default()
        });
        for (i, r) in rows.iter().enumerate() {
            d.apply_batch(r.day, std::slice::from_ref(r), i as u64 * DAY_US_TEST);
        }
        let (swept_months, swept_ingress) = d.sweep_usage(1);
        let fin = d.finish();
        assert_eq!(fin.request_series, swept_months);
        assert_eq!(fin.ingress, swept_ingress);
        assert_eq!(fin.report.unmatched, 1);
    }
}
