//! Daemon checkpoint/status document (DESIGN.md §14).
//!
//! A small JSON summary of a daemon's progress — the watermark plus
//! monotone counters — using the shared [`fw_types::Json`] value type.
//! It is what the daemon exposes as a status endpoint and what the
//! stream gate embeds in `BENCH_stream.json`; `from_json` exists so a
//! supervisor can read a checkpoint back and verify resume invariants
//! (watermark monotonicity, row-count continuity) without re-deriving
//! state.

use fw_types::{DayStamp, Json};

/// Progress summary of one daemon instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Highest watermark closed so far (`None` before the first batch).
    pub watermark_day: Option<DayStamp>,
    /// Batches applied.
    pub batches: u64,
    /// Rows applied.
    pub rows: u64,
    /// Rows that arrived below the already-closed watermark (applied
    /// anyway — updates commute — but counted as feed disorder).
    pub late_rows: u64,
    /// Distinct fqdns identified as functions so far.
    pub identified: u64,
    /// Distinct fqdns classified as noise so far.
    pub unmatched: u64,
    /// Requests accumulated across identified functions.
    pub total_requests: u64,
    /// Abuse candidates flagged by the scorer.
    pub candidates: u64,
}

impl Checkpoint {
    pub fn to_json(&self) -> Json {
        let mut fields = vec![(
            "watermark_day".to_string(),
            match self.watermark_day {
                Some(d) => Json::Num(d.0 as f64),
                None => Json::Null,
            },
        )];
        for (k, v) in [
            ("batches", self.batches),
            ("rows", self.rows),
            ("late_rows", self.late_rows),
            ("identified", self.identified),
            ("unmatched", self.unmatched),
            ("total_requests", self.total_requests),
            ("candidates", self.candidates),
        ] {
            fields.push((k.to_string(), Json::Num(v as f64)));
        }
        Json::Obj(fields)
    }

    pub fn from_json(v: &Json) -> Result<Checkpoint, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint field {k:?} missing or not a u64"))
        };
        let watermark_day = match v.get("watermark_day") {
            None | Some(Json::Null) => None,
            Some(d) => Some(DayStamp(
                d.as_f64()
                    .ok_or_else(|| "checkpoint watermark_day not a number".to_string())?
                    as i64,
            )),
        };
        Ok(Checkpoint {
            watermark_day,
            batches: num("batches")?,
            rows: num("rows")?,
            late_rows: num("late_rows")?,
            identified: num("identified")?,
            unmatched: num("unmatched")?,
            total_requests: num("total_requests")?,
            candidates: num("candidates")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let cp = Checkpoint {
            watermark_day: Some(DayStamp(19_813)),
            batches: 731,
            rows: 230_000,
            late_rows: 3,
            identified: 53_000,
            unmatched: 41_000,
            total_requests: 9_000_000,
            candidates: 812,
        };
        let text = cp.to_json().render();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cp);

        let empty = Checkpoint::default();
        let back = Checkpoint::from_json(&Json::parse(&empty.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.watermark_day, None);
    }

    #[test]
    fn rejects_missing_fields() {
        let v = Json::parse(r#"{"batches": 1}"#).unwrap();
        assert!(Checkpoint::from_json(&v).is_err());
    }
}
