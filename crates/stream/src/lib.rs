//! # fw-stream
//!
//! The always-on sensing daemon (DESIGN.md §14). The paper's
//! measurement is a one-shot snapshot; this crate turns the same
//! pipeline into a long-lived process that ingests PDNS rows
//! continuously as time-ordered batches and keeps its verdicts
//! current as evidence arrives:
//!
//! - [`source`] slices a store's rows into per-virtual-day batches
//!   (optionally sub-day), each stamped with the watermark day it
//!   closes.
//! - [`wire`] is the length-delimited frame codec that carries batches
//!   over a [`fw_net::Connection`].
//! - [`daemon`] holds the incremental state: an
//!   [`fw_core::IdentifyEngine`] fed row deltas, a
//!   [`fw_core::UsageState`] for the §4 tables, the backing
//!   [`PdnsBackend`](fw_dns::pdns::PdnsBackend), a watermark, and the
//!   abuse-candidate [`score::CandidateScorer`].
//! - [`replay`] drives a full run over `SimNet` in accelerated virtual
//!   time: a registered feeder thread sleeps the virtual clock to each
//!   batch's arrival offset while the daemon consumes frames on a
//!   listener thread — so "two years of telemetry" replays in seconds
//!   of wall time with deterministic virtual timestamps.
//! - [`equiv`] proves the point of the design: a daemon's final state
//!   is byte-identical to a batch pipeline sweep over the same rows,
//!   at any batch granularity and worker count.
//!
//! The `fw_stream_gate` binary benchmarks the daemon (sustained
//! rows/s, detection-latency p50/p99 by abuse family) into
//! `BENCH_stream.json` and enforces the equivalence in CI.

pub mod checkpoint;
pub mod daemon;
pub mod equiv;
pub mod replay;
pub mod score;
pub mod source;
pub mod wire;

pub use checkpoint::Checkpoint;
pub use daemon::{BatchSummary, DaemonFinal, StreamConfig, StreamDaemon};
pub use equiv::check_equivalence;
pub use replay::{replay, replay_in_memory, ReplayResult};
pub use score::{CandidateScorer, Detection, ScoreConfig};
pub use source::{collect_rows, day_batches, Batch, DAY_US};
