//! Streaming gate: replay a generated world through the sensing daemon
//! in virtual time, prove the end state equals a batch run, and emit
//! detection-latency benchmarks to `BENCH_stream.json` (DESIGN.md §14;
//! CI runs this at scale 0.1).
//!
//! ```text
//! fw_stream_gate [--scale <f64>] [--seed <u64>] [--batches-per-day <n>]
//!                [--workers <n>] [--out <path>] [--metrics]
//!                [--trace] [--trace-out <path>]
//! ```
//!
//! Defaults: scale 0.1, seed 42, one batch per virtual day, workers 0
//! (one per core), JSON to `BENCH_stream.json`.
//!
//! Stages:
//!
//! 1. **generate** — the PDNS-only world (same flavor the usage
//!    figures consume).
//! 2. **prepare** — flatten the store into time-ordered rows and cut
//!    them into watermarked batches.
//! 3. **stream** — replay every batch over `SimNet` into a
//!    [`StreamDaemon`] in accelerated virtual time; wall time here
//!    yields the sustained rows/s figure.
//! 4. **verify** — recompute everything with the batch pipeline and
//!    diff field-for-field against the daemon's incremental state
//!    ([`fw_stream::check_equivalence`]). Any divergence exits
//!    non-zero, so CI enforces the streaming ↔ batch contract on every
//!    run, not just in unit tests.
//!
//! Detection latency is scored against the world's ground truth: for
//! each abuse family, the virtual days from a function's first row to
//! the batch that flagged it, reported as p50/p99 plus coverage
//! (families whose campaigns never cross the candidate gate show up as
//! `detected < total`, not as silent omissions). The `detect_p50` /
//! `detect_p99` pseudo-stages carry those latencies (in virtual
//! milliseconds — fully deterministic for a given scale/seed) through
//! the `history` array, so `bench_regress` gates on detection-latency
//! regressions exactly like wall-time regressions.

use fw_stream::{
    check_equivalence, collect_rows, day_batches, replay_in_memory, Detection, StreamConfig, DAY_US,
};
use fw_types::{Fqdn, Json};
use fw_workload::{AbuseCase, World, WorldConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn arg_num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

/// Peak resident set (VmHWM) in KiB; `None` off Linux or if unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Stage {
    name: &'static str,
    ms: f64,
    peak_rss_kb: Option<u64>,
}

/// How many runs the report's `history` array retains (newest last).
const HISTORY_CAP: usize = 50;

/// Previous runs recorded in an existing report at `out`, rendered as
/// compact JSON objects ready to splice into the rewritten file.
fn prior_history(out: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(out) else {
        return Vec::new();
    };
    let Ok(old) = Json::parse(&text) else {
        eprintln!(
            "[history] existing {} is not valid JSON; starting a fresh history",
            out.display()
        );
        return Vec::new();
    };
    match old.get("history").and_then(Json::as_arr) {
        Some(entries) => entries.iter().map(Json::render).collect(),
        None => Vec::new(),
    }
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Detection-latency stats for one abuse family.
struct FamilyStats {
    case: AbuseCase,
    total: usize,
    detected: usize,
    p50_days: f64,
    p99_days: f64,
}

/// Join the scorer's detections against the world's abuse ground truth.
fn family_table(world: &World, detections: &[Detection]) -> Vec<FamilyStats> {
    let flagged: HashMap<&Fqdn, &Detection> = detections.iter().map(|d| (&d.fqdn, d)).collect();
    let mut latencies: HashMap<AbuseCase, Vec<f64>> = HashMap::new();
    let mut totals: HashMap<AbuseCase, usize> = HashMap::new();
    for f in world.abuse_functions() {
        let case = f
            .truth
            .abuse_case()
            .expect("abuse_functions filters on Abuse");
        *totals.entry(case).or_insert(0) += 1;
        if let Some(d) = flagged.get(&f.fqdn) {
            latencies
                .entry(case)
                .or_default()
                .push(d.latency_us() as f64 / DAY_US as f64);
        }
    }
    AbuseCase::ALL
        .iter()
        .map(|&case| {
            let mut lats = latencies.remove(&case).unwrap_or_default();
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
            FamilyStats {
                case,
                total: totals.get(&case).copied().unwrap_or(0),
                detected: lats.len(),
                p50_days: percentile(&lats, 50.0),
                p99_days: percentile(&lats, 99.0),
            }
        })
        .collect()
}

fn main() {
    let mut scale = 0.1f64;
    let mut seed = 42u64;
    let mut batches_per_day = 1u32;
    let mut workers = 0usize;
    let mut out = PathBuf::from("BENCH_stream.json");
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = arg_num(&mut args, "--scale"),
            "--seed" => seed = arg_num(&mut args, "--seed"),
            "--batches-per-day" => batches_per_day = arg_num(&mut args, "--batches-per-day"),
            "--workers" => workers = arg_num(&mut args, "--workers"),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--metrics" => fw_obs::set_enabled(true),
            "--trace" => fw_obs::set_trace_enabled(true),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fw_stream_gate [--scale <f64>] [--seed <u64>] [--batches-per-day <n>] [--workers <n>] [--out <path>] [--metrics] [--trace] [--trace-out <path>]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if batches_per_day == 0 {
        die("--batches-per-day must be >= 1");
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if workers == 0 { cores } else { workers };

    let gate_span = fw_obs::span("gate/stream");
    let mut stages: Vec<Stage> = Vec::new();
    let total_start = Instant::now();

    // 1. Generate the world the daemon will sense.
    eprintln!("[generate] scale {scale} seed {seed}");
    let t = Instant::now();
    let world = {
        let _s = fw_obs::span("gate/generate");
        World::generate(WorldConfig::usage(seed, scale))
    };
    stages.push(Stage {
        name: "generate",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[generate] {:.1} ms: {} functions, {} fqdns, {} rows",
        stages[0].ms,
        world.functions.len(),
        world.pdns.fqdn_count(),
        world.pdns.record_count()
    );

    // 2. Flatten into time-ordered rows and cut watermarked batches.
    let t = Instant::now();
    let batches = {
        let _s = fw_obs::span("gate/prepare");
        day_batches(&collect_rows(&world.pdns), batches_per_day)
    };
    let row_count: u64 = batches.iter().map(|b| b.rows.len() as u64).sum();
    stages.push(Stage {
        name: "prepare",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[prepare] {:.1} ms: {} batches ({batches_per_day}/day), {row_count} rows",
        stages[1].ms,
        batches.len()
    );

    // 3. Replay through the daemon in virtual time.
    let config = StreamConfig {
        workers,
        batches_per_day,
        ..StreamConfig::default()
    };
    let t = Instant::now();
    let result = replay_in_memory(batches, &config, seed);
    let stream_ms = t.elapsed().as_secs_f64() * 1e3;
    let rows_per_sec = row_count as f64 / (stream_ms / 1e3);
    stages.push(Stage {
        name: "stream",
        ms: stream_ms,
        peak_rss_kb: peak_rss_kb(),
    });
    let cp = result.final_state.checkpoint;
    let virtual_days = result.virtual_us as f64 / DAY_US as f64;
    eprintln!(
        "[stream] {stream_ms:.1} ms wall for {virtual_days:.0} virtual days: {} batches, {row_count} rows ({rows_per_sec:.0} rows/s), {} identified, {} candidates",
        cp.batches, cp.identified, cp.candidates
    );

    // 4. Verify streaming ↔ batch equivalence — the CI diff.
    let t = Instant::now();
    {
        let _s = fw_obs::span("gate/verify");
        if let Err(e) = check_equivalence(&result.final_state, &world.pdns, workers) {
            die(&format!("streaming/batch equivalence FAILED: {e}"));
        }
    }
    stages.push(Stage {
        name: "verify",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[verify] {:.1} ms: daemon end state == batch pipeline ({} functions, {} unmatched)",
        stages[3].ms,
        result.final_state.report.functions.len(),
        result.final_state.report.unmatched
    );

    // Detection latency vs ground truth, overall and per abuse family.
    let families = family_table(&world, &result.final_state.detections);
    let mut all_lats: Vec<f64> = world
        .abuse_functions()
        .filter_map(|f| {
            result
                .final_state
                .detections
                .iter()
                .find(|d| d.fqdn == f.fqdn)
                .map(|d| d.latency_us() as f64 / DAY_US as f64)
        })
        .collect();
    all_lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let abuse_total: usize = families.iter().map(|f| f.total).sum();
    let abuse_detected = all_lats.len();
    let detect_p50_days = percentile(&all_lats, 50.0);
    let detect_p99_days = percentile(&all_lats, 99.0);
    eprintln!(
        "[detect] {abuse_detected}/{abuse_total} abuse functions flagged; latency p50 {detect_p50_days:.1} d, p99 {detect_p99_days:.1} d (virtual)"
    );
    for f in &families {
        if f.detected > 0 {
            eprintln!(
                "[detect]   {:<24} {}/{} p50 {:.1} d p99 {:.1} d",
                f.case.label(),
                f.detected,
                f.total,
                f.p50_days,
                f.p99_days
            );
        } else {
            eprintln!(
                "[detect]   {:<24} 0/{} (coverage gap: below candidate gate)",
                f.case.label(),
                f.total
            );
        }
    }

    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let rss = peak_rss_kb();

    drop(gate_span);
    let tracing = fw_obs::trace_enabled();
    let trace_path = trace_out.unwrap_or_else(|| {
        let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        out.with_file_name(format!("{stem}.trace.jsonl"))
    });
    let dump = if tracing {
        Some(fw_obs::drain_trace())
    } else {
        None
    };

    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let rss_json = |kb: Option<u64>| kb.map_or("null".to_string(), |kb| kb.to_string());
    let num_or_null = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };
    // Detection latencies restated in *virtual milliseconds* so they
    // ride the history's `*_ms` convention and bench_regress gates on
    // them like any stage wall time. Deterministic per (scale, seed).
    let detect_p50_ms = detect_p50_days * 86_400_000.0;
    let detect_p99_ms = detect_p99_days * 86_400_000.0;

    let mut entry = format!(
        "{{\"unix_ms\": {unix_ms}, \"scale\": {scale}, \"seed\": {seed}, \"workers\": {workers}, \"batches_per_day\": {batches_per_day}, \"total_ms\": {total_ms:.3}"
    );
    for s in &stages {
        entry.push_str(&format!(", \"{}_ms\": {:.3}", s.name, s.ms));
    }
    entry.push_str(&format!(
        ", \"detect_p50_ms\": {}, \"detect_p99_ms\": {}",
        num_or_null(detect_p50_ms),
        num_or_null(detect_p99_ms)
    ));
    entry.push_str(&format!(
        ", \"rows\": {row_count}, \"stream_rows_per_sec\": {rows_per_sec:.0}, \"peak_rss_kb\": {}}}",
        rss_json(rss)
    ));
    let mut history = prior_history(&out);
    history.push(entry);
    if history.len() > HISTORY_CAP {
        let drop_n = history.len() - HISTORY_CAP;
        history.drain(..drop_n);
    }

    // Hand-rolled JSON, same layout conventions as BENCH_pipeline.json.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}, \"workers\": {workers}, \"batches_per_day\": {batches_per_day}}},\n"
    ));
    json.push_str("  \"stages\": {\n");
    for s in stages.iter() {
        json.push_str(&format!(
            "    \"{}\": {{\"ms\": {:.3}, \"peak_rss_kb\": {}}},\n",
            s.name,
            s.ms,
            rss_json(s.peak_rss_kb)
        ));
    }
    // Virtual-time pseudo-stages: deterministic detection latencies in
    // the same {"ms": ...} shape so bench_regress sees them as stages.
    json.push_str(&format!(
        "    \"detect_p50\": {{\"ms\": {}, \"peak_rss_kb\": null}},\n",
        num_or_null(detect_p50_ms)
    ));
    json.push_str(&format!(
        "    \"detect_p99\": {{\"ms\": {}, \"peak_rss_kb\": null}}\n",
        num_or_null(detect_p99_ms)
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_ms\": {total_ms:.3},\n"));
    json.push_str(&format!("  \"rows\": {row_count},\n"));
    json.push_str(&format!("  \"virtual_days\": {virtual_days:.3},\n"));
    json.push_str(&format!("  \"wire_bytes\": {},\n", result.wire_bytes));
    json.push_str(&format!("  \"stream_rows_per_sec\": {rows_per_sec:.0},\n"));
    json.push_str(&format!(
        "  \"checkpoint\": {},\n",
        result.final_state.checkpoint.to_json().render()
    ));
    json.push_str(&format!(
        "  \"abuse\": {{\"total\": {abuse_total}, \"detected\": {abuse_detected}, \"p50_days\": {}, \"p99_days\": {}}},\n",
        num_or_null(detect_p50_days),
        num_or_null(detect_p99_days)
    ));
    json.push_str("  \"families\": [\n");
    for (i, f) in families.iter().enumerate() {
        let comma = if i + 1 == families.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"family\": {}, \"total\": {}, \"detected\": {}, \"p50_days\": {}, \"p99_days\": {}}}{comma}\n",
            fw_types::Json::Str(f.case.label().to_string()).render(),
            f.total,
            f.detected,
            num_or_null(f.p50_days),
            num_or_null(f.p99_days)
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"peak_rss_kb\": {},\n", rss_json(rss)));
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 == history.len() { "" } else { "," };
        json.push_str(&format!("    {entry}{comma}\n"));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));

    println!(
        "stream gate: scale {scale} seed {seed} total {total_ms:.0} ms (generate {:.0} / prepare {:.0} / stream {:.0} / verify {:.0}); {rows_per_sec:.0} rows/s, detect p50 {detect_p50_days:.1} d; report -> {}",
        stages[0].ms, stages[1].ms, stages[2].ms, stages[3].ms, out.display()
    );

    if let Some(dump) = &dump {
        if let Err(e) = std::fs::write(&trace_path, dump.to_jsonl()) {
            die(&format!("cannot write {}: {e}", trace_path.display()));
        }
        eprintln!(
            "[trace] {} events ({} dropped) -> {}",
            dump.events.len(),
            dump.dropped,
            trace_path.display()
        );
        match fw_obs::write_trace_reports(dump, &trace_path) {
            Ok(paths) => {
                eprintln!("[trace] chrome trace  -> {}", paths.chrome.display());
                eprintln!("[trace] folded stacks -> {}", paths.folded.display());
                eprintln!("[trace] critical path -> {}", paths.critpath_txt.display());
            }
            Err(e) => eprintln!("[trace] cannot write trace reports: {e}"),
        }
    }
    if fw_obs::enabled() {
        eprint!("{}", fw_obs::registry().render_text());
    }
}
