//! Watermark property: arrival order within a batch is irrelevant.
//!
//! Every daemon update commutes (per-day counts are sums, day sets are
//! sets, verdicts are per-fqdn pure), so shuffling rows *within* each
//! batch — the disorder a watermark explicitly permits — must never
//! change the final materialized state, late-row accounting included.

use fw_dns::pdns::{PdnsRow, PdnsStore};
use fw_stream::{day_batches, DaemonFinal, StreamConfig, StreamDaemon};
use fw_types::{DayStamp, Fqdn, Rdata};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A small fqdn pool mixing function-identifiable, provider-level, and
/// noise names, so rows exercise every verdict path.
const POOL: [&str; 5] = [
    "a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
    "myfn-a1b2c3d4e5-uc.a.run.app",
    "fnapp77.azurewebsites.net",
    "us-central1-proj.cloudfunctions.net",
    "www.example.com",
];

fn arb_rows() -> impl Strategy<Value = Vec<PdnsRow>> {
    proptest::collection::vec((0usize..POOL.len(), 0u8..4, 0i64..20, 1u64..200), 1..60).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(who, last, day, cnt)| PdnsRow {
                    fqdn: Fqdn::parse(POOL[who]).unwrap(),
                    rdata: Rdata::V4(Ipv4Addr::new(198, 51, 100, last)),
                    day: DayStamp(19_100 + day),
                    cnt,
                })
                .collect()
        },
    )
}

/// Deterministic within-batch permutation driven by proptest-chosen
/// sort keys (ties broken by original index, so any permutation is
/// reachable given enough keys).
fn shuffle(rows: &[PdnsRow], keys: &[u64]) -> Vec<PdnsRow> {
    let mut indexed: Vec<(u64, usize)> = rows
        .iter()
        .enumerate()
        .map(|(i, _)| (keys[i % keys.len()].wrapping_mul(i as u64 + 1), i))
        .collect();
    indexed.sort_unstable();
    indexed.into_iter().map(|(_, i)| rows[i].clone()).collect()
}

fn run(batches: &[(DayStamp, Vec<PdnsRow>)]) -> DaemonFinal<PdnsStore> {
    let mut daemon = StreamDaemon::new(&StreamConfig {
        workers: 1,
        ..StreamConfig::default()
    });
    for (i, (watermark, rows)) in batches.iter().enumerate() {
        daemon.apply_batch(*watermark, rows, i as u64 * 1_000_000);
    }
    daemon.finish()
}

proptest! {
    #[test]
    fn within_batch_shuffle_never_changes_final_state(
        mut rows in arb_rows(),
        keys in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        // day_batches wants day-sorted input (the watermark contract);
        // the stable sort keeps the generated within-day order.
        rows.sort_by_key(|r| r.day);
        let ordered: Vec<(DayStamp, Vec<PdnsRow>)> = day_batches(&rows, 1)
            .into_iter()
            .map(|b| (b.watermark_day, b.rows))
            .collect();
        let shuffled: Vec<(DayStamp, Vec<PdnsRow>)> = ordered
            .iter()
            .map(|(w, r)| (*w, shuffle(r, &keys)))
            .collect();

        let a = run(&ordered);
        let b = run(&shuffled);
        prop_assert_eq!(a.checkpoint, b.checkpoint);
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.new_fqdns, b.new_fqdns);
        prop_assert_eq!(a.request_series, b.request_series);
        prop_assert_eq!(a.ingress, b.ingress);
        prop_assert_eq!(a.invocation, b.invocation);
        prop_assert_eq!(a.detections, b.detections);
    }
}
