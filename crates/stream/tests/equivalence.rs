//! Streaming ↔ batch end-state equivalence (the tentpole contract).
//!
//! The daemon fed day-by-day deltas must finish in *exactly* the state
//! a batch pipeline computes from the same snapshot — across source
//! granularities (1 batch/day, 6-hourly, hourly), worker counts, and
//! backing stores. The fast matrix runs at scale 0.01 under plain
//! `cargo test`; the scale-0.1 matrix is `#[ignore]`d and run by CI in
//! release mode (`cargo test --release -p fw-stream -- --ignored`).

use fw_dns::pdns::PdnsStore;
use fw_store::{DiskStore, StoreConfig};
use fw_stream::{
    check_equivalence, collect_rows, day_batches, replay, DaemonFinal, StreamConfig, StreamDaemon,
};
use fw_workload::{World, WorldConfig};

fn usage_world(scale: f64) -> World {
    World::generate(WorldConfig::usage(42, scale))
}

fn stream_config(batches_per_day: u32, workers: usize) -> StreamConfig {
    StreamConfig {
        workers,
        batches_per_day,
        ..StreamConfig::default()
    }
}

/// Drive the daemon directly (no simulated network) — the apply path
/// is what equivalence is about; `replay` layers virtual time on top.
fn daemon_run(world: &World, batches_per_day: u32, workers: usize) -> DaemonFinal<PdnsStore> {
    let batches = day_batches(&collect_rows(&world.pdns), batches_per_day);
    let mut daemon = StreamDaemon::new(&stream_config(batches_per_day, workers));
    for b in &batches {
        daemon.apply_batch(b.watermark_day, &b.rows, b.offset_us);
    }
    daemon.finish()
}

fn check_matrix(scale: f64) {
    let world = usage_world(scale);
    for batches_per_day in [1u32, 4, 24] {
        for workers in [1usize, 8] {
            let fin = daemon_run(&world, batches_per_day, workers);
            check_equivalence(&fin, &world.pdns, workers).unwrap_or_else(|e| {
                panic!("scale {scale} bpd {batches_per_day} workers {workers}: {e}")
            });
        }
    }
}

#[test]
fn daemon_matches_batch_at_scale_001_all_granularities_and_workers() {
    check_matrix(0.01);
}

#[test]
#[ignore = "scale-0.1 matrix; run in release via CI (cargo test --release -- --ignored)"]
fn daemon_matches_batch_at_scale_01_all_granularities_and_workers() {
    check_matrix(0.1);
}

/// The full wire path — frames over a simulated network in virtual
/// time — must land in the same end state as the direct apply loop.
#[test]
fn replay_over_simnet_matches_batch() {
    let world = usage_world(0.01);
    let batches = day_batches(&collect_rows(&world.pdns), 1);
    let n_batches = batches.len() as u64;
    let result = replay(batches, &stream_config(1, 2), PdnsStore::new(), 7);
    assert_eq!(result.final_state.checkpoint.batches, n_batches);
    assert!(result.virtual_us > 0);
    check_equivalence(&result.final_state, &world.pdns, 2).unwrap();
}

/// Equivalence is backend-agnostic: a daemon absorbing into the
/// persistent `fw-store` engine finishes in the same state too.
#[test]
fn daemon_over_disk_store_matches_batch() {
    let world = usage_world(0.01);
    let dir = std::env::temp_dir().join(format!("fw-stream-equiv-{}", std::process::id()));
    let disk = DiskStore::create(&dir, StoreConfig::default()).unwrap();
    let batches = day_batches(&collect_rows(&world.pdns), 4);
    let mut daemon = StreamDaemon::with_store(&stream_config(4, 2), disk);
    for b in &batches {
        daemon.apply_batch(b.watermark_day, &b.rows, b.offset_us);
    }
    let fin = daemon.finish();
    let outcome = check_equivalence(&fin, &world.pdns, 2);
    drop(fin);
    let _ = std::fs::remove_dir_all(&dir);
    outcome.unwrap();
}
