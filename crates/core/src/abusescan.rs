//! Abuse-status analysis (§5): the content pipeline and the C2 scan.
//!
//! Order of operations mirrors §3.4/§5:
//!
//! 1. take the 200-with-content corpus (plus redirect responses);
//! 2. scan for sensitive data and anonymize it (Finding 5) *before* any
//!    content analysis;
//! 3. bucket by content type and cluster within each type (TF-IDF +
//!    average linkage at 90% similarity);
//! 4. dual-rule review of cluster exemplars, labels propagated to
//!    members that independently pass review;
//! 5. active C2 fingerprint scan over the probed domains (§5.1);
//! 6. cross-check detections against the threat-intel oracle
//!    (Finding 10) and assemble Table 3 and the Figure 7 series.

use crate::identify::IdentificationReport;
use fw_abuse::illicit::{detect_openai_promo, extract_contacts, extract_redirects};
use fw_abuse::review::{review_exemplar, AbuseType};
use fw_abuse::sensitive::{SensitiveKind, SensitiveScanner};
use fw_abuse::threatintel::{ThreatIntel, UrlReputation, UrlVerdict};
use fw_analysis::cluster::{cluster_corpus_par, ClusterParams};
use fw_analysis::content::ContentType;
use fw_analysis::par::par_map_named;
use fw_dns::pdns::PdnsBackend;
use fw_dns::resolver::Resolver;
use fw_http::types::Response;
use fw_net::SimNet;
use fw_probe::c2probe::C2Scanner;
use fw_probe::prober::{ProbeOutcome, ProbeRecord};
use fw_types::{Fqdn, MEASUREMENT_END, MEASUREMENT_START};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for the abuse scan.
#[derive(Debug, Clone)]
pub struct AbuseScanConfig {
    pub cluster_params: ClusterParams,
    /// 10-character anonymization salt (Appendix A).
    pub salt: String,
    /// Run the active C2 fingerprint scan (network access required).
    pub scan_c2: bool,
    /// Timeout per C2 probe.
    pub c2_timeout: Duration,
    /// Worker threads for the data-parallel stages (sensitive scan,
    /// content typing, TF-IDF vectorization) and the C2 scan. Every
    /// stage is deterministic in this knob — reports are identical at
    /// any worker count.
    pub workers: usize,
}

impl Default for AbuseScanConfig {
    fn default() -> Self {
        AbuseScanConfig {
            cluster_params: ClusterParams::default(),
            salt: "faas-wild1".to_string(),
            scan_c2: true,
            c2_timeout: Duration::from_secs(10),
            workers: 8,
        }
    }
}

/// One detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionKind {
    C2 { family: &'static str },
    Content(AbuseType),
}

impl DetectionKind {
    /// Table 3 row label.
    pub fn label(&self) -> &'static str {
        match self {
            DetectionKind::C2 { .. } => "Hide C2 server",
            DetectionKind::Content(t) => t.label(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    pub fqdn: Fqdn,
    pub kind: DetectionKind,
}

/// A Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    pub case: &'static str,
    pub functions: u64,
    pub requests: u64,
}

/// The §5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct AbuseScanReport {
    /// Finding 5: sensitive items by kind.
    pub sensitive: HashMap<SensitiveKind, u64>,
    pub sensitive_total: u64,
    /// §3.4 content mix over the content corpus.
    pub content_mix: HashMap<ContentType, u64>,
    /// Cluster count (the manual-review workload metric).
    pub clusters: usize,
    /// Size of the 200-with-content corpus.
    pub corpus_size: usize,
    pub detections: Vec<Detection>,
    pub table3: Vec<Table3Row>,
    /// Figure 7: monthly request volume of the OpenAI-resale functions.
    pub openai_monthly_requests: Vec<u64>,
    /// Figure 7 companion: newly-seen resale functions per month.
    pub openai_monthly_new: Vec<u64>,
    /// §5.3: contact handle → function count (group structure).
    pub openai_groups: Vec<(String, usize)>,
    /// §5.3: redirect targets extracted from redirect-flagged functions,
    /// with the URL-reputation verdict (the WebAdvisor step: the paper
    /// found 3 of 13 extracted URLs flagged).
    pub redirect_targets: Vec<(String, UrlVerdict)>,
    /// Finding 10: how many detected-abuse domains threat intel flags.
    pub ti_flagged: usize,
    pub ti_total_abused: usize,
}

impl AbuseScanReport {
    pub fn total_abused_functions(&self) -> u64 {
        self.table3.iter().map(|r| r.functions).sum()
    }

    pub fn total_abuse_requests(&self) -> u64 {
        self.table3.iter().map(|r| r.requests).sum()
    }
}

/// Run the full §5 analysis.
pub fn abuse_scan<B: PdnsBackend + ?Sized>(
    records: &[ProbeRecord],
    identification: &IdentificationReport,
    pdns: &B,
    net: &SimNet,
    resolver: &Arc<RwLock<Resolver>>,
    config: &AbuseScanConfig,
) -> AbuseScanReport {
    // 1. Corpus: 200-with-content plus redirect responses.
    let corpus_span = fw_obs::span("corpus");
    let mut corpus: Vec<(Fqdn, Response)> = Vec::new();
    let mut redirects: Vec<(Fqdn, Response)> = Vec::new();
    for rec in records {
        if let ProbeOutcome::Responded { response, .. } = &rec.outcome {
            if response.status == 200 && !response.body.is_empty() {
                corpus.push((rec.fqdn.clone(), response.clone()));
            } else if response.is_redirect() {
                redirects.push((rec.fqdn.clone(), response.clone()));
            }
        }
    }
    drop(corpus_span);

    // 2. Sensitive scan + anonymization before any analysis. The
    // per-document scan is a pure function, so it fans out over
    // `par_map_named`; counts are then merged serially in input order
    // — identical to the old serial loop at any worker count.
    let sensitive_span = fw_obs::span("sensitive");
    let scanner = SensitiveScanner::new(&config.salt);
    let scanned = par_map_named(
        &corpus,
        config.workers,
        "abuse/sensitive",
        |_, (_, resp)| scanner.scan_and_anonymize(&resp.body_text()),
    );
    let mut sensitive: HashMap<SensitiveKind, u64> = HashMap::new();
    let mut sanitized: Vec<(Fqdn, Response)> = Vec::with_capacity(corpus.len());
    for ((fqdn, resp), (clean, findings)) in corpus.into_iter().zip(scanned) {
        for f in &findings {
            *sensitive.entry(f.kind).or_insert(0) += 1;
        }
        let mut clean_resp = resp;
        clean_resp.body = clean.into_bytes();
        sanitized.push((fqdn, clean_resp));
    }
    let sensitive_total: u64 = sensitive.values().sum();
    drop(sensitive_span);

    // 3. Content typing + per-type clustering. Classification is
    // per-document pure, merged in index order.
    let cluster_span = fw_obs::span("cluster");
    let types = par_map_named(
        &sanitized,
        config.workers,
        "abuse/classify",
        |_, (_, resp)| ContentType::classify(&resp.body_text(), resp.headers.get("content-type")),
    );
    let mut content_mix: HashMap<ContentType, u64> = HashMap::new();
    let mut by_type: HashMap<ContentType, Vec<usize>> = HashMap::new();
    for (i, ct) in types.into_iter().enumerate() {
        *content_mix.entry(ct).or_insert(0) += 1;
        by_type.entry(ct).or_default().push(i);
    }
    let mut clusters_total = 0usize;
    let mut detections: Vec<Detection> = Vec::new();
    let mut detected: HashSet<Fqdn> = HashSet::new();
    // Iterate types (and clusters below) in sorted order so the
    // `detections` Vec comes out in a fixed order run-to-run; every
    // downstream aggregate is order-independent, but a stable order
    // makes reports directly comparable.
    let mut typed: Vec<(&ContentType, &Vec<usize>)> = by_type.iter().collect();
    typed.sort_by_key(|(ct, _)| **ct);
    for (_, indices) in typed {
        let docs: Vec<String> = indices
            .iter()
            .map(|i| sanitized[*i].1.body_text())
            .collect();
        let clustering = cluster_corpus_par(&docs, &config.cluster_params, config.workers);
        clusters_total += clustering.cluster_count;

        // 4. Review exemplars; propagate to members that independently
        // pass review with the same label.
        let mut members: Vec<(u32, Vec<usize>)> = clustering.members().into_iter().collect();
        members.sort_by_key(|(c, _)| *c);
        for (_cluster, member_ids) in members {
            let exemplar_idx = indices[member_ids[0]];
            let Some(label) = review_exemplar(&sanitized[exemplar_idx].1) else {
                continue;
            };
            for m in member_ids {
                let idx = indices[m];
                let (fqdn, resp) = &sanitized[idx];
                if detected.contains(fqdn) {
                    continue;
                }
                if review_exemplar(resp) == Some(label) {
                    detected.insert(fqdn.clone());
                    detections.push(Detection {
                        fqdn: fqdn.clone(),
                        kind: DetectionKind::Content(label),
                    });
                }
            }
        }
    }

    drop(cluster_span);

    // Redirect responses (3xx) reviewed directly — their body is empty so
    // clustering adds nothing.
    let review_span = fw_obs::span("review");
    for (fqdn, resp) in &redirects {
        if detected.contains(fqdn) {
            continue;
        }
        if let Some(label) = review_exemplar(resp) {
            detected.insert(fqdn.clone());
            detections.push(Detection {
                fqdn: fqdn.clone(),
                kind: DetectionKind::Content(label),
            });
        }
    }

    drop(review_span);

    // 5. C2 fingerprint scan over all probed domains.
    let c2_span = fw_obs::span("c2scan");
    let mut c2_domains: Vec<Fqdn> = Vec::new();
    if config.scan_c2 {
        let scanner = C2Scanner::new(net.clone(), resolver.clone()).with_timeout(config.c2_timeout);
        let candidates: Vec<Fqdn> = records
            .iter()
            .filter(|r| r.outcome.is_reachable())
            .map(|r| r.fqdn.clone())
            .collect();
        for hit in scanner.scan_parallel(&candidates, config.workers) {
            if detected.insert(hit.fqdn.clone()) {
                c2_domains.push(hit.fqdn.clone());
                detections.push(Detection {
                    fqdn: hit.fqdn,
                    kind: DetectionKind::C2 { family: hit.family },
                });
            }
        }
    }

    drop(c2_span);

    // 6. Table 3 + Figure 7 + Finding 10.
    let _report_span = fw_obs::span("report");
    if fw_obs::enabled() {
        // Per-family verdict counters (dynamic names, so the registry is
        // addressed directly instead of via the handle-caching macros).
        let registry = fw_obs::registry();
        for d in &detections {
            registry
                .counter(&format!(
                    "fw.abuse.verdict.{}",
                    metric_suffix(d.kind.label())
                ))
                .inc();
        }
    }
    let requests_of: HashMap<&Fqdn, u64> = identification
        .functions
        .iter()
        .map(|f| (&f.fqdn, f.agg.total_request_cnt))
        .collect();
    let case_order: [&'static str; 8] = [
        "Hide C2 server",
        "Gambling Website",
        "Porn-related Sites",
        "Cheating Tool",
        "Redirect to New Domains",
        "Resale of OpenAI Key",
        "Illegal Service Proxy",
        "Geo-bypass Proxy",
    ];
    let mut rows: HashMap<&'static str, Table3Row> = HashMap::new();
    for d in &detections {
        let row = rows.entry(d.kind.label()).or_insert(Table3Row {
            case: d.kind.label(),
            functions: 0,
            requests: 0,
        });
        row.functions += 1;
        row.requests += requests_of.get(&d.fqdn).copied().unwrap_or(0);
    }
    let table3: Vec<Table3Row> = case_order
        .iter()
        .filter_map(|case| rows.remove(case))
        .collect();

    // Figure 7 series for the resale functions.
    let resale_fqdns: HashSet<&Fqdn> = detections
        .iter()
        .filter(|d| matches!(d.kind, DetectionKind::Content(AbuseType::OpenAiResale)))
        .map(|d| &d.fqdn)
        .collect();
    let mut openai_monthly_requests = vec![0u64; 24];
    pdns.for_each_row(&mut |fqdn, _rtype, _rdata, pdate, cnt| {
        if !resale_fqdns.contains(fqdn) {
            return;
        }
        if let Some(idx) = month_index_of(pdate) {
            openai_monthly_requests[idx] += cnt;
        }
    });
    let mut openai_monthly_new = vec![0u64; 24];
    for f in &identification.functions {
        if resale_fqdns.contains(&f.fqdn) {
            if let Some(idx) = month_index_of(f.agg.first_seen_all) {
                openai_monthly_new[idx] += 1;
            }
        }
    }

    // §5.3 group structure: contact → function count. `sanitized` is
    // indexed by fqdn once, so this pass is O(detections) instead of
    // O(detections × corpus).
    let mut sanitized_by_fqdn: HashMap<&Fqdn, &Response> = HashMap::with_capacity(sanitized.len());
    for (f, r) in &sanitized {
        // First occurrence wins, matching the old linear `find`.
        sanitized_by_fqdn.entry(f).or_insert(r);
    }
    let mut groups: HashMap<String, usize> = HashMap::new();
    for d in &detections {
        if !matches!(d.kind, DetectionKind::Content(AbuseType::OpenAiResale)) {
            continue;
        }
        if let Some(resp) = sanitized_by_fqdn.get(&d.fqdn) {
            let body = resp.body_text();
            if detect_openai_promo(&body).is_some() {
                for c in extract_contacts(&body) {
                    *groups.entry(c.value().to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    let mut openai_groups: Vec<(String, usize)> = groups.into_iter().collect();
    openai_groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // §5.3: extract and assess redirect targets (the WebAdvisor step).
    let reputation = UrlReputation::new();
    let mut redirect_targets: Vec<(String, UrlVerdict)> = Vec::new();
    {
        let redirect_fqdns: HashSet<&Fqdn> = detections
            .iter()
            .filter(|d| matches!(d.kind, DetectionKind::Content(AbuseType::Redirect)))
            .map(|d| &d.fqdn)
            .collect();
        let mut seen_targets: HashSet<String> = HashSet::new();
        for (fqdn, resp) in sanitized.iter().chain(redirects.iter()) {
            if !redirect_fqdns.contains(fqdn) {
                continue;
            }
            for finding in extract_redirects(resp) {
                if seen_targets.insert(finding.target.clone()) {
                    let verdict = reputation.assess(&finding.target);
                    redirect_targets.push((finding.target, verdict));
                }
            }
        }
        redirect_targets.sort();
    }

    // Finding 10.
    let ti = ThreatIntel::with_paper_coverage(&c2_domains);
    let all_abused: Vec<&Fqdn> = detections.iter().map(|d| &d.fqdn).collect();
    let ti_flagged = ti.flagged_among(all_abused.iter().copied());

    AbuseScanReport {
        sensitive,
        sensitive_total,
        content_mix,
        clusters: clusters_total,
        corpus_size: sanitized.len(),
        ti_total_abused: detections.len(),
        detections,
        table3,
        openai_monthly_requests,
        openai_monthly_new,
        openai_groups,
        redirect_targets,
        ti_flagged,
    }
}

/// `"Hide C2 server"` → `hide_c2_server`, for metric names.
fn metric_suffix(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn month_index_of(day: fw_types::DayStamp) -> Option<usize> {
    let start = MEASUREMENT_START.month();
    let m = day.month();
    if day < MEASUREMENT_START || day > MEASUREMENT_END {
        return None;
    }
    let idx = (m.year - start.year) * 12 + (m.month as i32 - start.month as i32);
    (0..24).contains(&idx).then_some(idx as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::identify_functions;
    use fw_dns::pdns::PdnsStore;
    use fw_probe::prober::ProbeRecord;
    use fw_types::{DayStamp, Rdata};
    use std::net::Ipv4Addr;

    fn responded(fqdn: &str, resp: Response) -> ProbeRecord {
        ProbeRecord {
            fqdn: Fqdn::parse(fqdn).unwrap(),
            outcome: ProbeOutcome::Responded {
                https: true,
                response: resp,
            },
            requests_issued: 1,
        }
    }

    fn scan(records: &[ProbeRecord], pdns: &PdnsStore) -> AbuseScanReport {
        let identification = identify_functions(pdns);
        let net = SimNet::new(1);
        let resolver = Arc::new(RwLock::new(Resolver::new()));
        abuse_scan(
            records,
            &identification,
            pdns,
            &net,
            &resolver,
            &AbuseScanConfig {
                scan_c2: false, // no live network in these unit tests
                ..AbuseScanConfig::default()
            },
        )
    }

    fn pdns_for(domains: &[(&str, u64)]) -> PdnsStore {
        let mut s = PdnsStore::new();
        for (d, cnt) in domains {
            s.observe_count(
                &Fqdn::parse(d).unwrap(),
                &Rdata::V4(Ipv4Addr::new(203, 0, 113, 1)),
                DayStamp(19_100),
                *cnt,
            );
        }
        s
    }

    const GAMBLING: &str = r#"<html><head><meta name="google-site-verification" content="g-7">
        </head><body>slot slot slot betting casino jackpot deposit bonus spin</body></html>"#;

    #[test]
    fn detects_gambling_and_counts_requests() {
        let fqdn = "luckyfn-a1b2c3d4e5-uc.a.run.app";
        let pdns = pdns_for(&[(fqdn, 77)]);
        let records = vec![responded(fqdn, Response::html(200, GAMBLING))];
        let report = scan(&records, &pdns);
        assert_eq!(report.total_abused_functions(), 1);
        let row = &report.table3[0];
        assert_eq!(row.case, "Gambling Website");
        assert_eq!(row.requests, 77);
    }

    #[test]
    fn sensitive_data_counted_and_masked_before_review() {
        let fqdn = "leaky-a1b2c3d4e5-uc.a.run.app";
        let pdns = pdns_for(&[(fqdn, 5)]);
        let body = r#"{"service":"db","password": "hunter22","ip":"10.0.0.9"}"#;
        let records = vec![responded(fqdn, Response::json(200, body))];
        let report = scan(&records, &pdns);
        assert_eq!(report.sensitive_total, 2);
        assert_eq!(report.sensitive[&SensitiveKind::Password], 1);
        assert_eq!(report.sensitive[&SensitiveKind::NetworkId], 1);
        // The leak itself is not an abuse case.
        assert_eq!(report.total_abused_functions(), 0);
    }

    #[test]
    fn content_mix_and_clusters_reported() {
        let pdns = pdns_for(&[
            ("a1-a1b2c3d4e5-uc.a.run.app", 1),
            ("b2-a1b2c3d4e5-uc.a.run.app", 1),
            ("c3-a1b2c3d4e5-uc.a.run.app", 1),
        ]);
        let records = vec![
            responded(
                "a1-a1b2c3d4e5-uc.a.run.app",
                Response::json(200, r#"{"x":1}"#),
            ),
            responded(
                "b2-a1b2c3d4e5-uc.a.run.app",
                Response::html(200, "<html><body>hi</body></html>"),
            ),
            responded(
                "c3-a1b2c3d4e5-uc.a.run.app",
                Response::text(200, "plain log line"),
            ),
        ];
        let report = scan(&records, &pdns);
        assert_eq!(report.corpus_size, 3);
        assert_eq!(report.content_mix[&ContentType::Json], 1);
        assert_eq!(report.content_mix[&ContentType::Html], 1);
        assert_eq!(report.content_mix[&ContentType::Plaintext], 1);
        assert_eq!(report.clusters, 3);
    }

    #[test]
    fn redirect_302_detected_without_body() {
        let fqdn = "rd-a1b2c3d4e5-uc.a.run.app";
        let pdns = pdns_for(&[(fqdn, 12)]);
        let records = vec![responded(
            fqdn,
            Response::redirect(302, "https://fxbtg-hidden.example-illicit.net/x"),
        )];
        let report = scan(&records, &pdns);
        assert_eq!(report.total_abused_functions(), 1);
        assert_eq!(report.table3[0].case, "Redirect to New Domains");
        // The target was extracted and assessed (FXBTG lookalike →
        // flagged, like the §5.3 WebAdvisor check).
        assert_eq!(report.redirect_targets.len(), 1);
        assert_eq!(report.redirect_targets[0].1, UrlVerdict::Flagged);
    }

    #[test]
    fn random_splice_target_extracted_as_wildcard() {
        let fqdn = "sp-a1b2c3d4e5-uc.a.run.app";
        let pdns = pdns_for(&[(fqdn, 3)]);
        let body = "<html><head><script>var Rand = Math.round(Math.random() * 999999)\n\
                    location.href=\"https://\"+Rand+\".yerbsdga.xyz\"</script></head></html>";
        let records = vec![responded(fqdn, Response::html(200, body))];
        let report = scan(&records, &pdns);
        assert_eq!(report.total_abused_functions(), 1);
        let (target, verdict) = &report.redirect_targets[0];
        assert_eq!(target, "*.yerbsdga.xyz");
        assert_eq!(*verdict, UrlVerdict::Flagged);
    }

    #[test]
    fn benign_corpus_produces_no_detections() {
        let pdns = pdns_for(&[("ok-a1b2c3d4e5-uc.a.run.app", 3)]);
        let records = vec![responded(
            "ok-a1b2c3d4e5-uc.a.run.app",
            Response::json(200, r#"{"status":"ok"}"#),
        )];
        let report = scan(&records, &pdns);
        assert!(report.detections.is_empty());
        assert_eq!(report.ti_flagged, 0);
    }

    #[test]
    fn openai_groups_and_fig7_series() {
        let promo = "To purchase an OpenAI API key (sk-s5S5BoV***), contact via \
                     WeChat: wx_shop_a. 10 RMB, in stock.";
        let f1 = "p1-proj-abcdefghij.cn-shanghai.fcapp.run";
        let f2 = "p2-proj-abcdefghij.cn-shanghai.fcapp.run";
        let mut pdns = PdnsStore::new();
        // Requests in Jan 2023 (month index 9).
        let jan2023 = fw_types::DayStamp::from_ymd(2023, 1, 15);
        for f in [f1, f2] {
            pdns.observe_count(
                &Fqdn::parse(f).unwrap(),
                &Rdata::V4(Ipv4Addr::new(203, 0, 113, 2)),
                jan2023,
                40,
            );
        }
        let records = vec![
            responded(f1, Response::text(200, promo)),
            responded(f2, Response::text(200, promo)),
        ];
        let report = scan(&records, &pdns);
        let resale = report
            .table3
            .iter()
            .find(|r| r.case == "Resale of OpenAI Key")
            .expect("resale row");
        assert_eq!(resale.functions, 2);
        assert_eq!(resale.requests, 80);
        assert_eq!(report.openai_monthly_requests[9], 80);
        assert_eq!(report.openai_monthly_new[9], 2);
        assert_eq!(report.openai_groups[0], ("wx_shop_a".to_string(), 2));
    }
}
