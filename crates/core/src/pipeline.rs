//! End-to-end orchestration: PDNS → identification → usage analyses →
//! active probing → status → abuse scan.

use crate::abusescan::{abuse_scan, AbuseScanConfig, AbuseScanReport};
use crate::identify::{identify_functions, IdentificationReport};
use crate::status::{status_report, StatusReport};
use crate::usage::{
    ingress_table, invocation_report, monthly_new_fqdns, monthly_requests, IngressRow,
    InvocationReport, MonthlySeries,
};
use fw_dns::pdns::PdnsBackend;
use fw_dns::resolver::Resolver;
use fw_net::SimNet;
use fw_probe::prober::{ProbeConfig, ProbeRecord, Prober};
use parking_lot::RwLock;
use std::sync::Arc;

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    pub probe: ProbeConfig,
    pub abuse: AbuseScanConfig,
}

/// Everything the paper reports, computed from the data.
#[derive(Debug)]
pub struct FullReport {
    pub identification: IdentificationReport,
    /// Figure 3.
    pub new_fqdns: MonthlySeries,
    /// Figure 4.
    pub request_series: MonthlySeries,
    /// Table 2.
    pub ingress: Vec<IngressRow>,
    /// Figure 5 / §4.3.
    pub invocation: InvocationReport,
    /// Raw probe records (§3.3 output).
    pub probe_records: Vec<ProbeRecord>,
    /// Figure 6 / §4.4.
    pub status: StatusReport,
    /// §5 / Table 3 / Figure 7 / Findings 5+10.
    pub abuse: AbuseScanReport,
}

/// Usage-only report (no network access needed).
#[derive(Debug)]
pub struct UsageReport {
    pub identification: IdentificationReport,
    pub new_fqdns: MonthlySeries,
    pub request_series: MonthlySeries,
    pub ingress: Vec<IngressRow>,
    pub invocation: InvocationReport,
}

/// The measurement pipeline, bound to a network and resolver vantage
/// point.
pub struct Pipeline {
    net: SimNet,
    resolver: Arc<RwLock<Resolver>>,
}

impl Pipeline {
    pub fn new(net: SimNet, resolver: Arc<RwLock<Resolver>>) -> Pipeline {
        Pipeline { net, resolver }
    }

    /// §4 analyses only (passive data, no probing).
    pub fn run_usage<B: PdnsBackend + ?Sized>(pdns: &B) -> UsageReport {
        let _pipeline = fw_obs::span("pipeline");
        let identification = {
            let _s = fw_obs::span("identify");
            identify_functions(pdns)
        };
        let _s = fw_obs::span("usage");
        UsageReport {
            new_fqdns: monthly_new_fqdns(&identification),
            request_series: monthly_requests(&identification, pdns),
            ingress: ingress_table(&identification, pdns),
            invocation: invocation_report(&identification),
            identification,
        }
    }

    /// The full §3–§5 pipeline.
    pub fn run<B: PdnsBackend + ?Sized>(&self, pdns: &B, config: &PipelineConfig) -> FullReport {
        let _pipeline = fw_obs::span("pipeline");
        let identification = {
            let _s = fw_obs::span("identify");
            identify_functions(pdns)
        };
        let (new_fqdns, request_series, ingress, invocation) = {
            let _s = fw_obs::span("usage");
            (
                monthly_new_fqdns(&identification),
                monthly_requests(&identification, pdns),
                ingress_table(&identification, pdns),
                invocation_report(&identification),
            )
        };

        let probe_records = {
            let _s = fw_obs::span("probe");
            let prober = Prober::new(
                self.net.clone(),
                self.resolver.clone(),
                config.probe.clone(),
            );
            prober.probe_all(&identification.probe_scope())
        };
        let status = {
            let _s = fw_obs::span("status");
            status_report(&probe_records)
        };
        let abuse = {
            let _s = fw_obs::span("abuse");
            abuse_scan(
                &probe_records,
                &identification,
                pdns,
                &self.net,
                &self.resolver,
                &config.abuse,
            )
        };

        FullReport {
            identification,
            new_fqdns,
            request_series,
            ingress,
            invocation,
            probe_records,
            status,
            abuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;

    #[test]
    fn usage_only_runs_on_empty_store() {
        let pdns = PdnsStore::new();
        let report = Pipeline::run_usage(&pdns);
        assert_eq!(report.identification.functions.len(), 0);
        assert_eq!(report.invocation.functions, 0);
    }
}
