//! Current invocation status (§4.4, Figure 6).
//!
//! Summarizes the active-probing outcomes: reachability, DNS-failure
//! share (the deleted-Tencent effect), HTTPS support, the status-code
//! distribution and the 200-with-content corpus that feeds §5.

use fw_dns::resolver::ResolveError;
use fw_probe::prober::{ProbeOutcome, ProbeRecord};
use std::collections::HashMap;

/// Figure 6 + §4.4 summary.
#[derive(Debug, Clone)]
pub struct StatusReport {
    pub probed: u64,
    pub reachable: u64,
    pub unreachable: u64,
    /// DNS failures among the unreachable (paper: 19.12%, all Tencent).
    pub dns_failures: u64,
    /// Responses obtained over HTTPS (vs. HTTP fallback).
    pub https_ok: u64,
    /// status code → count, over reachable functions.
    pub status_counts: HashMap<u16, u64>,
    /// 200 responses with a non-empty body (the §5 analysis corpus).
    pub ok_with_content: u64,
    pub ok_empty: u64,
    /// Owners who opted out (Appendix A) — never contacted, excluded
    /// from every share below.
    pub opted_out: u64,
}

impl StatusReport {
    pub fn frac_unreachable(&self) -> f64 {
        if self.probed == 0 {
            return 0.0;
        }
        self.unreachable as f64 / self.probed as f64
    }

    pub fn frac_dns_failures_of_unreachable(&self) -> f64 {
        if self.unreachable == 0 {
            return 0.0;
        }
        self.dns_failures as f64 / self.unreachable as f64
    }

    pub fn frac_https(&self) -> f64 {
        if self.reachable == 0 {
            return 0.0;
        }
        self.https_ok as f64 / self.reachable as f64
    }

    /// Share of a status code among reachable functions.
    pub fn frac_status(&self, status: u16) -> f64 {
        if self.reachable == 0 {
            return 0.0;
        }
        self.status_counts.get(&status).copied().unwrap_or(0) as f64 / self.reachable as f64
    }

    /// The top-k status codes by frequency (Figure 6's x-axis).
    pub fn top_statuses(&self, k: usize) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self.status_counts.iter().map(|(s, c)| (*s, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

/// Summarize probe records into the §4.4 report.
pub fn status_report(records: &[ProbeRecord]) -> StatusReport {
    let mut report = StatusReport {
        probed: records.len() as u64,
        reachable: 0,
        unreachable: 0,
        dns_failures: 0,
        https_ok: 0,
        status_counts: HashMap::new(),
        ok_with_content: 0,
        ok_empty: 0,
        opted_out: 0,
    };
    for rec in records {
        match &rec.outcome {
            ProbeOutcome::Responded { https, response } => {
                report.reachable += 1;
                if *https {
                    report.https_ok += 1;
                }
                *report.status_counts.entry(response.status).or_insert(0) += 1;
                if response.status == 200 {
                    if response.body.is_empty() {
                        report.ok_empty += 1;
                    } else {
                        report.ok_with_content += 1;
                    }
                }
            }
            ProbeOutcome::DnsFailure(e) => {
                report.unreachable += 1;
                if matches!(e, ResolveError::NxDomain) {
                    report.dns_failures += 1;
                }
            }
            ProbeOutcome::Unreachable { .. } => {
                report.unreachable += 1;
            }
            ProbeOutcome::OptedOut => {
                report.opted_out += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_http::types::Response;
    use fw_types::Fqdn;

    fn rec(fqdn: &str, outcome: ProbeOutcome) -> ProbeRecord {
        ProbeRecord {
            fqdn: Fqdn::parse(fqdn).unwrap(),
            outcome,
            requests_issued: 1,
        }
    }

    fn responded(fqdn: &str, https: bool, status: u16, body: &str) -> ProbeRecord {
        rec(
            fqdn,
            ProbeOutcome::Responded {
                https,
                response: Response::text(status, body),
            },
        )
    }

    #[test]
    fn aggregates_figure6_quantities() {
        let records = vec![
            responded("a.on.aws", true, 404, "Not Found"),
            responded("b.on.aws", true, 404, "Not Found"),
            responded("c.on.aws", true, 200, "content"),
            responded("d.on.aws", false, 200, ""),
            responded("e.on.aws", true, 502, "bad gateway"),
            rec(
                "f.scf.tencentcs.com",
                ProbeOutcome::DnsFailure(ResolveError::NxDomain),
            ),
            rec(
                "g.on.aws",
                ProbeOutcome::Unreachable {
                    reason: "timeout".into(),
                },
            ),
        ];
        let r = status_report(&records);
        assert_eq!(r.probed, 7);
        assert_eq!(r.reachable, 5);
        assert_eq!(r.unreachable, 2);
        assert_eq!(r.dns_failures, 1);
        assert!((r.frac_dns_failures_of_unreachable() - 0.5).abs() < 1e-9);
        assert_eq!(r.https_ok, 4);
        assert!((r.frac_https() - 0.8).abs() < 1e-9);
        assert!((r.frac_status(404) - 0.4).abs() < 1e-9);
        assert_eq!(r.ok_with_content, 1);
        assert_eq!(r.ok_empty, 1);
        // 404 and 200 tie at 2; ties break by ascending status code.
        let top = r.top_statuses(2);
        assert_eq!(top[0], (200, 2));
        assert_eq!(top[1], (404, 2));
    }

    #[test]
    fn empty_records_are_safe() {
        let r = status_report(&[]);
        assert_eq!(r.frac_unreachable(), 0.0);
        assert_eq!(r.frac_https(), 0.0);
        assert!(r.top_statuses(10).is_empty());
    }
}
