//! Serverless function identification (§3.2).
//!
//! The paper converts Table 1's URL formats into domain regular
//! expressions and filters the PDNS feed through them. Here the same
//! compiled expressions (from `fw-cloud::formats`, engine from
//! `fw-pattern`) scan every fqdn in the store; matches are aggregated per
//! function with the §3.2 key metrics.

use fw_analysis::par::{default_workers, par_map_named};
use fw_cloud::formats::{all_formats, format_for, identify};
use fw_dns::pdns::{FqdnAggregate, PdnsBackend};
use fw_types::{Fqdn, ProviderId};
use std::collections::HashMap;

/// One identified serverless function domain.
#[derive(Debug, Clone)]
pub struct IdentifiedFunction {
    pub fqdn: Fqdn,
    pub provider: ProviderId,
    /// Region code extracted from the domain, where the format encodes
    /// one.
    pub region: Option<String>,
    /// §3.2 aggregate: first/last seen, days_count, total_request_cnt,
    /// rdata distribution.
    pub agg: FqdnAggregate,
}

/// Identification summary.
#[derive(Debug, Clone)]
pub struct IdentificationReport {
    pub functions: Vec<IdentifiedFunction>,
    /// fqdns in the store that matched no provider expression.
    pub unmatched: u64,
    /// Total request count across identified functions.
    pub total_requests: u64,
}

impl IdentificationReport {
    /// Count of identified domains per provider (Table 2 "Domains").
    pub fn domains_per_provider(&self) -> HashMap<ProviderId, u64> {
        let mut out = HashMap::new();
        for f in &self.functions {
            *out.entry(f.provider).or_insert(0) += 1;
        }
        out
    }

    /// Per-provider request totals (Table 2 "All Request").
    pub fn requests_per_provider(&self) -> HashMap<ProviderId, u64> {
        let mut out = HashMap::new();
        for f in &self.functions {
            *out.entry(f.provider).or_insert(0) += f.agg.total_request_cnt;
        }
        out
    }

    /// Functions belonging to providers whose domains map one-to-one to
    /// functions (the §4.3 / probing scope).
    pub fn function_identifiable(&self) -> impl Iterator<Item = &IdentifiedFunction> {
        self.functions
            .iter()
            .filter(|f| f.provider.function_identifiable())
    }

    /// Domains to actively probe (§3.3 scope).
    pub fn probe_scope(&self) -> Vec<Fqdn> {
        self.function_identifiable()
            .map(|f| f.fqdn.clone())
            .collect()
    }
}

/// Scan a PDNS backend and identify all serverless function domains.
pub fn identify_functions<B: PdnsBackend + ?Sized>(pdns: &B) -> IdentificationReport {
    identify_functions_with(pdns, default_workers())
}

/// [`identify_functions`] with an explicit worker count. The result is
/// independent of `workers`: classification is a pure per-fqdn function
/// and the output keeps the backend's sorted-fqdn order.
pub fn identify_functions_with<B: PdnsBackend + ?Sized>(
    pdns: &B,
    workers: usize,
) -> IdentificationReport {
    identify_from_aggregates(pdns.par_aggregates(workers), workers)
}

/// Identify functions from pre-computed per-fqdn aggregates — the
/// columnar fast path. `fw_store::stream_snapshot_aggregates` feeds this
/// directly from snapshot segments without building store tables.
pub fn identify_from_aggregates(aggs: Vec<FqdnAggregate>, workers: usize) -> IdentificationReport {
    // Classification (regex match + region extraction) is the per-fqdn
    // CPU cost; run it data-parallel, then zip the verdicts back onto
    // the owned aggregates.
    let verdicts: Vec<Option<(ProviderId, Option<String>)>> =
        par_map_named(&aggs, workers, "identify/verdicts", |_, agg| {
            identify(&agg.fqdn)
                .map(|provider| (provider, format_for(provider).region_of(&agg.fqdn)))
        });
    let mut functions = Vec::with_capacity(aggs.len());
    let mut unmatched = 0u64;
    let mut total_requests = 0u64;
    for (agg, verdict) in aggs.into_iter().zip(verdicts) {
        match verdict {
            Some((provider, region)) => {
                total_requests += agg.total_request_cnt;
                functions.push(IdentifiedFunction {
                    fqdn: agg.fqdn.clone(),
                    provider,
                    region,
                    agg,
                });
            }
            None => unmatched += 1,
        }
    }
    // Deterministic order for downstream consumers (aggregates arrive
    // sorted from both backends, but don't rely on it).
    functions.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
    IdentificationReport {
        functions,
        unmatched,
        total_requests,
    }
}

/// Ablation (DESIGN.md §5.4): identification precision of suffix-only
/// matching vs. the full expressions. Returns `(full_matches,
/// suffix_only_matches)` — the gap is the false-positive surface the
/// Table 1 expressions eliminate.
pub fn suffix_only_ablation<B: PdnsBackend + ?Sized>(pdns: &B) -> (u64, u64) {
    let mut full = 0u64;
    let mut suffix_only = 0u64;
    pdns.for_each_fqdn(&mut |fqdn| {
        if identify(fqdn).is_some() {
            full += 1;
        }
        if all_formats()
            .iter()
            .any(|f| f.provider.dns_identifiable() && fqdn.has_suffix(f.provider.domain_suffix()))
        {
            suffix_only += 1;
        }
    });
    (full, suffix_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Rdata};
    use std::net::Ipv4Addr;

    fn store_with(domains: &[(&str, u64)]) -> PdnsStore {
        let mut s = PdnsStore::new();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 1));
        for (d, cnt) in domains {
            s.observe_count(&Fqdn::parse(d).unwrap(), &ip, DayStamp(19_100), *cnt);
        }
        s
    }

    #[test]
    fn identifies_provider_domains_and_skips_noise() {
        let s = store_with(&[
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 10),
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
            ("mail.google.com", 50),
        ]);
        let report = identify_functions(&s);
        assert_eq!(report.functions.len(), 3);
        assert_eq!(report.unmatched, 2);
        assert_eq!(report.total_requests, 20);
        let per = report.domains_per_provider();
        assert_eq!(per[&ProviderId::Tencent], 1);
        assert_eq!(per[&ProviderId::Google2], 1);
        assert_eq!(per[&ProviderId::Aws], 1);
    }

    #[test]
    fn regions_extracted() {
        let s = store_with(&[("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 1)]);
        let report = identify_functions(&s);
        assert_eq!(report.functions[0].region.as_deref(), Some("ap-guangzhou"));
    }

    #[test]
    fn azure_like_domains_are_not_identified() {
        // Azure is excluded from collection (§3.2): its suffix collides
        // with ordinary web apps.
        let s = store_with(&[("random-blog.azurewebsites.net", 5)]);
        let report = identify_functions(&s);
        assert!(report.functions.is_empty());
        assert_eq!(report.unmatched, 1);
    }

    #[test]
    fn probe_scope_excludes_path_identified() {
        let s = store_with(&[
            ("us-central1-proj.cloudfunctions.net", 9), // Google 1st gen
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),        // Google2
        ]);
        let report = identify_functions(&s);
        assert_eq!(report.functions.len(), 2);
        let scope = report.probe_scope();
        assert_eq!(scope.len(), 1);
        assert!(scope[0].as_str().ends_with("a.run.app"));
    }

    #[test]
    fn suffix_ablation_shows_precision_gap() {
        let s = store_with(&[
            // Valid function.
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 1),
            // Suffix matches, expression rejects (malformed prefix).
            ("www.scf.tencentcs.com", 1),
            ("something.on.aws", 1),
        ]);
        let (full, suffix_only) = suffix_only_ablation(&s);
        assert_eq!(full, 1);
        assert_eq!(suffix_only, 3);
    }

    #[test]
    fn worker_count_invariant() {
        let s = store_with(&[
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 10),
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
        ]);
        let base = identify_functions_with(&s, 1);
        for workers in [3, 8] {
            let got = identify_functions_with(&s, workers);
            assert_eq!(got.unmatched, base.unmatched);
            assert_eq!(got.total_requests, base.total_requests);
            assert_eq!(got.functions.len(), base.functions.len());
            for (a, b) in got.functions.iter().zip(&base.functions) {
                assert_eq!(a.fqdn, b.fqdn);
                assert_eq!(a.provider, b.provider);
                assert_eq!(a.region, b.region);
                assert_eq!(a.agg, b.agg);
            }
        }
    }

    #[test]
    fn deterministic_ordering() {
        let s = store_with(&[
            ("zzz-a1b2c3d4e5-uc.a.run.app", 1),
            ("aaa-a1b2c3d4e5-uc.a.run.app", 1),
        ]);
        let report = identify_functions(&s);
        assert!(report.functions[0].fqdn < report.functions[1].fqdn);
    }
}
