//! Serverless function identification (§3.2).
//!
//! The paper converts Table 1's URL formats into domain regular
//! expressions and filters the PDNS feed through them. Here the same
//! compiled expressions (from `fw-cloud::formats`, engine from
//! `fw-pattern`) scan every fqdn in the store; matches are aggregated per
//! function with the §3.2 key metrics.
//!
//! Since DESIGN.md §14 the implementation is a delta-driven state
//! machine, [`IdentifyEngine`]: the streaming daemon feeds it raw
//! [`PdnsRow`]s batch by batch and consumes [`VerdictChange`] deltas,
//! while the batch sweeps ([`identify_functions`],
//! [`identify_from_aggregates`]) are thin wrappers that load the same
//! engine from pre-computed aggregates — so a daemon's final state is
//! provably identical to a batch run over the same rows.

use fw_analysis::par::{default_workers, par_map_named};
use fw_cloud::formats::{all_formats, identify, identify_with_region};
use fw_dns::pdns::{FqdnAggregate, PdnsBackend, PdnsRow};
use fw_types::{DayStamp, Fqdn, ProviderId, Rdata};
use std::collections::HashMap;

/// One identified serverless function domain.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifiedFunction {
    pub fqdn: Fqdn,
    pub provider: ProviderId,
    /// Region code extracted from the domain, where the format encodes
    /// one.
    pub region: Option<String>,
    /// §3.2 aggregate: first/last seen, days_count, total_request_cnt,
    /// rdata distribution.
    pub agg: FqdnAggregate,
}

/// Identification summary.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentificationReport {
    pub functions: Vec<IdentifiedFunction>,
    /// fqdns in the store that matched no provider expression.
    pub unmatched: u64,
    /// Total request count across identified functions.
    pub total_requests: u64,
}

impl IdentificationReport {
    /// Count of identified domains per provider (Table 2 "Domains").
    pub fn domains_per_provider(&self) -> HashMap<ProviderId, u64> {
        let mut out = HashMap::new();
        for f in &self.functions {
            *out.entry(f.provider).or_insert(0) += 1;
        }
        out
    }

    /// Per-provider request totals (Table 2 "All Request").
    pub fn requests_per_provider(&self) -> HashMap<ProviderId, u64> {
        let mut out = HashMap::new();
        for f in &self.functions {
            *out.entry(f.provider).or_insert(0) += f.agg.total_request_cnt;
        }
        out
    }

    /// Functions belonging to providers whose domains map one-to-one to
    /// functions (the §4.3 / probing scope).
    pub fn function_identifiable(&self) -> impl Iterator<Item = &IdentifiedFunction> {
        self.functions
            .iter()
            .filter(|f| f.provider.function_identifiable())
    }

    /// Domains to actively probe (§3.3 scope).
    pub fn probe_scope(&self) -> Vec<Fqdn> {
        self.function_identifiable()
            .map(|f| f.fqdn.clone())
            .collect()
    }

    /// Point lookup by fqdn. `functions` is sorted by fqdn (both
    /// [`IdentifyEngine::report`] and the batch sweep guarantee it), so
    /// the serving read path can binary-search instead of scanning.
    pub fn find(&self, fqdn: &Fqdn) -> Option<&IdentifiedFunction> {
        debug_assert!(self.functions.windows(2).all(|w| w[0].fqdn <= w[1].fqdn));
        self.functions
            .binary_search_by(|f| f.fqdn.cmp(fqdn))
            .ok()
            .map(|i| &self.functions[i])
    }
}

/// One delta emitted by [`IdentifyEngine::apply_rows`].
///
/// A fqdn's classification is a pure function of its name, so it is
/// decided once — on the batch that first mentions it — and never
/// revised: `Identified`/`Unmatched` each fire at most once per fqdn.
/// `Evidence` fires once per batch for every identified function the
/// batch touched, carrying the function's *cumulative* §3.2 metrics so
/// downstream scorers can re-score candidates as evidence accrues.
#[derive(Debug, Clone, PartialEq)]
pub enum VerdictChange {
    Identified {
        fqdn: Fqdn,
        provider: ProviderId,
        region: Option<String>,
    },
    Unmatched {
        fqdn: Fqdn,
    },
    Evidence {
        fqdn: Fqdn,
        provider: ProviderId,
        total_requests: u64,
        days_count: u32,
        first_seen: DayStamp,
        last_seen: DayStamp,
    },
}

/// Classification verdict for one fqdn — the per-fqdn CPU cost, shared
/// by the streaming and batch paths. A single pattern-engine run yields
/// both the provider verdict and the region code.
fn classify(fqdn: &Fqdn) -> Option<(ProviderId, Option<String>)> {
    identify_with_region(fqdn)
}

/// Public form of the engine's classifier, for pipelines that classify
/// an fqdn once at the scan site (e.g. the fused per-shard scan, which
/// needs the provider while streaming rows) and then hand the verdict
/// to [`IdentifyEngine::absorb_classified`] so it is not recomputed.
pub fn classify_fqdn(fqdn: &Fqdn) -> Option<(ProviderId, Option<String>)> {
    classify(fqdn)
}

/// Classification fans out to worker threads only above this many new
/// fqdns per batch; tiny streaming batches run inline. Purely a
/// scheduling choice — `par_map_named` is order-identical to serial, so
/// results never depend on it.
const PAR_CLASSIFY_MIN: usize = 64;

/// Cumulative per-function aggregate state. On the row-fed path `days`
/// holds the sorted distinct observation days; on the aggregate-fed
/// path (batch wrappers) the day set is already collapsed into
/// `days_count` and `days` stays empty — an engine is fed by one path
/// or the other, never both.
#[derive(Debug, Clone)]
struct FnState {
    fqdn: Fqdn,
    provider: ProviderId,
    region: Option<String>,
    first: DayStamp,
    last: DayStamp,
    days: Vec<DayStamp>,
    days_count: u32,
    total: u64,
    /// `(rdata, total requests)`, sorted by rdata — the same order both
    /// store backends produce, so reports compare byte-identically.
    rdata: Vec<(Rdata, u64)>,
}

impl FnState {
    fn new(fqdn: Fqdn, provider: ProviderId, region: Option<String>) -> Self {
        FnState {
            fqdn,
            provider,
            region,
            first: DayStamp(i64::MAX),
            last: DayStamp(i64::MIN),
            days: Vec::new(),
            days_count: 0,
            total: 0,
            rdata: Vec::new(),
        }
    }

    fn from_aggregate(agg: FqdnAggregate, provider: ProviderId, region: Option<String>) -> Self {
        FnState {
            fqdn: agg.fqdn,
            provider,
            region,
            first: agg.first_seen_all,
            last: agg.last_seen_all,
            days: Vec::new(),
            days_count: agg.days_count,
            total: agg.total_request_cnt,
            rdata: agg.rdata_dist,
        }
    }

    /// Fold one row in. Every update is commutative and associative
    /// over rows (min, max, set-insert, sum), so any arrival order of
    /// the same multiset of rows produces the same state.
    fn absorb_row(&mut self, row: &PdnsRow) {
        self.first = self.first.min(row.day);
        self.last = self.last.max(row.day);
        if let Err(pos) = self.days.binary_search(&row.day) {
            self.days.insert(pos, row.day);
            self.days_count = self.days.len() as u32;
        }
        self.total += row.cnt;
        match self.rdata.binary_search_by(|(r, _)| r.cmp(&row.rdata)) {
            Ok(pos) => self.rdata[pos].1 += row.cnt,
            Err(pos) => self.rdata.insert(pos, (row.rdata.clone(), row.cnt)),
        }
    }

    fn aggregate(&self) -> FqdnAggregate {
        FqdnAggregate {
            fqdn: self.fqdn.clone(),
            first_seen_all: self.first,
            last_seen_all: self.last,
            days_count: self.days_count,
            total_request_cnt: self.total,
            rdata_dist: self.rdata.clone(),
        }
    }

    fn into_identified(self) -> IdentifiedFunction {
        IdentifiedFunction {
            agg: FqdnAggregate {
                fqdn: self.fqdn.clone(),
                first_seen_all: self.first,
                last_seen_all: self.last,
                days_count: self.days_count,
                total_request_cnt: self.total,
                rdata_dist: self.rdata,
            },
            fqdn: self.fqdn,
            provider: self.provider,
            region: self.region,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Class {
    Function(u32),
    Noise,
}

/// Incremental identification state machine (DESIGN.md §14).
///
/// Feed it rows with [`apply_rows`](Self::apply_rows) (streaming) or
/// whole aggregates with [`absorb_aggregates`](Self::absorb_aggregates)
/// (batch wrappers); materialize an [`IdentificationReport`] at any
/// point. Both paths share the classifier and the report shape, and
/// every aggregate update commutes over rows, so final state depends
/// only on the multiset of rows seen — not batching, ordering, or
/// worker count.
#[derive(Debug)]
pub struct IdentifyEngine {
    workers: usize,
    /// Maintain the fqdn → verdict map. The streaming row path needs it
    /// to route rows and dedupe verdicts; aggregate-fed batch engines
    /// see each fqdn exactly once and skip it (one key clone + map
    /// insert per fqdn, which dominates absorb cost at PDNS scale).
    lookup: bool,
    class: HashMap<Fqdn, Class>,
    states: Vec<FnState>,
    unmatched: u64,
    total_requests: u64,
}

impl IdentifyEngine {
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    pub fn with_workers(workers: usize) -> Self {
        IdentifyEngine {
            workers: workers.max(1),
            lookup: true,
            class: HashMap::new(),
            states: Vec::new(),
            unmatched: 0,
            total_requests: 0,
        }
    }

    /// Batch-mode engine for aggregate-fed pipelines: skips the
    /// fqdn → verdict lookup map, so [`provider_of`](Self::provider_of)
    /// and [`aggregate_of`](Self::aggregate_of) always return `None`
    /// and [`apply_rows`](Self::apply_rows) must not be used. Reports
    /// are identical to a tracking engine fed the same aggregates.
    pub fn batch(workers: usize) -> Self {
        IdentifyEngine {
            lookup: false,
            ..Self::with_workers(workers)
        }
    }

    /// Fold one batch of rows into the engine and return the verdict
    /// deltas, deterministically ordered: `Identified`/`Unmatched` for
    /// first-seen fqdns sorted by fqdn, then one `Evidence` per touched
    /// identified function, sorted by fqdn. Row order *within* the
    /// batch never affects the deltas or the final state.
    pub fn apply_rows(&mut self, rows: &[PdnsRow]) -> Vec<VerdictChange> {
        assert!(
            self.lookup,
            "apply_rows needs the verdict map; use a tracking engine, not IdentifyEngine::batch"
        );
        // New fqdns this batch, sorted so verdict deltas (and state
        // indices) are independent of row order.
        let mut fresh: Vec<&Fqdn> = rows
            .iter()
            .map(|r| &r.fqdn)
            .filter(|f| !self.class.contains_key(*f))
            .collect();
        fresh.sort_unstable();
        fresh.dedup();

        let verdicts: Vec<Option<(ProviderId, Option<String>)>> =
            if fresh.len() >= PAR_CLASSIFY_MIN && self.workers > 1 {
                par_map_named(&fresh, self.workers, "identify/verdicts", |_, f| {
                    classify(f)
                })
            } else {
                fresh.iter().map(|f| classify(f)).collect()
            };

        let mut changes = Vec::new();
        for (fqdn, verdict) in fresh.into_iter().zip(verdicts) {
            match verdict {
                Some((provider, region)) => {
                    let idx = self.states.len() as u32;
                    self.states
                        .push(FnState::new(fqdn.clone(), provider, region.clone()));
                    self.class.insert(fqdn.clone(), Class::Function(idx));
                    changes.push(VerdictChange::Identified {
                        fqdn: fqdn.clone(),
                        provider,
                        region,
                    });
                }
                None => {
                    self.class.insert(fqdn.clone(), Class::Noise);
                    self.unmatched += 1;
                    changes.push(VerdictChange::Unmatched { fqdn: fqdn.clone() });
                }
            }
        }

        let mut touched: Vec<u32> = Vec::new();
        for row in rows {
            if let Some(Class::Function(idx)) = self.class.get(&row.fqdn) {
                self.states[*idx as usize].absorb_row(row);
                self.total_requests += row.cnt;
                touched.push(*idx);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        // Indices are engine-lifetime insertion order; deltas sort by
        // fqdn so consumers see a batching-independent order.
        touched.sort_by(|a, b| {
            self.states[*a as usize]
                .fqdn
                .cmp(&self.states[*b as usize].fqdn)
        });
        for idx in touched {
            let st = &self.states[idx as usize];
            changes.push(VerdictChange::Evidence {
                fqdn: st.fqdn.clone(),
                provider: st.provider,
                total_requests: st.total,
                days_count: st.days_count,
                first_seen: st.first,
                last_seen: st.last,
            });
        }
        changes
    }

    /// Load pre-computed per-fqdn aggregates — the batch fast path.
    /// Classification runs data-parallel over the whole set; no deltas
    /// are emitted (the batch wrappers go straight to the report).
    pub fn absorb_aggregates(&mut self, aggs: Vec<FqdnAggregate>) {
        let verdicts: Vec<Option<(ProviderId, Option<String>)>> =
            par_map_named(&aggs, self.workers, "identify/verdicts", |_, agg| {
                classify(&agg.fqdn)
            });
        for (agg, verdict) in aggs.into_iter().zip(verdicts) {
            self.absorb_classified(agg, verdict);
        }
    }

    /// Absorb one aggregate whose verdict was already computed (via
    /// [`classify_fqdn`]) at the scan site. The fused pipeline's entry
    /// point: each shard worker classifies fqdns while streaming rows
    /// and feeds `(aggregate, verdict)` pairs here, so classification
    /// cost is paid exactly once. Final state is independent of the
    /// order shards land in — `into_report` sorts by fqdn and the
    /// unmatched/total counters are commutative sums.
    pub fn absorb_classified(
        &mut self,
        agg: FqdnAggregate,
        verdict: Option<(ProviderId, Option<String>)>,
    ) {
        match verdict {
            Some((provider, region)) => {
                let idx = self.states.len() as u32;
                self.total_requests += agg.total_request_cnt;
                if self.lookup {
                    self.class.insert(agg.fqdn.clone(), Class::Function(idx));
                }
                self.states
                    .push(FnState::from_aggregate(agg, provider, region));
            }
            None => {
                if self.lookup {
                    self.class.insert(agg.fqdn.clone(), Class::Noise);
                }
                self.unmatched += 1;
            }
        }
    }

    /// Provider of an already-identified fqdn (`None` for noise or
    /// never-seen fqdns). O(1); the daemon uses this to route usage
    /// rows without waiting on the delta stream.
    pub fn provider_of(&self, fqdn: &Fqdn) -> Option<ProviderId> {
        match self.class.get(fqdn) {
            Some(Class::Function(idx)) => Some(self.states[*idx as usize].provider),
            _ => None,
        }
    }

    /// Current §3.2 aggregate of an identified fqdn.
    pub fn aggregate_of(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        match self.class.get(fqdn) {
            Some(Class::Function(idx)) => Some(self.states[*idx as usize].aggregate()),
            _ => None,
        }
    }

    /// Identified functions so far.
    pub fn function_count(&self) -> usize {
        self.states.len()
    }

    /// Distinct non-matching fqdns so far.
    pub fn unmatched_count(&self) -> u64 {
        self.unmatched
    }

    /// Total requests across identified functions so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Materialize the batch-shaped report without consuming the
    /// engine (functions sorted by fqdn, same as the sweep output).
    pub fn report(&self) -> IdentificationReport {
        self.clone_report(self.states.iter().map(|st| st.clone().into_identified()))
    }

    /// Consume the engine into its final report.
    pub fn into_report(self) -> IdentificationReport {
        let unmatched = self.unmatched;
        let total_requests = self.total_requests;
        // Order indices, not states: each ~150-byte function record is
        // then moved into place exactly once. Aggregate-fed engines see
        // one fqdn-sorted run per scanned shard, so detecting the run
        // boundaries and k-way merging costs O(n log k) comparisons
        // instead of a full O(n log n) sort; a row-fed engine's states
        // degrade to many short runs and the merge becomes the sort.
        // Fqdns are unique keys, so no tie-breaking is ever needed.
        let n = self.states.len();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut run_start = 0;
        for i in 1..=n {
            if i == n || self.states[i].fqdn < self.states[i - 1].fqdn {
                runs.push((run_start, i));
                run_start = i;
            }
        }
        let mut order: Vec<u32> = Vec::with_capacity(n);
        if runs.len() <= 1 {
            order.extend(0..n as u32);
        } else {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut cursor: Vec<usize> = runs.iter().map(|&(s, _)| s).collect();
            let mut heap: BinaryHeap<Reverse<(&Fqdn, usize)>> = runs
                .iter()
                .enumerate()
                .map(|(r, &(s, _))| Reverse((&self.states[s].fqdn, r)))
                .collect();
            while let Some(Reverse((_, r))) = heap.pop() {
                order.push(cursor[r] as u32);
                cursor[r] += 1;
                if cursor[r] < runs[r].1 {
                    heap.push(Reverse((&self.states[cursor[r]].fqdn, r)));
                }
            }
        }
        let mut slots: Vec<Option<FnState>> = self.states.into_iter().map(Some).collect();
        let functions: Vec<IdentifiedFunction> = order
            .into_iter()
            .map(|i| slots[i as usize].take().expect("each index appears once"))
            .map(FnState::into_identified)
            .collect();
        IdentificationReport {
            functions,
            unmatched,
            total_requests,
        }
    }

    fn clone_report(
        &self,
        functions: impl Iterator<Item = IdentifiedFunction>,
    ) -> IdentificationReport {
        let mut functions: Vec<IdentifiedFunction> = functions.collect();
        functions.sort_unstable_by(|a, b| a.fqdn.cmp(&b.fqdn));
        IdentificationReport {
            functions,
            unmatched: self.unmatched,
            total_requests: self.total_requests,
        }
    }
}

impl Default for IdentifyEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Scan a PDNS backend and identify all serverless function domains.
pub fn identify_functions<B: PdnsBackend + ?Sized>(pdns: &B) -> IdentificationReport {
    identify_functions_with(pdns, default_workers())
}

/// [`identify_functions`] with an explicit worker count. The result is
/// independent of `workers`: classification is a pure per-fqdn function
/// and the output keeps the backend's sorted-fqdn order.
pub fn identify_functions_with<B: PdnsBackend + ?Sized>(
    pdns: &B,
    workers: usize,
) -> IdentificationReport {
    identify_from_aggregates(pdns.par_aggregates(workers), workers)
}

/// Identify functions from pre-computed per-fqdn aggregates — the
/// columnar fast path. `fw_store::stream_snapshot_aggregates` feeds this
/// directly from snapshot segments without building store tables. A
/// thin wrapper over [`IdentifyEngine`]: loads the aggregates into a
/// fresh engine and materializes its report (functions sorted by fqdn;
/// aggregates pass through verbatim).
pub fn identify_from_aggregates(aggs: Vec<FqdnAggregate>, workers: usize) -> IdentificationReport {
    let mut engine = IdentifyEngine::batch(workers);
    engine.absorb_aggregates(aggs);
    engine.into_report()
}

/// Ablation (DESIGN.md §5.4): identification precision of suffix-only
/// matching vs. the full expressions. Returns `(full_matches,
/// suffix_only_matches)` — the gap is the false-positive surface the
/// Table 1 expressions eliminate.
pub fn suffix_only_ablation<B: PdnsBackend + ?Sized>(pdns: &B) -> (u64, u64) {
    let mut full = 0u64;
    let mut suffix_only = 0u64;
    pdns.for_each_fqdn(&mut |fqdn| {
        if identify(fqdn).is_some() {
            full += 1;
        }
        if all_formats()
            .iter()
            .any(|f| f.provider.dns_identifiable() && fqdn.has_suffix(f.provider.domain_suffix()))
        {
            suffix_only += 1;
        }
    });
    (full, suffix_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Rdata};
    use std::net::Ipv4Addr;

    fn store_with(domains: &[(&str, u64)]) -> PdnsStore {
        let mut s = PdnsStore::new();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 1));
        for (d, cnt) in domains {
            s.observe_count(&Fqdn::parse(d).unwrap(), &ip, DayStamp(19_100), *cnt);
        }
        s
    }

    #[test]
    fn identifies_provider_domains_and_skips_noise() {
        let s = store_with(&[
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 10),
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
            ("mail.google.com", 50),
        ]);
        let report = identify_functions(&s);
        assert_eq!(report.functions.len(), 3);
        assert_eq!(report.unmatched, 2);
        assert_eq!(report.total_requests, 20);
        let per = report.domains_per_provider();
        assert_eq!(per[&ProviderId::Tencent], 1);
        assert_eq!(per[&ProviderId::Google2], 1);
        assert_eq!(per[&ProviderId::Aws], 1);
    }

    #[test]
    fn regions_extracted() {
        let s = store_with(&[("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 1)]);
        let report = identify_functions(&s);
        assert_eq!(report.functions[0].region.as_deref(), Some("ap-guangzhou"));
    }

    #[test]
    fn azure_like_domains_are_not_identified() {
        // Azure is excluded from collection (§3.2): its suffix collides
        // with ordinary web apps.
        let s = store_with(&[("random-blog.azurewebsites.net", 5)]);
        let report = identify_functions(&s);
        assert!(report.functions.is_empty());
        assert_eq!(report.unmatched, 1);
    }

    #[test]
    fn probe_scope_excludes_path_identified() {
        let s = store_with(&[
            ("us-central1-proj.cloudfunctions.net", 9), // Google 1st gen
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),        // Google2
        ]);
        let report = identify_functions(&s);
        assert_eq!(report.functions.len(), 2);
        let scope = report.probe_scope();
        assert_eq!(scope.len(), 1);
        assert!(scope[0].as_str().ends_with("a.run.app"));
    }

    #[test]
    fn suffix_ablation_shows_precision_gap() {
        let s = store_with(&[
            // Valid function.
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 1),
            // Suffix matches, expression rejects (malformed prefix).
            ("www.scf.tencentcs.com", 1),
            ("something.on.aws", 1),
        ]);
        let (full, suffix_only) = suffix_only_ablation(&s);
        assert_eq!(full, 1);
        assert_eq!(suffix_only, 3);
    }

    #[test]
    fn worker_count_invariant() {
        let s = store_with(&[
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 10),
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
        ]);
        let base = identify_functions_with(&s, 1);
        for workers in [3, 8] {
            let got = identify_functions_with(&s, workers);
            assert_eq!(got.unmatched, base.unmatched);
            assert_eq!(got.total_requests, base.total_requests);
            assert_eq!(got.functions.len(), base.functions.len());
            for (a, b) in got.functions.iter().zip(&base.functions) {
                assert_eq!(a.fqdn, b.fqdn);
                assert_eq!(a.provider, b.provider);
                assert_eq!(a.region, b.region);
                assert_eq!(a.agg, b.agg);
            }
        }
    }

    fn rows_of(s: &PdnsStore) -> Vec<PdnsRow> {
        let mut rows = Vec::new();
        s.for_each_row(|fqdn, _rtype, rdata, day, cnt| {
            rows.push(PdnsRow {
                fqdn: fqdn.clone(),
                rdata: rdata.clone(),
                day,
                cnt,
            });
        });
        rows.sort_by(|a, b| (a.day, &a.fqdn).cmp(&(b.day, &b.fqdn)));
        rows
    }

    #[test]
    fn engine_rows_match_batch_sweep() {
        let mut s = store_with(&[
            ("1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com", 10),
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
        ]);
        // Second day + second rdata for one function so day/rdata sets
        // actually accumulate across batches.
        let g2 = Fqdn::parse("myfn-a1b2c3d4e5-uc.a.run.app").unwrap();
        s.observe_count(
            &g2,
            &Rdata::V4(Ipv4Addr::new(203, 0, 113, 9)),
            DayStamp(19_101),
            5,
        );
        let batch_report = identify_functions_with(&s, 1);

        let rows = rows_of(&s);
        // One batch, and row-by-row batches, must both converge on the
        // batch sweep's exact report.
        for batch_size in [rows.len(), 1] {
            let mut engine = IdentifyEngine::with_workers(1);
            for chunk in rows.chunks(batch_size.max(1)) {
                engine.apply_rows(chunk);
            }
            let streamed = engine.into_report();
            assert_eq!(streamed.unmatched, batch_report.unmatched);
            assert_eq!(streamed.total_requests, batch_report.total_requests);
            assert_eq!(streamed.functions.len(), batch_report.functions.len());
            for (a, b) in streamed.functions.iter().zip(&batch_report.functions) {
                assert_eq!(a.fqdn, b.fqdn);
                assert_eq!(a.provider, b.provider);
                assert_eq!(a.region, b.region);
                assert_eq!(a.agg, b.agg);
            }
        }
    }

    #[test]
    fn engine_deltas_fire_once_and_in_fqdn_order() {
        let s = store_with(&[
            ("myfn-a1b2c3d4e5-uc.a.run.app", 7),
            ("x2h5k7m9p1q3.lambda-url.us-east-1.on.aws", 3),
            ("www.example.com", 100),
        ]);
        let rows = rows_of(&s);
        let mut engine = IdentifyEngine::with_workers(1);
        let first = engine.apply_rows(&rows);
        // 2 Identified + 1 Unmatched + 2 Evidence, fqdn-sorted within
        // each group.
        let identified: Vec<_> = first
            .iter()
            .filter_map(|c| match c {
                VerdictChange::Identified { fqdn, .. } => Some(fqdn.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(identified.len(), 2);
        assert!(identified[0] < identified[1]);
        assert_eq!(
            first
                .iter()
                .filter(|c| matches!(c, VerdictChange::Unmatched { .. }))
                .count(),
            1
        );
        let evidence: Vec<_> = first
            .iter()
            .filter_map(|c| match c {
                VerdictChange::Evidence { fqdn, .. } => Some(fqdn.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(evidence, identified);

        // Replaying the same fqdns: no new verdicts, only evidence.
        let again = engine.apply_rows(&rows);
        assert!(again
            .iter()
            .all(|c| matches!(c, VerdictChange::Evidence { .. })));
        let ev = again
            .iter()
            .find_map(|c| match c {
                VerdictChange::Evidence {
                    fqdn,
                    total_requests,
                    ..
                } if fqdn.as_str().ends_with("a.run.app") => Some(*total_requests),
                _ => None,
            })
            .unwrap();
        assert_eq!(ev, 14, "evidence carries cumulative totals");
    }

    #[test]
    fn deterministic_ordering() {
        let s = store_with(&[
            ("zzz-a1b2c3d4e5-uc.a.run.app", 1),
            ("aaa-a1b2c3d4e5-uc.a.run.app", 1),
        ]);
        let report = identify_functions(&s);
        assert!(report.functions[0].fqdn < report.functions[1].fqdn);
    }
}
