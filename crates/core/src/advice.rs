//! Provider-management audit — the §6 recommendations, computed.
//!
//! The paper closes with three recommendations: strengthen abuse
//! supervision, secure the serverless architecture (wildcard DNS,
//! third-party dependencies), and enforce access control by default.
//! This module turns a [`FullReport`] plus the provider catalogue into a
//! structured audit: which provider violates which recommendation, with
//! the measured evidence attached.

use crate::pipeline::FullReport;
use fw_cloud::provider::{spec, IngressArch};
use fw_types::ProviderId;

/// Which §6 recommendation a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recommendation {
    /// §6.1 — strengthen supervision of cloud function abuse.
    StrengthenSupervision,
    /// §6.2 — secure the serverless architecture.
    SecureArchitecture,
    /// §6.3 — enhance access-control requirements.
    EnhanceAccessControl,
}

impl Recommendation {
    pub fn label(self) -> &'static str {
        match self {
            Recommendation::StrengthenSupervision => {
                "Strengthen the supervision of cloud function abuse"
            }
            Recommendation::SecureArchitecture => "Secure the serverless architecture",
            Recommendation::EnhanceAccessControl => "Enhance the requirements of access control",
        }
    }
}

/// One audit finding against one provider.
#[derive(Debug, Clone)]
pub struct AdviceFinding {
    pub provider: ProviderId,
    pub recommendation: Recommendation,
    pub evidence: String,
}

/// Compute the §6 audit from a measured report.
pub fn audit(report: &FullReport) -> Vec<AdviceFinding> {
    let mut findings = Vec::new();

    // §6.1 — supervision: providers hosting detected abuse.
    let mut abused_by_provider: std::collections::HashMap<ProviderId, u64> =
        std::collections::HashMap::new();
    let provider_of: std::collections::HashMap<_, _> = report
        .identification
        .functions
        .iter()
        .map(|f| (&f.fqdn, f.provider))
        .collect();
    for d in &report.abuse.detections {
        if let Some(p) = provider_of.get(&d.fqdn) {
            *abused_by_provider.entry(*p).or_insert(0) += 1;
        }
    }
    for (provider, count) in &abused_by_provider {
        findings.push(AdviceFinding {
            provider: *provider,
            recommendation: Recommendation::StrengthenSupervision,
            evidence: format!(
                "{count} abused function(s) detected on this provider; only {} \
                 flagged by threat intelligence overall",
                report.abuse.ti_flagged
            ),
        });
    }

    // §6.2 — architecture: wildcard DNS that keeps deleted functions
    // resolving, and third-party ingress dependencies.
    for provider in ProviderId::collected() {
        let s = spec(provider);
        if s.wildcard_dns {
            findings.push(AdviceFinding {
                provider,
                recommendation: Recommendation::SecureArchitecture,
                evidence: "wildcard DNS enabled: deleted functions keep resolving to \
                           ingress nodes (the paper recommends removing records on \
                           deletion and restricting resolution to active functions)"
                    .to_string(),
            });
        }
        if let IngressArch::CnameLb {
            third_party_suffix: Some(suffix),
            ..
        } = s.ingress
        {
            findings.push(AdviceFinding {
                provider,
                recommendation: Recommendation::SecureArchitecture,
                evidence: format!(
                    "ingress depends on third-party infrastructure ({suffix}); \
                     improper management of such dependencies poses security risk"
                ),
            });
        }
    }

    // §6.3 — access control: measured 401 share vs. sensitive leakage,
    // and providers that default to public access.
    let frac_401 = report.status.frac_status(401);
    for provider in ProviderId::collected() {
        let s = spec(provider);
        if !s.default_auth {
            findings.push(AdviceFinding {
                provider,
                recommendation: Recommendation::EnhanceAccessControl,
                evidence: format!(
                    "function URLs default to publicly accessible; measured 401 share \
                     across the ecosystem is only {:.2}% while {} sensitive item(s) \
                     were exposed in responses",
                    100.0 * frac_401,
                    report.abuse.sensitive_total
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.provider, f.recommendation as u8));
    findings
}

/// Render the audit grouped by recommendation.
pub fn render(findings: &[AdviceFinding]) -> String {
    let mut out = String::new();
    for rec in [
        Recommendation::StrengthenSupervision,
        Recommendation::SecureArchitecture,
        Recommendation::EnhanceAccessControl,
    ] {
        out.push_str(&format!("## {}\n", rec.label()));
        let mut any = false;
        for f in findings.iter().filter(|f| f.recommendation == rec) {
            out.push_str(&format!("  - {}: {}\n", f.provider.label(), f.evidence));
            any = true;
        }
        if !any {
            out.push_str("  - no findings\n");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The structural findings derive from the provider catalogue alone:
    /// check the invariants without running a full pipeline.
    #[test]
    fn structural_audit_invariants() {
        // Build a minimal FullReport via the usage-only path + empty
        // probe data.
        let pdns = fw_dns::pdns::PdnsStore::new();
        let usage = crate::pipeline::Pipeline::run_usage(&pdns);
        let report = FullReport {
            identification: usage.identification,
            new_fqdns: usage.new_fqdns,
            request_series: usage.request_series,
            ingress: usage.ingress,
            invocation: usage.invocation,
            probe_records: Vec::new(),
            status: crate::status::status_report(&[]),
            abuse: crate::abusescan::AbuseScanReport {
                sensitive: Default::default(),
                sensitive_total: 0,
                content_mix: Default::default(),
                clusters: 0,
                corpus_size: 0,
                detections: Vec::new(),
                table3: Vec::new(),
                openai_monthly_requests: vec![0; 24],
                openai_monthly_new: vec![0; 24],
                openai_groups: Vec::new(),
                redirect_targets: Vec::new(),
                ti_flagged: 0,
                ti_total_abused: 0,
            },
        };
        let findings = audit(&report);

        // Every wildcard-DNS provider (all but Tencent) gets an
        // architecture finding.
        let wildcard_findings: Vec<_> = findings
            .iter()
            .filter(|f| {
                f.recommendation == Recommendation::SecureArchitecture
                    && f.evidence.contains("wildcard")
            })
            .map(|f| f.provider)
            .collect();
        assert_eq!(wildcard_findings.len(), 8);
        assert!(!wildcard_findings.contains(&ProviderId::Tencent));

        // Baidu and IBM get third-party-dependency findings.
        for p in [ProviderId::Baidu, ProviderId::Ibm] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.provider == p && f.evidence.contains("third-party")),
                "{p}"
            );
        }

        // Providers without default auth get access-control findings;
        // Aliyun/AWS/Google (enforcing IAM by default, §6) do not.
        for p in [ProviderId::Baidu, ProviderId::Tencent, ProviderId::Kingsoft] {
            assert!(
                findings
                    .iter()
                    .any(|f| f.provider == p
                        && f.recommendation == Recommendation::EnhanceAccessControl),
                "{p}"
            );
        }
        for p in [ProviderId::Aws, ProviderId::Google, ProviderId::Aliyun] {
            assert!(
                !findings
                    .iter()
                    .any(|f| f.provider == p
                        && f.recommendation == Recommendation::EnhanceAccessControl),
                "{p}"
            );
        }

        // Rendering mentions all three sections.
        let text = render(&findings);
        assert!(text.contains("supervision"));
        assert!(text.contains("architecture"));
        assert!(text.contains("access control"));
    }
}
