//! Usage-status analyses (§4): trends, ingress, invocation patterns.
//!
//! Since DESIGN.md §14 the per-row accumulation lives in
//! [`UsageState`], a delta-driven state machine shared by the streaming
//! daemon (one `apply` per routed row) and the batch sweeps (each
//! worker builds a partial state over its function chunk, partials
//! merge commutatively). Both paths finish through the same
//! materializers, so their outputs are identical for the same rows.

use crate::identify::{IdentificationReport, IdentifiedFunction};
use fw_analysis::par::{default_workers, par_map_named};
use fw_analysis::stats;
use fw_dns::pdns::PdnsBackend;
use fw_types::fnv::FnvBuildHasher;
use fw_types::{
    DayStamp, MonthStamp, ProviderId, Rdata, RecordType, MEASUREMENT_END, MEASUREMENT_START,
};
use std::collections::HashMap;
use std::ops::Range;

/// Split `report.functions` into up to `workers` contiguous index
/// ranges for data-parallel per-function sweeps. Contiguous (rather
/// than round-robin) chunks keep each worker on one stretch of the
/// fqdn-sorted function list, which clusters shard-lock reuse in
/// `for_each_record_of`.
fn function_chunks(n: usize, workers: usize) -> Vec<Range<usize>> {
    let w = workers.clamp(1, n.max(1));
    (0..w).map(|i| (n * i / w)..(n * (i + 1) / w)).collect()
}

/// Figure 3/4 series: per-month values for one provider (or the total).
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlySeries {
    pub months: Vec<MonthStamp>,
    /// provider → per-month value; `None` key handled via [`MonthlySeries::total`].
    pub per_provider: HashMap<ProviderId, Vec<u64>>,
}

impl MonthlySeries {
    /// Sum across providers per month.
    pub fn total(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.months.len()];
        for series in self.per_provider.values() {
            for (i, v) in series.iter().enumerate() {
                out[i] += v;
            }
        }
        out
    }

    pub fn for_provider(&self, p: ProviderId) -> Option<&[u64]> {
        self.per_provider.get(&p).map(|v| v.as_slice())
    }
}

fn month_index_of(day: fw_types::DayStamp) -> Option<usize> {
    let start = MEASUREMENT_START.month();
    let m = day.month();
    let idx = (m.year - start.year) * 12 + (m.month as i32 - start.month as i32);
    if idx < 0 {
        return None;
    }
    let idx = idx as usize;
    (idx < 24).then_some(idx)
}

fn window_months() -> Vec<MonthStamp> {
    MEASUREMENT_START
        .month()
        .range_inclusive(MEASUREMENT_END.month())
        .collect()
}

/// Incremental usage accumulator (DESIGN.md §14): per-provider monthly
/// request sums (Figure 4) and per-provider/rtype rdata distributions
/// (Table 2), folded in one row at a time.
///
/// All updates are commutative sums, so states built from any
/// partition and ordering of the same rows [`merge`](Self::merge) to
/// the same result — the property the batch wrappers (per-worker
/// partial states) and the streaming daemon (one long-lived state)
/// both lean on. Tracking is opt-in per table so the batch sweeps
/// don't pay for `rdata.text()` keys they won't read.
#[derive(Debug, Clone)]
pub struct UsageState {
    track_monthly: bool,
    track_ingress: bool,
    n_months: usize,
    monthly: HashMap<ProviderId, Vec<u64>, FnvBuildHasher>,
    /// provider → rtype slot `(A, CNAME, AAAA)` → rdata text → requests.
    ingress: HashMap<ProviderId, [HashMap<String, u64, FnvBuildHasher>; 3], FnvBuildHasher>,
}

impl UsageState {
    /// Track both tables (the streaming daemon's configuration).
    pub fn new() -> Self {
        Self::tracking(true, true)
    }

    /// Track only the monthly request series.
    pub fn monthly_only() -> Self {
        Self::tracking(true, false)
    }

    /// Track only the ingress rdata distributions.
    pub fn ingress_only() -> Self {
        Self::tracking(false, true)
    }

    fn tracking(monthly: bool, ingress: bool) -> Self {
        UsageState {
            track_monthly: monthly,
            track_ingress: ingress,
            n_months: window_months().len(),
            monthly: HashMap::default(),
            ingress: HashMap::default(),
        }
    }

    /// Fold in one row of an *identified* function (routing rows by
    /// verdict is the caller's job; classification is per-fqdn pure, so
    /// streaming and batch route identically).
    pub fn apply(
        &mut self,
        provider: ProviderId,
        rtype: RecordType,
        rdata: &Rdata,
        day: DayStamp,
        cnt: u64,
    ) {
        if self.track_monthly {
            if let Some(idx) = month_index_of(day) {
                self.monthly
                    .entry(provider)
                    .or_insert_with(|| vec![0; self.n_months])[idx] += cnt;
            }
        }
        if self.track_ingress {
            let slot = match rtype {
                RecordType::A => 0,
                RecordType::Cname => 1,
                RecordType::Aaaa => 2,
            };
            let table = &mut self.ingress.entry(provider).or_default()[slot];
            // Borrow the text for the (overwhelmingly common) repeat-key
            // case; allocate the owned key only on first sight.
            rdata.with_text(|text| match table.get_mut(text) {
                Some(requests) => *requests += cnt,
                None => {
                    table.insert(text.to_string(), cnt);
                }
            });
        }
    }

    /// Ensure the provider has an (possibly empty) ingress entry — the
    /// row-scan formulation produced one for every provider with an
    /// identified function, even a function with no stored rows.
    fn touch_ingress(&mut self, provider: ProviderId) {
        if self.track_ingress {
            self.ingress.entry(provider).or_default();
        }
    }

    /// Merge a partial state in (commutative, associative).
    pub fn merge(&mut self, other: UsageState) {
        for (provider, series) in other.monthly {
            match self.monthly.entry(provider) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(series);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (acc, v) in e.get_mut().iter_mut().zip(series) {
                        *acc += v;
                    }
                }
            }
        }
        for (provider, maps) in other.ingress {
            let acc = self.ingress.entry(provider).or_default();
            for (slot, map) in maps.into_iter().enumerate() {
                for (text, cnt) in map {
                    *acc[slot].entry(text).or_insert(0) += cnt;
                }
            }
        }
    }

    /// Materialize the Figure 4 monthly series.
    pub fn monthly_series(&self) -> MonthlySeries {
        // The row-scan formulation only created a provider entry when a
        // row fell inside the measurement window; keep that contract.
        let per_provider: HashMap<ProviderId, Vec<u64>> = self
            .monthly
            .iter()
            .filter(|(_, series)| series.iter().any(|v| *v > 0))
            .map(|(p, series)| (*p, series.clone()))
            .collect();
        MonthlySeries {
            months: window_months(),
            per_provider,
        }
    }

    /// Materialize the Table 2 rows against an identification report
    /// (domain/request/region columns come from the report; the rdata
    /// distribution columns from this state).
    pub fn ingress_rows(&self, report: &IdentificationReport) -> Vec<IngressRow> {
        let mut rows = Vec::new();
        let domains = report.domains_per_provider();
        let requests = report.requests_per_provider();
        for provider in ProviderId::ALL {
            let Some(maps) = self.ingress.get(&provider) else {
                continue;
            };
            let regions: u64 = {
                let mut set: Vec<&str> = report
                    .functions
                    .iter()
                    .filter(|f| f.provider == provider)
                    .filter_map(|f| f.region.as_deref())
                    .collect();
                set.sort_unstable();
                set.dedup();
                set.len() as u64
            };
            let totals: Vec<u64> = maps.iter().map(|m| m.values().sum::<u64>()).collect();
            let grand: u64 = totals.iter().sum();
            let share = |slot: usize| {
                if grand == 0 {
                    0.0
                } else {
                    totals[slot] as f64 / grand as f64
                }
            };
            let per_slot = |slot: usize| -> (u64, f64, f64) {
                // Sorted so the f64 reductions below are a pure function
                // of the count multiset — the HashMap's iteration order
                // (which differs between incremental and swept states)
                // must not leak into the table through float rounding.
                let mut counts: Vec<u64> = maps[slot].values().copied().collect();
                counts.sort_unstable();
                (
                    counts.len() as u64,
                    stats::top_k_share(&counts, 10),
                    stats::entropy_bits(&counts),
                )
            };
            let (c0, t0, e0) = per_slot(0);
            let (c1, t1, e1) = per_slot(1);
            let (c2, t2, e2) = per_slot(2);
            rows.push(IngressRow {
                provider,
                domains: domains.get(&provider).copied().unwrap_or(0),
                total_requests: requests.get(&provider).copied().unwrap_or(0),
                regions,
                rtype_share: (share(0), share(1), share(2)),
                rdata_cnt: (c0, c1, c2),
                top10: (t0, t1, t2),
                entropy_bits: (e0, e1, e2),
            });
        }
        rows
    }
}

impl Default for UsageState {
    fn default() -> Self {
        Self::new()
    }
}

/// Figure 3: newly-observed function fqdns per month (by
/// `first_seen_all`).
pub fn monthly_new_fqdns(report: &IdentificationReport) -> MonthlySeries {
    let months = window_months();
    let mut per_provider: HashMap<ProviderId, Vec<u64>> = HashMap::new();
    for f in &report.functions {
        if let Some(idx) = month_index_of(f.agg.first_seen_all) {
            per_provider
                .entry(f.provider)
                .or_insert_with(|| vec![0; months.len()])[idx] += 1;
        }
    }
    MonthlySeries {
        months,
        per_provider,
    }
}

/// Figure 4: invocation (request) volume per provider per month.
pub fn monthly_requests<B: PdnsBackend + ?Sized>(
    report: &IdentificationReport,
    pdns: &B,
) -> MonthlySeries {
    monthly_requests_with(report, pdns, default_workers())
}

/// [`monthly_requests`] with an explicit worker count. Rather than
/// scanning every row in the store and filtering against an fqdn map,
/// each worker visits only its own functions' rows through
/// [`PdnsBackend::for_each_record_of`]; per-month sums are commutative,
/// so merging the partials is worker-count invariant.
pub fn monthly_requests_with<B: PdnsBackend + ?Sized>(
    report: &IdentificationReport,
    pdns: &B,
    workers: usize,
) -> MonthlySeries {
    let chunks = function_chunks(report.functions.len(), workers);
    let parts: Vec<UsageState> = par_map_named(&chunks, workers, "usage/monthly", |_, range| {
        let mut part = UsageState::monthly_only();
        for f in &report.functions[range.clone()] {
            pdns.for_each_record_of(&f.fqdn, &mut |rtype, rdata, pdate, cnt| {
                part.apply(f.provider, rtype, rdata, pdate, cnt);
            });
        }
        part
    });
    let mut state = UsageState::monthly_only();
    for part in parts {
        state.merge(part);
    }
    state.monthly_series()
}

/// Table 2 row computed from the measured data.
#[derive(Debug, Clone, PartialEq)]
pub struct IngressRow {
    pub provider: ProviderId,
    pub domains: u64,
    pub total_requests: u64,
    /// Distinct region codes seen in domains.
    pub regions: u64,
    /// Per rtype `(A, CNAME, AAAA)`: share of requests.
    pub rtype_share: (f64, f64, f64),
    /// Per rtype: distinct rdata count.
    pub rdata_cnt: (u64, u64, u64),
    /// Per rtype: top-10 concentration.
    pub top10: (f64, f64, f64),
    /// Per rtype: Shannon entropy of the rdata distribution (bits) — the
    /// DESIGN.md concentration-metric ablation.
    pub entropy_bits: (f64, f64, f64),
}

/// Compute Table 2 from the identified functions and the store.
pub fn ingress_table<B: PdnsBackend + ?Sized>(
    report: &IdentificationReport,
    pdns: &B,
) -> Vec<IngressRow> {
    ingress_table_with(report, pdns, default_workers())
}

/// [`ingress_table`] with an explicit worker count. Same sweep shape as
/// [`monthly_requests_with`]: workers visit disjoint function chunks via
/// [`PdnsBackend::for_each_record_of`] and the per-rdata request sums
/// merge commutatively, so the table is worker-count invariant.
pub fn ingress_table_with<B: PdnsBackend + ?Sized>(
    report: &IdentificationReport,
    pdns: &B,
    workers: usize,
) -> Vec<IngressRow> {
    let chunks = function_chunks(report.functions.len(), workers);
    let parts: Vec<UsageState> = par_map_named(&chunks, workers, "usage/ingress", |_, range| {
        let mut part = UsageState::ingress_only();
        for f in &report.functions[range.clone()] {
            part.touch_ingress(f.provider);
            pdns.for_each_record_of(&f.fqdn, &mut |rtype, rdata, pdate, cnt| {
                part.apply(f.provider, rtype, rdata, pdate, cnt);
            });
        }
        part
    });
    let mut state = UsageState::ingress_only();
    for part in parts {
        state.merge(part);
    }
    state.ingress_rows(report)
}

/// Deterministic sample membership for the approximate usage sweep:
/// an fqdn is in the sample iff its FNV-1a hash falls under the rate
/// threshold. Hash-based (rather than RNG-based) selection makes the
/// sample a pure function of the fqdn — identical across worker
/// counts, runs, and machines.
fn in_sample(fqdn: &fw_types::Fqdn, rate: f64) -> bool {
    (fw_types::fnv::fnv1a(fqdn.as_str().as_bytes()) as f64) < rate * (u64::MAX as f64)
}

/// Output of the sampled usage sweep: scaled estimates plus the error
/// accounting that makes the speed/accuracy trade explicit.
#[derive(Debug, Clone)]
pub struct SampledUsage {
    /// Monthly request series, inverse-probability scaled (each cell
    /// multiplied by `scale_factor` and rounded).
    pub monthly: MonthlySeries,
    /// Ingress table over the sampled functions. The concentration
    /// metrics (rtype share, top-10, entropy) are scale-invariant;
    /// `rdata_cnt` is the distinct count *observed in the sample* and
    /// undercounts the full sweep — documented, not corrected.
    pub ingress: Vec<IngressRow>,
    /// Requested sampling rate.
    pub rate: f64,
    pub sampled_functions: u64,
    pub total_functions: u64,
    /// Self-normalized inverse-probability factor `N / n`.
    pub scale_factor: f64,
    /// Estimated grand request total (`scale_factor × sampled total`).
    pub est_total_requests: u64,
    /// Exact grand total, free from the report's aggregates — lets the
    /// caller print the realized error next to the a-priori bound.
    pub exact_total_requests: u64,
    /// Realized relative error of `est_total_requests`.
    pub rel_err_total: f64,
    /// A-priori ±1σ relative error of the total estimator under
    /// simple-random-sampling (finite population correction applied).
    pub rel_std_err: f64,
}

/// Approximate usage sweep (`--sample`): visit only a deterministic
/// hash-selected fraction of the identified functions, scale the
/// additive counts back up, and report both the realized and the
/// predicted error of the estimate. One pass computes both the monthly
/// series and the ingress table. `rate >= 1` degenerates to the exact
/// sweep (factor 1, zero error bound).
pub fn usage_sampled<B: PdnsBackend + ?Sized>(
    report: &IdentificationReport,
    pdns: &B,
    workers: usize,
    rate: f64,
) -> SampledUsage {
    let total_functions = report.functions.len() as u64;
    let exact_total_requests: u64 = report
        .functions
        .iter()
        .map(|f| f.agg.total_request_cnt)
        .sum();
    let sampled: Vec<&IdentifiedFunction> = report
        .functions
        .iter()
        .filter(|f| rate >= 1.0 || in_sample(&f.fqdn, rate))
        .collect();
    let n = sampled.len() as u64;
    let scale_factor = if n == 0 {
        0.0
    } else {
        total_functions as f64 / n as f64
    };

    let chunks = function_chunks(sampled.len(), workers);
    let parts: Vec<UsageState> = par_map_named(&chunks, workers, "usage/sampled", |_, range| {
        let mut part = UsageState::new();
        for f in &sampled[range.clone()] {
            part.touch_ingress(f.provider);
            pdns.for_each_record_of(&f.fqdn, &mut |rtype, rdata, pdate, cnt| {
                part.apply(f.provider, rtype, rdata, pdate, cnt);
            });
        }
        part
    });
    let mut state = UsageState::new();
    for part in parts {
        state.merge(part);
    }

    let mut monthly = state.monthly_series();
    if scale_factor != 1.0 {
        for series in monthly.per_provider.values_mut() {
            for v in series.iter_mut() {
                *v = (*v as f64 * scale_factor).round() as u64;
            }
        }
    }

    // SRS total estimator: T̂ = N·ȳ over per-function request totals,
    // Var(T̂) = N²(1 − n/N)s²/n.
    let totals: Vec<f64> = sampled
        .iter()
        .map(|f| f.agg.total_request_cnt as f64)
        .collect();
    let est_total = if totals.is_empty() {
        0.0
    } else {
        scale_factor * totals.iter().sum::<f64>()
    };
    let rel_std_err = if totals.len() < 2 || est_total == 0.0 || total_functions == 0 {
        0.0
    } else {
        let n_f = totals.len() as f64;
        let big_n = total_functions as f64;
        let mean = totals.iter().sum::<f64>() / n_f;
        let s2 = totals.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / (n_f - 1.0);
        let var = big_n * big_n * (1.0 - n_f / big_n) * s2 / n_f;
        var.sqrt() / est_total
    };
    let rel_err_total = if exact_total_requests == 0 {
        0.0
    } else {
        (est_total - exact_total_requests as f64).abs() / exact_total_requests as f64
    };

    SampledUsage {
        monthly,
        ingress: state.ingress_rows(report),
        rate,
        sampled_functions: n,
        total_functions,
        scale_factor,
        est_total_requests: est_total.round() as u64,
        exact_total_requests,
        rel_err_total,
        rel_std_err,
    }
}

/// Figure 5 + §4.3 statistics over function-identifiable providers.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationReport {
    pub functions: u64,
    /// Fraction with fewer than 5 total requests.
    pub frac_under_5: f64,
    /// Fraction with more than 100 total requests.
    pub frac_over_100: f64,
    /// log10 histogram of request counts (Figure 5 histogram).
    pub log_histogram: Vec<stats::Bin>,
    /// CDF points over log10(requests) (Figure 5 curve).
    pub cdf: Vec<(f64, f64)>,
    /// Lifespan stats (§4.3).
    pub frac_single_day: f64,
    pub frac_under_5_days: f64,
    pub mean_lifespan_days: f64,
    /// Fraction with activity density exactly 1.
    pub frac_density_one: f64,
    /// Functions active across the whole 730/731-day window.
    pub full_window_functions: u64,
}

/// Compute the Figure 5/§4.3 report. Excludes providers whose domains do
/// not map to single functions (Google, IBM, Oracle) — like the paper.
pub fn invocation_report(report: &IdentificationReport) -> InvocationReport {
    let funcs: Vec<&IdentifiedFunction> = report.function_identifiable().collect();
    let n = funcs.len().max(1) as f64;
    let counts: Vec<f64> = funcs
        .iter()
        .map(|f| f.agg.total_request_cnt as f64)
        .collect();
    let lifespans: Vec<f64> = funcs.iter().map(|f| f.agg.lifespan_days() as f64).collect();
    let window = (MEASUREMENT_END - MEASUREMENT_START + 1) as f64;
    InvocationReport {
        functions: funcs.len() as u64,
        frac_under_5: counts.iter().filter(|c| **c < 5.0).count() as f64 / n,
        frac_over_100: counts.iter().filter(|c| **c > 100.0).count() as f64 / n,
        log_histogram: stats::log10_histogram(&counts, 4),
        cdf: stats::cdf_points(&counts.iter().map(|c| c.log10()).collect::<Vec<_>>()),
        frac_single_day: lifespans.iter().filter(|l| **l <= 1.0).count() as f64 / n,
        frac_under_5_days: lifespans.iter().filter(|l| **l < 5.0).count() as f64 / n,
        mean_lifespan_days: stats::mean(&lifespans),
        frac_density_one: funcs
            .iter()
            .filter(|f| (f.agg.activity_density() - 1.0).abs() < 1e-9)
            .count() as f64
            / n,
        full_window_functions: lifespans.iter().filter(|l| **l >= window).count() as u64,
    }
}

/// Resolution-type convenience: does the function's distribution include
/// a given rtype?
pub fn has_rtype(f: &IdentifiedFunction, rtype: RecordType) -> bool {
    f.agg
        .rdata_dist
        .iter()
        .any(|(r, cnt)| r.rtype() == rtype && *cnt > 0)
}

/// Distinct rdata values of one function (Table 2 context, §4.2 "functions
/// within the same region resolve to the same ingress set").
pub fn rdata_values(f: &IdentifiedFunction) -> Vec<&Rdata> {
    f.agg.rdata_dist.iter().map(|(r, _)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::identify_functions;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Fqdn};
    use std::net::Ipv4Addr;

    fn day(n: i64) -> DayStamp {
        MEASUREMENT_START + n
    }

    fn v4(last: u8) -> Rdata {
        Rdata::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    fn store() -> PdnsStore {
        let mut s = PdnsStore::new();
        let aws = Fqdn::parse("abc123.lambda-url.us-east-1.on.aws").unwrap();
        let g2 = Fqdn::parse("myfn-a1b2c3d4e5-uc.a.run.app").unwrap();
        let goog = Fqdn::parse("us-central1-proj.cloudfunctions.net").unwrap();
        // AWS function: 3 requests on one day (month 0).
        s.observe_count(&aws, &v4(1), day(3), 3);
        // Google2 function: requests across two months.
        s.observe_count(&g2, &v4(2), day(10), 60);
        s.observe_count(&g2, &v4(3), day(40), 60);
        // Google (path-identified): excluded from invocation stats.
        s.observe_count(&goog, &v4(4), day(100), 1000);
        // Noise.
        s.observe_count(&Fqdn::parse("www.example.com").unwrap(), &v4(5), day(1), 99);
        s
    }

    #[test]
    fn figure3_new_fqdns_by_month() {
        let s = store();
        let report = identify_functions(&s);
        let series = monthly_new_fqdns(&report);
        assert_eq!(series.months.len(), 24);
        let total = series.total();
        assert_eq!(total[0], 2); // aws + google2 first seen in April 2022
        assert_eq!(total.iter().sum::<u64>(), 3);
        assert_eq!(series.for_provider(ProviderId::Aws).unwrap()[0], 1);
    }

    #[test]
    fn figure4_requests_by_month() {
        let s = store();
        let report = identify_functions(&s);
        let series = monthly_requests(&report, &s);
        let g2 = series.for_provider(ProviderId::Google2).unwrap();
        assert_eq!(g2[0], 60); // April 2022
        assert_eq!(g2[1], 60); // May 2022
                               // Noise (www.example.com) contributes nothing.
        assert_eq!(series.total().iter().sum::<u64>(), 3 + 120 + 1000);
    }

    #[test]
    fn table2_row_fields() {
        let s = store();
        let report = identify_functions(&s);
        let rows = ingress_table(&report, &s);
        let aws = rows.iter().find(|r| r.provider == ProviderId::Aws).unwrap();
        assert_eq!(aws.domains, 1);
        assert_eq!(aws.total_requests, 3);
        assert_eq!(aws.regions, 1);
        assert!((aws.rtype_share.0 - 1.0).abs() < 1e-9);
        assert_eq!(aws.rdata_cnt.0, 1);
        assert!((aws.top10.0 - 1.0).abs() < 1e-9);

        let g2 = rows
            .iter()
            .find(|r| r.provider == ProviderId::Google2)
            .unwrap();
        assert_eq!(g2.rdata_cnt.0, 2); // two distinct A rdata
    }

    #[test]
    fn figure5_invocation_stats_exclude_path_identified() {
        let s = store();
        let report = identify_functions(&s);
        let inv = invocation_report(&report);
        // Only the AWS (3 reqs) and Google2 (120 reqs) functions count.
        assert_eq!(inv.functions, 2);
        assert!((inv.frac_under_5 - 0.5).abs() < 1e-9);
        assert!((inv.frac_over_100 - 0.5).abs() < 1e-9);
        assert!((inv.frac_single_day - 0.5).abs() < 1e-9);
        // AWS lifespan 1 day, Google2 lifespan 31 days → mean 16.
        assert!((inv.mean_lifespan_days - 16.0).abs() < 1e-9);
        // Google2 has 2 active days over a 31-day span → density < 1.
        assert!((inv.frac_density_one - 0.5).abs() < 1e-9);
    }

    #[test]
    fn usage_sweeps_are_worker_count_invariant() {
        let s = store();
        let report = identify_functions(&s);
        let base_months = monthly_requests_with(&report, &s, 1);
        let base_table = ingress_table_with(&report, &s, 1);
        for workers in [3, 8] {
            let months = monthly_requests_with(&report, &s, workers);
            assert_eq!(months.months, base_months.months);
            assert_eq!(months.per_provider, base_months.per_provider);
            let table = ingress_table_with(&report, &s, workers);
            assert_eq!(table.len(), base_table.len());
            for (a, b) in table.iter().zip(&base_table) {
                assert_eq!(a.provider, b.provider);
                assert_eq!(a.total_requests, b.total_requests);
                assert_eq!(a.rdata_cnt, b.rdata_cnt);
                assert_eq!(a.rtype_share, b.rtype_share);
                assert_eq!(a.top10, b.top10);
            }
        }
    }

    #[test]
    fn sampled_sweep_at_full_rate_is_exact() {
        let s = store();
        let report = identify_functions(&s);
        let exact_months = monthly_requests(&report, &s);
        let exact_table = ingress_table(&report, &s);
        let sampled = usage_sampled(&report, &s, 4, 1.0);
        assert_eq!(sampled.sampled_functions, sampled.total_functions);
        assert_eq!(sampled.scale_factor, 1.0);
        assert_eq!(sampled.monthly.per_provider, exact_months.per_provider);
        assert_eq!(sampled.ingress, exact_table);
        assert_eq!(sampled.est_total_requests, sampled.exact_total_requests);
        assert_eq!(sampled.rel_err_total, 0.0);
        assert_eq!(sampled.rel_std_err, 0.0);
    }

    #[test]
    fn sampled_sweep_is_deterministic_and_bounded() {
        let s = store();
        let report = identify_functions(&s);
        let a = usage_sampled(&report, &s, 1, 0.5);
        let b = usage_sampled(&report, &s, 8, 0.5);
        // Hash-threshold membership: identical at any worker count.
        assert_eq!(a.sampled_functions, b.sampled_functions);
        assert_eq!(a.monthly.per_provider, b.monthly.per_provider);
        assert_eq!(a.est_total_requests, b.est_total_requests);
        assert!(a.sampled_functions <= a.total_functions);
        assert_eq!(a.exact_total_requests, 1123);
        assert!(a.rel_std_err >= 0.0);
        // Estimator self-consistency: monthly cells scale with the
        // sample, so the scaled grand total matches the estimate.
        if a.sampled_functions > 0 {
            assert!(a.scale_factor >= 1.0);
        } else {
            assert_eq!(a.est_total_requests, 0);
        }
    }

    #[test]
    fn empty_report_is_safe() {
        let s = PdnsStore::new();
        let report = identify_functions(&s);
        let inv = invocation_report(&report);
        assert_eq!(inv.functions, 0);
        assert!(ingress_table(&report, &s).is_empty());
        assert_eq!(monthly_new_fqdns(&report).total().iter().sum::<u64>(), 0);
    }
}
