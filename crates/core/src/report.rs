//! Text rendering for tables and figures.
//!
//! The figure-regeneration binaries print paper-vs-measured comparisons
//! with these helpers: aligned tables, horizontal ASCII bar charts for
//! the figure series, and TSV output for external plotting.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                out.push(' ');
                out.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out
        };
        let sep = {
            let mut out = String::from("|");
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('|');
            }
            out
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Horizontal ASCII bar chart: one labelled bar per entry, scaled to
/// `width` characters.
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.4}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// TSV series (for external plotting).
pub fn tsv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join("\t");
    out.push('\n');
    for r in rows {
        out.push_str(&r.join("\t"));
        out.push('\n');
    }
    out
}

/// Percent formatting.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Integer with thousands separators.
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Paper-vs-measured comparison line.
pub fn compare(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<46} paper: {paper:>14}   measured: {measured:>14}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Provider", "Domains"]);
        t.row(vec!["Aliyun", "59,404"]);
        t.row(vec!["Baidu", "753"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Provider"));
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["A", "B"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("a".to_string(), 10.0), ("bb".to_string(), 5.0)], 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 20);
        assert_eq!(lines[1].matches('#').count(), 10);
        // Labels padded to equal width.
        assert!(lines[0].starts_with("a  |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(531_089), "531,089");
        assert_eq!(thousands(1_550_000_000), "1,550,000,000");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.8931), "89.31%");
        assert_eq!(pct(0.0013), "0.13%");
    }

    #[test]
    fn tsv_output() {
        let s = tsv(&["month", "count"], &[vec!["2022-04".into(), "10".into()]]);
        assert_eq!(s, "month\tcount\n2022-04\t10\n");
    }
}
