//! # fw-core
//!
//! The paper's measurement pipeline, end to end:
//!
//! * [`identify`] — §3.2: filter passive-DNS fqdns through the Table 1
//!   domain expressions, aggregate per function, extract regions.
//! * [`usage`] — §4: monthly trends (Figures 3/4), ingress architecture
//!   (Table 2), invocation-frequency and lifespan distributions
//!   (Figure 5, §4.3).
//! * [`status`] — §4.4: active-probing outcome distribution (Figure 6).
//! * [`abusescan`] — §5: sensitive-data exclusion (Finding 5), content
//!   typing and clustering (§3.4), dual-rule review, C2 fingerprint scan,
//!   redirect/promo/proxy detection, threat-intel cross-check
//!   (Finding 10) — producing Table 3 and the Figure 7 series.
//! * [`pipeline`] — orchestration: run everything against a world's PDNS
//!   store and simulated network, yielding a [`pipeline::FullReport`].
//! * [`report`] — text rendering (aligned tables, ASCII bar charts, TSV
//!   series) used by the figure-regeneration binaries.
//!
//! The pipeline never reads ground truth: it sees exactly what the
//! paper's authors saw — PDNS tuples and live HTTP responses.

pub mod abusescan;
pub mod advice;
pub mod identify;
pub mod pipeline;
pub mod report;
pub mod status;
pub mod usage;

pub use identify::{
    identify_functions, IdentificationReport, IdentifiedFunction, IdentifyEngine, VerdictChange,
};
pub use pipeline::{FullReport, Pipeline, PipelineConfig};
pub use usage::UsageState;
