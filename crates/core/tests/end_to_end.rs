//! End-to-end pipeline test: generate a world, run the full §3–§5
//! pipeline, score against ground truth and the paper's shapes.

use fw_cloud::behavior::AbuseCase;
use fw_cloud::platform::PlatformConfig;
use fw_core::abusescan::{AbuseScanConfig, DetectionKind};
use fw_core::pipeline::{Pipeline, PipelineConfig};
use fw_probe::prober::ProbeConfig;
use fw_workload::{World, WorldConfig};
use std::time::Duration;

fn world() -> World {
    World::generate(WorldConfig {
        seed: 2024,
        scale: 0.003,
        deploy_live: true,
        wall_clock: false,
        gen_workers: 0,
        platform: PlatformConfig {
            // Hangs must outlast the probe timeout below.
            hang_ms: 400,
            ..PlatformConfig::default()
        },
    })
}

fn config() -> PipelineConfig {
    PipelineConfig {
        probe: ProbeConfig {
            timeout: Duration::from_millis(150),
            workers: 8,
            ..ProbeConfig::default()
        },
        abuse: AbuseScanConfig {
            c2_timeout: Duration::from_millis(300),
            ..AbuseScanConfig::default()
        },
    }
}

#[test]
fn full_pipeline_reproduces_paper_shapes() {
    let w = world();
    let pipeline = Pipeline::new(w.net.clone(), w.resolver.clone());
    let report = pipeline.run(&w.pdns, &config());

    // ---- §3.2 identification: every generated function identified. ----
    assert_eq!(
        report.identification.functions.len(),
        w.functions.len(),
        "identification must find every planted function"
    );
    assert_eq!(report.identification.unmatched, 0);

    // ---- §4.4 / Figure 6 shape. ----
    let status = &report.status;
    assert_eq!(status.probed as usize, w.probed_domains().len());
    // 404 dominates.
    assert!(
        status.frac_status(404) > 0.80,
        "404 share = {}",
        status.frac_status(404)
    );
    // HTTPS is nearly universal.
    assert!(
        status.frac_https() > 0.95,
        "https = {}",
        status.frac_https()
    );
    // Unreachable fraction is small and DNS failures exist (deleted
    // Tencent functions).
    assert!(status.frac_unreachable() < 0.08);
    assert!(status.dns_failures > 0, "deleted Tencent → NXDOMAIN");
    // DNS failures only happen for Tencent domains.
    for rec in &report.probe_records {
        if matches!(rec.outcome, fw_probe::prober::ProbeOutcome::DnsFailure(_)) {
            assert!(
                rec.fqdn.as_str().ends_with("scf.tencentcs.com"),
                "{} had a DNS failure but is not Tencent",
                rec.fqdn
            );
        }
    }

    // ---- §5 abuse detection: perfect recall on planted abuse within the
    // content scope, and zero false positives against ground truth. ----
    let truth: std::collections::HashMap<_, _> = w
        .functions
        .iter()
        .map(|f| (f.fqdn.clone(), f.truth.clone()))
        .collect();

    for d in &report.abuse.detections {
        let t = truth
            .get(&d.fqdn)
            .expect("detection refers to a real function");
        assert!(
            matches!(t, fw_workload::Truth::Abuse(_)),
            "false positive: {} detected as {:?} but truth is {:?}",
            d.fqdn,
            d.kind,
            t
        );
    }

    let detected: std::collections::HashSet<_> = report
        .abuse
        .detections
        .iter()
        .map(|d| d.fqdn.clone())
        .collect();
    let mut missed = Vec::new();
    for f in w.abuse_functions() {
        // Abuse planted on probed providers must be found.
        if f.probed && !detected.contains(&f.fqdn) {
            missed.push((f.fqdn.clone(), f.truth.clone()));
        }
    }
    assert!(missed.is_empty(), "missed planted abuse: {missed:?}");

    // Case-level agreement.
    for case in AbuseCase::ALL {
        let planted = w
            .abuse_functions()
            .filter(|f| f.probed && f.truth.abuse_case() == Some(case))
            .count() as u64;
        let label = match case {
            AbuseCase::C2 => "Hide C2 server",
            AbuseCase::Gambling => "Gambling Website",
            AbuseCase::Porn => "Porn-related Sites",
            AbuseCase::Cheat => "Cheating Tool",
            AbuseCase::Redirect => "Redirect to New Domains",
            AbuseCase::OpenAiResale => "Resale of OpenAI Key",
            AbuseCase::IllegalProxy => "Illegal Service Proxy",
            AbuseCase::GeoProxy => "Geo-bypass Proxy",
        };
        let found = report
            .abuse
            .table3
            .iter()
            .find(|r| r.case == label)
            .map(|r| r.functions)
            .unwrap_or(0);
        assert_eq!(found, planted, "case {label}");
    }

    // C2 hits carry family attribution.
    let c2_families: Vec<&str> = report
        .abuse
        .detections
        .iter()
        .filter_map(|d| match &d.kind {
            DetectionKind::C2 { family } => Some(*family),
            _ => None,
        })
        .collect();
    assert!(!c2_families.is_empty());
    for fam in &c2_families {
        assert!(
            ["CobaltStrike", "InfoStealer"].contains(fam),
            "unexpected family {fam}"
        );
    }

    // ---- Finding 5: sensitive data found and categorized. ----
    assert!(report.abuse.sensitive_total > 0);

    // ---- Finding 10: threat intel flags only (up to) 4, all C2. ----
    assert!(report.abuse.ti_flagged <= 4);
    assert!(report.abuse.ti_flagged <= c2_families.len());

    // ---- Figure 7: resale activity concentrated in early 2023. ----
    let openai = &report.abuse.openai_monthly_requests;
    let wave: u64 = openai[9..=13].iter().sum();
    let total: u64 = openai.iter().sum();
    assert!(total > 0);
    assert!(
        wave as f64 / total as f64 > 0.9,
        "resale volume must concentrate in Jan–May 2023: {openai:?}"
    );

    // ---- Figure 3: AWS April-2022 spike. ----
    let aws_series = report
        .new_fqdns
        .for_provider(fw_types::ProviderId::Aws)
        .expect("aws present");
    let aws_peak = *aws_series.iter().max().unwrap();
    assert_eq!(aws_series[0], aws_peak, "AWS new-function peak at Apr 2022");

    // ---- Table 2: rtype mixes. ----
    let ingress = &report.ingress;
    let aliyun = ingress
        .iter()
        .find(|r| r.provider == fw_types::ProviderId::Aliyun)
        .unwrap();
    assert!(
        aliyun.rtype_share.1 > 0.5,
        "Aliyun is CNAME-dominant: {:?}",
        aliyun.rtype_share
    );
    let aws = ingress
        .iter()
        .find(|r| r.provider == fw_types::ProviderId::Aws)
        .unwrap();
    assert!(aws.rtype_share.0 > 0.5, "AWS is A-dominant");
    assert!(aws.rtype_share.2 > 0.05, "AWS serves AAAA");
    assert_eq!(aws.rtype_share.1, 0.0, "AWS never CNAMEs");
}

#[test]
fn usage_only_pipeline_without_live_network() {
    // PDNS-only worlds skip deployment entirely — the §4 analyses still
    // run (this is the configuration the big usage figures use).
    let w = World::generate(WorldConfig {
        seed: 7,
        scale: 0.004,
        deploy_live: false,
        wall_clock: false,
        gen_workers: 0,
        platform: PlatformConfig::default(),
    });
    let report = Pipeline::run_usage(&w.pdns);
    assert_eq!(report.identification.functions.len(), w.functions.len());

    // Figure 5 anchors at loose tolerance for a small population.
    let inv = &report.invocation;
    assert!(
        (inv.frac_under_5 - 0.7814).abs() < 0.06,
        "under-5 = {}",
        inv.frac_under_5
    );
    assert!(
        (inv.frac_single_day - 0.8130).abs() < 0.06,
        "single-day = {}",
        inv.frac_single_day
    );
    assert!(
        inv.frac_density_one > 0.7,
        "density-1 = {}",
        inv.frac_density_one
    );
    assert!(
        inv.mean_lifespan_days > 5.0 && inv.mean_lifespan_days < 60.0,
        "mean lifespan = {}",
        inv.mean_lifespan_days
    );
}
