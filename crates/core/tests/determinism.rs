//! Worker-count determinism: the CI gate byte-diffs the probing
//! figures, so every parallel stage must produce identical output at
//! any worker count. This test drives the §5 analysis (and through it
//! `par_map_indexed`, `cluster_corpus_par` and
//! `C2Scanner::scan_parallel`) at worker counts {1, 3, 8, 16} against
//! one generated world and asserts the reports are equal field-by-field.

use fw_cloud::platform::PlatformConfig;
use fw_core::abusescan::{abuse_scan, AbuseScanConfig};
use fw_core::pipeline::{Pipeline, PipelineConfig};
use fw_probe::prober::ProbeConfig;
use fw_workload::{World, WorldConfig};
use std::time::Duration;

#[test]
fn abuse_scan_is_identical_at_every_worker_count() {
    let w = World::generate(WorldConfig {
        seed: 2024,
        scale: 0.003,
        deploy_live: true,
        wall_clock: false,
        gen_workers: 0,
        platform: PlatformConfig {
            hang_ms: 400,
            ..PlatformConfig::default()
        },
    });
    let pipeline = Pipeline::new(w.net.clone(), w.resolver.clone());
    let config = PipelineConfig {
        probe: ProbeConfig {
            timeout: Duration::from_millis(150),
            workers: 8,
            ..ProbeConfig::default()
        },
        abuse: AbuseScanConfig {
            c2_timeout: Duration::from_millis(300),
            ..AbuseScanConfig::default()
        },
    };
    let full = pipeline.run(&w.pdns, &config);

    let abuse_at = |workers: usize| {
        abuse_scan(
            &full.probe_records,
            &full.identification,
            &w.pdns,
            &w.net,
            &w.resolver,
            &AbuseScanConfig {
                c2_timeout: Duration::from_millis(300),
                workers,
                ..AbuseScanConfig::default()
            },
        )
    };

    let baseline = abuse_at(1);
    assert!(
        !baseline.detections.is_empty(),
        "world must plant detectable abuse for this test to bite"
    );
    for workers in [3, 8, 16] {
        let report = abuse_at(workers);
        assert_eq!(
            report, baseline,
            "abuse_scan must be schedule-independent (workers={workers})"
        );
    }
}
