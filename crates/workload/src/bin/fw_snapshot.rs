//! Generate a world's PDNS feed and persist it as an fw-store snapshot.
//!
//! ```text
//! fw_snapshot --snapshot-out <dir> [--scale <f64>] [--seed <u64>]
//!             [--shards <n>] [--gen-workers <n>] [--ingest-workers <n>]
//!             [--live] [--metrics]
//! ```
//!
//! The snapshot can then be reopened read-only by any fw-bench figure
//! binary via `--snapshot <dir>`, skipping world generation entirely
//! for the usage-only figures.
//!
//! A default (usage) snapshot matches the feed the usage figures
//! (fig3/4/5, table1/2) generate; `--live` instead generates the live
//! world the probing figures (fig6/7, table3, finding5) use — the two
//! feeds mint different fqdns at the same seed, so pick the flavor
//! matching the binaries you want to replay.

use fw_workload::{World, WorldConfig};
use std::path::PathBuf;
use std::time::Instant;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut scale = 0.1f64;
    let mut seed = 42u64;
    let mut shards = 16usize;
    let mut gen_workers = 0usize;
    let mut ingest_workers = 0usize;
    let mut live = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--snapshot-out" => {
                out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--snapshot-out needs a path")),
                ));
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--shards needs an integer"));
            }
            "--gen-workers" => {
                gen_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--gen-workers needs an integer"));
            }
            "--ingest-workers" => {
                ingest_workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ingest-workers needs an integer"));
            }
            "--live" => live = true,
            "--metrics" => fw_obs::set_enabled(true),
            "--help" | "-h" => {
                eprintln!(
                    "usage: fw_snapshot --snapshot-out <dir> [--scale <f64>] [--seed <u64>] [--shards <n>] [--gen-workers <n>] [--ingest-workers <n>] [--live] [--metrics]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let out = out.unwrap_or_else(|| die("--snapshot-out <dir> is required"));

    let flavor = if live { "live" } else { "PDNS only" };
    eprintln!("generating world: scale {scale} seed {seed} ({flavor})...");
    let gen_start = Instant::now();
    let mut config = if live {
        WorldConfig::live(seed, scale)
    } else {
        WorldConfig::usage(seed, scale)
    };
    config.gen_workers = gen_workers;
    let world = World::generate(config);
    let gen_elapsed = gen_start.elapsed();
    eprintln!(
        "world ready in {:.2?}: {} pdns rows; writing snapshot to {}...",
        gen_elapsed,
        world.pdns.record_count(),
        out.display()
    );

    let save_start = Instant::now();
    let ingest_workers = if ingest_workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        ingest_workers
    };
    match world.save_snapshot_parallel(&out, shards, ingest_workers) {
        Ok(stats) => {
            println!(
                "snapshot: {} fqdns, {} rows, {} shards, seed {}, scale {}",
                stats.fqdns, stats.rows, shards, seed, scale
            );
            eprintln!(
                "saved in {:.2?} (generation took {:.2?})",
                save_start.elapsed(),
                gen_elapsed
            );
        }
        Err(e) => die(&format!("snapshot save failed: {e}")),
    }
    if fw_obs::enabled() {
        eprint!("{}", fw_obs::registry().render_text());
    }
}
