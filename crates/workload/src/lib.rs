//! # fw-workload
//!
//! The calibrated synthetic-world generator — the substitute for the
//! paper's proprietary inputs (the 114DNS passive-DNS feed and the live
//! population of cloud functions on nine commercial providers).
//!
//! [`World::generate`] builds, from a seed and a scale factor:
//!
//! * a simulated internet (`fw-net`) with the nine providers' ingress
//!   deployed on it (`fw-cloud`), live functions included,
//! * a passive-DNS store (`fw-dns::pdns`) holding two years of
//!   daily-aggregated resolution records whose marginals are calibrated
//!   to every number the paper reports (see [`calib`] for the citations),
//! * ground-truth metadata per function ([`WorldFunction`]) so
//!   experiments can score the pipeline's precision/recall — the pipeline
//!   itself never reads the ground truth.

pub mod calib;
mod gen;
pub mod snapshot;

pub use gen::{AbuseCase, BenignClass, FusedWorld, Truth, World, WorldConfig, WorldFunction};
pub use snapshot::{pdns_content_hash, save_pdns, save_pdns_parallel, SnapshotMeta, SnapshotStats};
