//! Calibration constants, each cited to the paper table/figure it
//! reproduces.
//!
//! The synthetic world is generated so that the *measurement pipeline*
//! (`fw-core`) rediscovers these numbers. Population counts scale with
//! `WorldConfig::scale`; distributional targets (mixes, shares) are
//! scale-invariant.

use fw_types::ProviderId;

/// Table 2 row: per-provider population and resolution calibration.
#[derive(Debug, Clone, Copy)]
pub struct ProviderCalib {
    pub provider: ProviderId,
    /// Table 2 "Domains" (full scale).
    pub domains: u64,
    /// Table 2 "All Request" (full scale).
    pub total_requests: u64,
    /// Table 2 rtype request shares `(A, CNAME, AAAA)`; sums to 1.
    pub rtype_share: (f64, f64, f64),
    /// Table 2 `rdata_cnt` per rtype `(A, CNAME, AAAA)` (full scale).
    pub rdata_pool: (u32, u32, u32),
    /// Table 2 "Top10" concentration per rtype (share of requests served
    /// by the ten most frequent rdata values).
    pub top10: (f64, f64, f64),
}

/// Table 2, verbatim.
pub const PROVIDERS: [ProviderCalib; 9] = [
    ProviderCalib {
        provider: ProviderId::Aliyun,
        domains: 59_404,
        total_requests: 440_860_944,
        rtype_share: (0.2796, 0.7204, 0.0),
        rdata_pool: (65, 44, 0),
        top10: (0.9357, 0.9554, 0.0),
    },
    ProviderCalib {
        provider: ProviderId::Baidu,
        domains: 753,
        total_requests: 17_005_075,
        rtype_share: (0.2247, 0.7753, 0.0),
        rdata_pool: (10, 3, 0),
        top10: (1.0, 1.0, 0.0),
    },
    ProviderCalib {
        provider: ProviderId::Tencent,
        domains: 6_154,
        total_requests: 3_024_609,
        rtype_share: (0.2389, 0.7611, 0.0),
        rdata_pool: (35, 36, 0),
        top10: (0.9570, 0.9203, 0.0),
    },
    ProviderCalib {
        provider: ProviderId::Kingsoft,
        domains: 123,
        total_requests: 4_044,
        rtype_share: (1.0, 0.0, 0.0),
        rdata_pool: (4, 0, 0),
        top10: (1.0, 0.0, 0.0),
    },
    ProviderCalib {
        provider: ProviderId::Aws,
        domains: 19_683,
        total_requests: 346_651_678,
        rtype_share: (0.7673, 0.0, 0.2327),
        rdata_pool: (10_914, 0, 17_312),
        top10: (0.0179, 0.0, 0.0214),
    },
    ProviderCalib {
        provider: ProviderId::Google,
        domains: 120_603,
        total_requests: 543_330_521,
        rtype_share: (0.7641, 0.0, 0.2359),
        rdata_pool: (1, 0, 1),
        top10: (1.0, 0.0, 1.0),
    },
    ProviderCalib {
        provider: ProviderId::Google2,
        domains: 324_343,
        total_requests: 199_308_250,
        rtype_share: (0.6675, 0.0, 0.3325),
        rdata_pool: (4, 0, 4),
        top10: (1.0, 0.0, 1.0),
    },
    ProviderCalib {
        provider: ProviderId::Ibm,
        domains: 6,
        total_requests: 107_421,
        rtype_share: (0.1015, 0.8755, 0.0230),
        rdata_pool: (6, 6, 6),
        top10: (1.0, 1.0, 1.0),
    },
    ProviderCalib {
        provider: ProviderId::Oracle,
        domains: 14,
        total_requests: 2_080_577,
        rtype_share: (1.0, 0.0, 0.0),
        rdata_pool: (31, 0, 0),
        top10: (0.5797, 0.0, 0.0),
    },
];

/// Calibration for one provider.
pub fn provider_calib(provider: ProviderId) -> Option<&'static ProviderCalib> {
    PROVIDERS.iter().find(|c| c.provider == provider)
}

/// Abstract: 531,089 function domains across the nine collected
/// providers.
pub const TOTAL_DOMAINS: u64 = 531_089;

// ---- Figure 5 / §4.3: invocation-count mixture ----

/// Fraction of functions invoked fewer than five times (§4.3).
pub const FRACTION_UNDER_5_REQUESTS: f64 = 0.7814;
/// Fraction invoked more than 100 times (§4.3).
pub const FRACTION_OVER_100_REQUESTS: f64 = 0.0787;
/// Figure 5 annotation: 73.51% of functions fall in ≈[3.35, 6.13]
/// requests.
pub const FRACTION_PEAK_3_TO_6: f64 = 0.7351;

/// Invocation mixture: `(weight, lo, hi)` — counts sampled uniformly in
/// `lo..=hi`, tail sampled log-uniformly. Calibrated jointly against the
/// §4.3 anchors: `P(< 5) = w₁ + w₂ = 0.7814` and `P(> 100) = 0.0787`,
/// with the Figure 5 peak bucket (≈3–6 requests) carrying ≈74% mass.
pub const REQUEST_MIXTURE: [(f64, u64, u64); 5] = [
    (0.046, 1, 2),         // one-off tests
    (0.7354, 3, 4),        // bulk of the Figure 5 peak (still < 5)
    (0.030, 5, 6),         // upper half of the peak bucket
    (0.1099, 7, 100),      // moderate
    (0.0787, 101, 80_000), // heavy tail (log-uniform; hi capped per provider)
];

// ---- §4.3: lifespan mixture ----

/// 81.30% of functions active a single day.
pub const FRACTION_SINGLE_DAY: f64 = 0.8130;
/// 83.94% active fewer than five days.
pub const FRACTION_UNDER_5_DAYS: f64 = 0.8394;
/// Mean lifespan target, days.
pub const MEAN_LIFESPAN_DAYS: f64 = 21.44;
/// 83.01% of functions have activity density p = 1.
pub const FRACTION_DENSITY_ONE: f64 = 0.8301;

/// Lifespan mixture: `(weight, lo_days, hi_days, contiguous)`.
/// Contiguous lifespans have p = 1 (active every day).
pub const LIFESPAN_MIXTURE: [(f64, i64, i64, bool); 4] = [
    (0.8130, 1, 1, true),      // single day
    (0.0264, 2, 4, true),      // short continuous
    (0.0866, 5, 120, false),   // intermittent medium
    (0.0740, 121, 730, false), // long-lived intermittent
];

// ---- §4.4 / Figure 6: probe-outcome mix ----

/// 2.03% of probed functions unreachable.
pub const FRACTION_UNREACHABLE: f64 = 0.0203;
/// 19.12% of unreachable are DNS failures (all Tencent).
pub const FRACTION_UNREACHABLE_DNS: f64 = 0.1912;
/// 99.82% of reachable functions supported HTTPS.
pub const FRACTION_HTTPS: f64 = 0.9982;
/// Figure 6 top buckets (share of reachable functions).
pub const FRACTION_404: f64 = 0.8931;
pub const FRACTION_200: f64 = 0.0314;
pub const FRACTION_502: f64 = 0.0282;
pub const FRACTION_401: f64 = 0.0013;
/// AWS's share of all 502 responses (§4.4).
pub const AWS_SHARE_OF_502: f64 = 0.5056;
/// 96.01% of 200s carried a non-empty body.
pub const FRACTION_200_NONEMPTY: f64 = 0.9601;
/// Probed total / content-rich corpus (§4.4, §5).
pub const PAPER_PROBED: u64 = 410_460;
pub const PAPER_CONTENT_RICH: u64 = 12_138;

/// §3.4 content mix over the content-rich corpus.
pub const CONTENT_MIX_JSON: f64 = 0.3698;
pub const CONTENT_MIX_HTML: f64 = 0.3154;
pub const CONTENT_MIX_PLAIN: f64 = 0.3034;
pub const CONTENT_MIX_OTHERS: f64 = 0.0115;

/// §3.4: 4,512 clusters over the 12,138 content-rich responses.
pub const PAPER_CLUSTERS: u64 = 4_512;

// ---- Table 3: abuse inventory (full scale) ----

/// `(case, functions, requests)` rows of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct AbuseCalib {
    pub functions: u64,
    pub requests: u64,
}

pub const ABUSE_C2: AbuseCalib = AbuseCalib {
    functions: 16,
    requests: 273_291,
};
pub const ABUSE_GAMBLING: AbuseCalib = AbuseCalib {
    functions: 194,
    requests: 24_979,
};
pub const ABUSE_PORN: AbuseCalib = AbuseCalib {
    functions: 8,
    requests: 854,
};
pub const ABUSE_CHEAT: AbuseCalib = AbuseCalib {
    functions: 4,
    requests: 11_941,
};
pub const ABUSE_REDIRECT: AbuseCalib = AbuseCalib {
    functions: 23,
    requests: 16_771,
};
pub const ABUSE_OPENAI_RESALE: AbuseCalib = AbuseCalib {
    functions: 243,
    requests: 106_315,
};
pub const ABUSE_ILLEGAL_PROXY: AbuseCalib = AbuseCalib {
    functions: 20,
    requests: 170_195,
};
pub const ABUSE_GEO_PROXY: AbuseCalib = AbuseCalib {
    functions: 86,
    requests: 10_873,
};

/// Table 3 totals: 594 functions. Note: the paper's Table 3 prints a
/// total of 614,219 requests, but its own rows sum to 615,219 — a
/// 1,000-request inconsistency in the paper itself. We carry the row sum;
/// EXPERIMENTS.md reports both.
pub const ABUSE_TOTAL_FUNCTIONS: u64 = 594;
pub const ABUSE_TOTAL_REQUESTS: u64 = 615_219;
pub const ABUSE_TOTAL_REQUESTS_AS_PRINTED: u64 = 614_219;

/// §5.2: gambling sites average 311.39 active days.
pub const GAMBLING_MEAN_ACTIVE_DAYS: f64 = 311.39;
/// §5.3: the largest resale group used one WeChat across 157 functions.
pub const OPENAI_BIGGEST_GROUP: u64 = 157;
/// §5.3: one group of 14 functions sold accounts outright.
pub const OPENAI_ACCOUNT_GROUP: u64 = 14;
/// §5.3: 28 distinct contact handles.
pub const OPENAI_CONTACTS: u64 = 28;
/// §5.4: geo-bypass composition — 61 OpenAI (14 front-ends + 47 relays),
/// 1 GitHub, 4 VPN (+20 unspecified in the 86 total).
pub const GEO_OPENAI_FRONTEND: u64 = 14;
pub const GEO_OPENAI_RELAY: u64 = 47;
pub const GEO_GITHUB: u64 = 1;
pub const GEO_VPN: u64 = 4;

// ---- Finding 5: sensitive-data exposure (item counts, full scale) ----

pub const SENSITIVE_PHONE: u64 = 8;
pub const SENSITIVE_NATIONAL_ID: u64 = 5;
pub const SENSITIVE_TOKEN: u64 = 82;
pub const SENSITIVE_API_KEY: u64 = 156;
pub const SENSITIVE_PASSWORD: u64 = 16;
pub const SENSITIVE_NETWORK_ID: u64 = 127;
/// Finding 5 total: 394 sensitive data items.
pub const SENSITIVE_TOTAL: u64 = 394;

// ---- Figures 3/4/7: timeline events (month index 0 = April 2022) ----

/// Measurement window: 24 months, April 2022 – March 2024.
pub const MONTHS: usize = 24;

/// Month index helpers for the annotated Figure 4 events.
pub const MONTH_AWS_FUNCTION_URL: usize = 0; // Apr 2022 launch spike
pub const MONTH_KINGSOFT_LAUNCH: usize = 4; // Aug 2022
pub const MONTH_TENCENT_LAUNCH: usize = 16; // Aug 2023
pub const MONTH_GOOGLE2_DEFAULT: usize = 16; // Aug 2023
pub const MONTH_TENCENT_TRIAL_CHANGE: usize = 21; // Jan 2024
pub const MONTH_OPENAI_WAVE_START: usize = 9; // Jan 2023 (Fig 7)
pub const MONTH_OPENAI_WAVE_END: usize = 13; // May 2023

/// Relative weight of month `m` for newly-observed functions of
/// `provider` (Figures 3/4 shape).
pub fn first_seen_weight(provider: ProviderId, m: usize) -> f64 {
    debug_assert!(m < MONTHS);
    let base = 1.0 + 0.3 * (m as f64 / (MONTHS - 1) as f64); // mild growth
    match provider {
        ProviderId::Aws => match m {
            0 => 6.0, // function-URL launch (§4.1)
            1 => 2.5,
            2 => 1.5,
            _ => base,
        },
        ProviderId::Kingsoft => {
            if m < MONTH_KINGSOFT_LAUNCH {
                0.0
            } else {
                base
            }
        }
        ProviderId::Tencent => {
            if m < MONTH_TENCENT_LAUNCH {
                0.0
            } else if m >= MONTH_TENCENT_TRIAL_CHANGE {
                0.3 * base // free-trial quota change (§4.1)
            } else {
                base
            }
        }
        ProviderId::Google2 => {
            if m == 0 {
                1.6 // slight post-release spike (released Feb 2022)
            } else if m >= MONTH_GOOGLE2_DEFAULT {
                2.4 * base // became the console default (§4.1)
            } else {
                base
            }
        }
        _ => base,
    }
}

/// Per-day request multiplier for provider activity in month `m`
/// (Figure 4's invocation trends; Tencent's Jan-2024 cliff).
pub fn request_weight(provider: ProviderId, m: usize) -> f64 {
    match provider {
        ProviderId::Tencent if m >= MONTH_TENCENT_TRIAL_CHANGE => 0.2,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_domains_sum_to_abstract_total() {
        let sum: u64 = PROVIDERS.iter().map(|c| c.domains).sum();
        // Table 2 sums to 531,083; the abstract reports 531,089 (six
        // domains of rounding/dedup slack in the paper itself).
        assert!(
            (TOTAL_DOMAINS as i64 - sum as i64).abs() <= 10,
            "sum = {sum}"
        );
    }

    #[test]
    fn probed_count_matches_paper() {
        // §4.4: 410,460 probed = all collected minus the path-identified
        // providers (Google, IBM, Oracle).
        let probed: u64 = PROVIDERS
            .iter()
            .filter(|c| c.provider.function_identifiable())
            .map(|c| c.domains)
            .sum();
        assert_eq!(probed, 410_460);
    }

    #[test]
    fn rtype_shares_sum_to_one() {
        for c in &PROVIDERS {
            let (a, cn, aaaa) = c.rtype_share;
            assert!((a + cn + aaaa - 1.0).abs() < 1e-6, "{}", c.provider);
        }
    }

    #[test]
    fn request_mixture_sums_to_one() {
        let total: f64 = REQUEST_MIXTURE.iter().map(|(w, _, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        // Under-5 mass matches §4.3 exactly.
        let under5: f64 = REQUEST_MIXTURE
            .iter()
            .filter(|(_, _, hi)| *hi < 5)
            .map(|(w, _, _)| w)
            .sum();
        assert!(
            (under5 - FRACTION_UNDER_5_REQUESTS).abs() < 1e-6,
            "{under5}"
        );
        // The 3–6 peak carries roughly the Figure 5 annotation's mass.
        let peak: f64 = REQUEST_MIXTURE
            .iter()
            .filter(|(_, lo, hi)| *lo >= 3 && *hi <= 6)
            .map(|(w, _, _)| w)
            .sum();
        assert!((peak - FRACTION_PEAK_3_TO_6).abs() < 0.05, "{peak}");
        // Over-100 mass matches exactly.
        assert!((REQUEST_MIXTURE[4].0 - FRACTION_OVER_100_REQUESTS).abs() < 1e-9);
    }

    #[test]
    fn lifespan_mixture_sums_to_one() {
        let total: f64 = LIFESPAN_MIXTURE.iter().map(|(w, ..)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((LIFESPAN_MIXTURE[0].0 - FRACTION_SINGLE_DAY).abs() < 1e-9);
        let under5: f64 = LIFESPAN_MIXTURE
            .iter()
            .filter(|(_, _, hi, _)| *hi < 5)
            .map(|(w, ..)| w)
            .sum();
        assert!((under5 - FRACTION_UNDER_5_DAYS).abs() < 1e-6);
    }

    #[test]
    fn abuse_rows_sum_to_table3_totals() {
        let rows = [
            ABUSE_C2,
            ABUSE_GAMBLING,
            ABUSE_PORN,
            ABUSE_CHEAT,
            ABUSE_REDIRECT,
            ABUSE_OPENAI_RESALE,
            ABUSE_ILLEGAL_PROXY,
            ABUSE_GEO_PROXY,
        ];
        assert_eq!(
            rows.iter().map(|r| r.functions).sum::<u64>(),
            ABUSE_TOTAL_FUNCTIONS
        );
        assert_eq!(
            rows.iter().map(|r| r.requests).sum::<u64>(),
            ABUSE_TOTAL_REQUESTS
        );
    }

    #[test]
    fn sensitive_categories_sum_to_total() {
        assert_eq!(
            SENSITIVE_PHONE
                + SENSITIVE_NATIONAL_ID
                + SENSITIVE_TOKEN
                + SENSITIVE_API_KEY
                + SENSITIVE_PASSWORD
                + SENSITIVE_NETWORK_ID,
            SENSITIVE_TOTAL
        );
    }

    #[test]
    fn timeline_weights_respect_launch_dates() {
        assert_eq!(first_seen_weight(ProviderId::Kingsoft, 0), 0.0);
        assert!(first_seen_weight(ProviderId::Kingsoft, 5) > 0.0);
        assert_eq!(first_seen_weight(ProviderId::Tencent, 10), 0.0);
        assert!(first_seen_weight(ProviderId::Tencent, 17) > 0.0);
        // AWS launch spike dominates its steady state.
        assert!(
            first_seen_weight(ProviderId::Aws, 0) > 3.0 * first_seen_weight(ProviderId::Aws, 12)
        );
        // Google2 default-option boost.
        assert!(
            first_seen_weight(ProviderId::Google2, 17)
                > 2.0 * first_seen_weight(ProviderId::Google2, 15)
        );
        // Tencent request cliff.
        assert!(request_weight(ProviderId::Tencent, 21) < 0.5);
        assert_eq!(request_weight(ProviderId::Tencent, 20), 1.0);
        assert_eq!(request_weight(ProviderId::Aws, 21), 1.0);
    }

    #[test]
    fn content_mix_sums_to_one() {
        let total = CONTENT_MIX_JSON + CONTENT_MIX_HTML + CONTENT_MIX_PLAIN + CONTENT_MIX_OTHERS;
        assert!((total - 1.0).abs() < 0.001, "{total}");
    }
}
