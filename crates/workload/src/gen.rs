//! The world generator.
//!
//! Generation order, per provider:
//!
//! 1. decide the population size (`Table 2 × scale`) and carve out the
//!    planted abuse and sensitive-leak functions for that provider;
//! 2. assign every remaining function a benign class from the Figure 6
//!    status-code calibration;
//! 3. deploy live functions on the platform (probed providers only),
//!    letting the platform mint Table 1-shaped domains; PDNS-only
//!    providers (Google 1st gen, IBM, Oracle) mint domains locally;
//! 4. sample the temporal profile — first-seen month (Figures 3/4
//!    events), request total (Figure 5 mixture), lifespan and activity
//!    density (§4.3) — under the invariant `days_count ≤ requests`;
//! 5. write daily PDNS rows, splitting each day's count across record
//!    types by the provider's Table 2 rtype mix and drawing rdata from
//!    Zipf-weighted pools sized to the provider's `rdata_cnt`.

use crate::calib;
use fw_abuse::c2::relay_template;
use fw_analysis::par::{default_workers, par_map_named};
use fw_cloud::behavior::{Behavior, LeakItem};
use fw_cloud::formats::format_for;
use fw_cloud::platform::{CloudPlatform, DeploySpec, PlatformConfig};
use fw_cloud::provider::spec;
use fw_dns::pdns::{FqdnAggregate, PdnsBackend, PdnsStore};
use fw_dns::resolver::Resolver;
use fw_net::SimNet;
use fw_store::DiskStore;
use fw_types::{DayStamp, Fqdn, MonthStamp, ProviderId, Rdata, MEASUREMENT_START};
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Abuse ground truth reuses the platform's behaviour labels.
pub use fw_cloud::behavior::AbuseCase;

/// Fixed partition width for parallel generation. The function space is
/// always split into this many shards regardless of how many worker
/// threads run them, so the sampled world depends only on the seed —
/// `gen_workers` merely schedules shards and can never change a byte of
/// output. 32 divides evenly across typical core counts and keeps the
/// per-shard population large enough to amortize the merge.
const GEN_SHARDS: usize = 32;

/// What a benign function is planted to do (drives Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenignClass {
    /// 404 on the parameter-free probe (the dominant bucket).
    Gated404,
    Ok200Json,
    Ok200Html,
    Ok200Plain,
    Ok200Other,
    Ok200Empty,
    Auth401,
    Err502,
    /// Deleted before probing: NXDOMAIN on Tencent, 403 on AWS, 404
    /// elsewhere.
    Deleted,
    /// VPC-internal: probe times out.
    Internal,
    /// Benign 302 to a well-known site (review must NOT flag these).
    BenignRedirect,
    /// Minor status buckets (405, 400, 500, 504...).
    Minor(u16),
}

/// Ground truth for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Truth {
    Benign(BenignClass),
    Abuse(AbuseCase),
    /// Benign JSON service leaking sensitive items (kind per item).
    Leak(Vec<&'static str>),
}

impl Truth {
    pub fn abuse_case(&self) -> Option<AbuseCase> {
        match self {
            Truth::Abuse(c) => Some(*c),
            _ => None,
        }
    }
}

/// Ground-truth record for one generated function.
#[derive(Debug, Clone)]
pub struct WorldFunction {
    pub fqdn: Fqdn,
    pub provider: ProviderId,
    pub region: String,
    pub truth: Truth,
    /// In the active-probing scope (§3.3)?
    pub probed: bool,
    /// Deployed live on the platform?
    pub deployed: bool,
    pub first_seen: DayStamp,
    pub last_seen: DayStamp,
    pub days_active: u32,
    pub total_requests: u64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub seed: u64,
    /// Population scale relative to the paper (1.0 = 531k domains).
    pub scale: f64,
    /// Deploy live functions for probing (disable for PDNS-only
    /// experiments, which is much faster).
    pub deploy_live: bool,
    /// Run the world on the real wall clock instead of deterministic
    /// virtual time (the bench binaries' `--wall-clock` escape hatch;
    /// probe outcomes then race real timeouts and may wobble).
    pub wall_clock: bool,
    /// Worker threads for generation (0 = one per available core).
    /// Output is byte-identical at every worker count — see
    /// [`GEN_SHARDS`].
    pub gen_workers: usize,
    pub platform: PlatformConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            scale: 0.1,
            deploy_live: true,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        }
    }
}

impl WorldConfig {
    /// The canonical PDNS-only world: fast, nothing deployed. Usage
    /// (§4) analyses and their snapshots use this shape; the minted
    /// offline domains differ from a live world's deployed ones at the
    /// same seed, so usage and live snapshots are not interchangeable.
    pub fn usage(seed: u64, scale: f64) -> WorldConfig {
        WorldConfig {
            seed,
            scale,
            deploy_live: false,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        }
    }

    /// The canonical live world used by every probing experiment:
    /// functions deployed, with hangs outlasting the probe timeout so
    /// InternalOnly functions show up as timeouts like in the paper.
    pub fn live(seed: u64, scale: f64) -> WorldConfig {
        WorldConfig {
            seed,
            scale,
            deploy_live: true,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig {
                hang_ms: 900,
                ..PlatformConfig::default()
            },
        }
    }

    /// Scale a full-scale population count (≥1 whenever the paper's count
    /// is non-zero).
    pub fn scaled(&self, full: u64) -> u64 {
        if full == 0 {
            return 0;
        }
        ((full as f64 * self.scale).round() as u64).max(1)
    }
}

/// The generated world.
pub struct World {
    pub net: SimNet,
    pub resolver: Arc<RwLock<Resolver>>,
    pub platform: CloudPlatform,
    pub pdns: PdnsStore,
    pub functions: Vec<WorldFunction>,
    pub config: WorldConfig,
}

impl World {
    /// Generate a world. Deterministic for a given config; the
    /// `gen_workers` field only changes wall time, never output.
    pub fn generate(config: WorldConfig) -> World {
        let (net, resolver, platform, pdns, functions) = generate_parts(&config, None);
        World {
            net,
            resolver,
            platform,
            pdns: pdns.expect("in-memory generation yields a store"),
            functions,
            config,
        }
    }

    /// Generate a world streaming its PDNS rows straight into `store`
    /// instead of materializing them in memory — the fused pipeline's
    /// generate→ingest fusion. Samples the exact same world as
    /// [`World::generate`] at the same config (every RNG stream is
    /// untouched by the sink choice): the row multiset landing in
    /// `store` equals `World::generate(config).pdns`, and the returned
    /// functions are element-wise identical. The caller owns sealing
    /// (`flush`/`compact` or per-shard `seal_shard`) afterwards.
    pub fn generate_into(config: WorldConfig, store: &DiskStore) -> FusedWorld {
        let (net, resolver, platform, _none, functions) = generate_parts(&config, Some(store));
        FusedWorld {
            net,
            resolver,
            platform,
            functions,
            config,
        }
    }

    /// Ground-truth abused functions (for experiment scoring).
    pub fn abuse_functions(&self) -> impl Iterator<Item = &WorldFunction> {
        self.functions
            .iter()
            .filter(|f| matches!(f.truth, Truth::Abuse(_)))
    }

    /// Domains in the active probing scope.
    pub fn probed_domains(&self) -> Vec<Fqdn> {
        self.functions
            .iter()
            .filter(|f| f.probed)
            .map(|f| f.fqdn.clone())
            .collect()
    }
}

/// A world generated by [`World::generate_into`]: identical to
/// [`World`] except the PDNS rows live only in the [`DiskStore`] the
/// caller supplied, never as an in-memory [`PdnsStore`]. Dropping that
/// materialization is what lets the fused pipeline run scale 1.0 in a
/// fraction of the staged pipeline's peak RSS.
pub struct FusedWorld {
    pub net: SimNet,
    pub resolver: Arc<RwLock<Resolver>>,
    pub platform: CloudPlatform,
    pub functions: Vec<WorldFunction>,
    pub config: WorldConfig,
}

/// Shared generation engine behind [`World::generate`] (no `disk`) and
/// [`World::generate_into`] (rows stream into `disk`). The sink choice
/// can never change a sampled byte: every RNG draw happens before the
/// row reaches the sink.
fn generate_parts(
    config: &WorldConfig,
    disk: Option<&DiskStore>,
) -> (
    SimNet,
    Arc<RwLock<Resolver>>,
    CloudPlatform,
    Option<PdnsStore>,
    Vec<WorldFunction>,
) {
    let _span = fw_obs::span("gen/world");
    let net = if config.wall_clock {
        SimNet::new_wall(config.seed)
    } else {
        SimNet::new(config.seed)
    };
    let resolver = Arc::new(RwLock::new(Resolver::new()));
    let platform = CloudPlatform::new(
        net.clone(),
        resolver.clone(),
        PlatformConfig {
            seed: config.seed ^ 0x5eed,
            ..config.platform.clone()
        },
    );
    // Provider zones/listeners registered up front in catalogue
    // order, so resolver state doesn't depend on which worker's
    // deploy gets there first.
    if config.deploy_live {
        for c in &calib::PROVIDERS {
            if c.provider.function_identifiable() {
                platform.warm_provider(c.provider);
            }
        }
    }

    let pools = build_pools(config);
    let plan = AbusePlan::build(config);
    let workers = match config.gen_workers {
        0 => default_workers(),
        w => w,
    }
    .clamp(1, GEN_SHARDS);
    fw_obs::counter_add!("fw.gen.workers", workers as u64);

    // Every shard generates its own deterministic slice of each
    // provider's population, then the slices merge in shard order. In
    // fused mode the rows go straight into the shared store (exact-key
    // merge makes the table independent of writer interleaving) and
    // only the functions come back.
    let shards: Vec<usize> = (0..GEN_SHARDS).collect();
    let parts: Vec<(Option<PdnsStore>, Vec<WorldFunction>)> =
        par_map_named(&shards, workers, "gen/worker", |_, shard| {
            let _trace = fw_obs::trace_span_arg("gen/shard", *shard as u64);
            let mut gen = Generator {
                rng: SmallRng::seed_from_u64(fw_types::fnv::stream_seed(
                    config.seed,
                    *shard as u64,
                )),
                sink: GenSink::new(disk),
                functions: Vec::new(),
                platform: &platform,
                config,
                pools: &pools,
            };
            for (p_idx, c) in calib::PROVIDERS.iter().enumerate() {
                gen.generate_provider_shard(c, p_idx, &plan, *shard);
            }
            (gen.sink.into_pdns(), gen.functions)
        });

    let mut pdns = disk.is_none().then(PdnsStore::new);
    let mut functions = Vec::new();
    for (part_pdns, part_functions) in parts {
        if let (Some(dst), Some(src)) = (pdns.as_mut(), part_pdns) {
            dst.absorb(src);
        }
        functions.extend(part_functions);
    }

    // The request-total top-up runs serially over the merged world;
    // its RNG stream is its own, so it sees the same state whatever
    // the worker count was.
    let (pdns, functions) = {
        let mut gen = Generator {
            rng: SmallRng::seed_from_u64(fw_types::fnv::stream_seed(config.seed, 0xF1AA_707A1)),
            sink: match pdns {
                Some(p) => GenSink::Mem(p),
                None => GenSink::new(disk),
            },
            functions,
            platform: &platform,
            config,
            pools: &pools,
        };
        gen.match_provider_totals();
        (gen.sink.into_pdns(), gen.functions)
    };
    fw_obs::counter_add!("fw.gen.shards", GEN_SHARDS as u64);
    fw_obs::counter_add!("fw.gen.functions", functions.len() as u64);
    if let Some(p) = &pdns {
        fw_obs::counter_add!("fw.gen.pdns_rows", p.record_count() as u64);
    }
    (net, resolver, platform, pdns, functions)
}

/// Zipf-weighted rdata pool for one provider/rtype.
struct RdataPool {
    provider: ProviderId,
    is_v6: bool,
    values: Vec<Rdata>,
    cumulative: Vec<f64>,
}

/// Where a [`Generator`] writes its PDNS rows. `Mem` is the staged
/// shape: a private per-shard [`PdnsStore`], merged after generation.
/// `Disk` streams every row into a shared [`DiskStore`] the moment it
/// is sampled, which is the generate→ingest fusion. The two sinks make
/// identical RNG draws, so the sampled world cannot depend on the sink.
enum GenSink<'a> {
    Mem(PdnsStore),
    Disk {
        store: &'a DiskStore,
        /// Fqdns this generator has written at least one row for.
        /// Mirrors the `Mem` uniqueness probe
        /// `records_for(fqdn).is_empty()` exactly: rows only enter a
        /// shard-private store through this generator's
        /// `observe_fqdn_batch`, so local membership is the same predicate —
        /// and, unlike probing the shared store, it cannot see other
        /// shards' rows (which `Mem` mode never could).
        minted: HashSet<Fqdn, fw_types::fnv::FnvBuildHasher>,
    },
}

impl<'a> GenSink<'a> {
    fn new(disk: Option<&'a DiskStore>) -> GenSink<'a> {
        match disk {
            None => GenSink::Mem(PdnsStore::new()),
            Some(store) => GenSink::Disk {
                store,
                minted: HashSet::default(),
            },
        }
    }

    /// Emit one fqdn's rows as a batch: row-for-row equivalent to
    /// observing each `(rdata, day, count)` in iteration order (`Mem`
    /// does exactly that), but `Disk` amortizes the shard lock and
    /// table lookup over the whole batch instead of paying them per
    /// row. Zero counts are skipped on both sinks.
    fn observe_fqdn_batch<'r>(
        &mut self,
        fqdn: &Fqdn,
        rows: impl Iterator<Item = (&'r Rdata, DayStamp, u64)>,
    ) {
        match self {
            GenSink::Mem(pdns) => {
                for (rdata, day, count) in rows {
                    pdns.observe_count(fqdn, rdata, day, count);
                }
            }
            GenSink::Disk { store, minted } => {
                let mut any = false;
                store.observe_rows(fqdn, rows.inspect(|(_, _, c)| any |= *c > 0));
                if any && !minted.contains(fqdn) {
                    minted.insert(fqdn.clone());
                }
            }
        }
    }

    /// Has this generator written any rows for `fqdn`?
    fn fqdn_minted(&self, fqdn: &Fqdn) -> bool {
        match self {
            GenSink::Mem(pdns) => !pdns.records_for(fqdn).is_empty(),
            GenSink::Disk { minted, .. } => minted.contains(fqdn),
        }
    }

    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        match self {
            GenSink::Mem(pdns) => pdns.aggregate(fqdn),
            GenSink::Disk { store, .. } => PdnsBackend::aggregate(*store, fqdn),
        }
    }

    fn into_pdns(self) -> Option<PdnsStore> {
        match self {
            GenSink::Mem(pdns) => Some(pdns),
            GenSink::Disk { .. } => None,
        }
    }
}

struct Generator<'a> {
    rng: SmallRng,
    sink: GenSink<'a>,
    functions: Vec<WorldFunction>,
    platform: &'a CloudPlatform,
    config: &'a WorldConfig,
    /// (provider, rtype-slot 0=A,1=CNAME,2=AAAA) → pool. Shared
    /// read-only across generation shards.
    pools: &'a [RdataPool],
}

// ---- rdata pools (Table 2 rdata_cnt + Top10 concentration) ----

fn build_pools(config: &WorldConfig) -> Vec<RdataPool> {
    let mut pools = Vec::new();
    for (p_idx, c) in calib::PROVIDERS.iter().enumerate() {
        let (a_pool, cname_pool, v6_pool) = c.rdata_pool;
        let theta = zipf_theta(c.provider);
        for (slot, full) in [(0u8, a_pool), (1, cname_pool), (2, v6_pool)] {
            if full == 0 {
                continue;
            }
            let n = scaled_pool(full, config.scale);
            let values: Vec<Rdata> = (0..n)
                .map(|k| match slot {
                    0 => Rdata::V4(pool_v4(p_idx as u8, k)),
                    2 => Rdata::V6(
                        format!("2001:db8:{}:ffff::{:x}", p_idx, k + 1)
                            .parse()
                            .expect("valid v6"),
                    ),
                    _ => {
                        let region =
                            spec(c.provider).regions[k as usize % spec(c.provider).regions.len()];
                        let host = format!("{region}-lb{k}.{}", cname_suffix(c.provider));
                        Rdata::Name(Fqdn::parse(&host).expect("valid cname"))
                    }
                })
                .collect();
            let mut cumulative = Vec::with_capacity(values.len());
            let mut acc = 0.0;
            for rank in 1..=values.len() {
                acc += 1.0 / (rank as f64).powf(theta);
                cumulative.push(acc);
            }
            pools.push(RdataPool {
                provider: c.provider,
                is_v6: slot == 2,
                values,
                cumulative,
            });
        }
    }
    pools
}

impl<'a> Generator<'a> {
    fn pool_position(&self, provider: ProviderId, slot: u8) -> Option<usize> {
        self.pools.iter().position(|p| {
            p.provider == provider
                && match slot {
                    0 => !p.is_v6 && matches!(p.values[0], Rdata::V4(_)),
                    1 => matches!(p.values[0], Rdata::Name(_)),
                    _ => p.is_v6,
                }
        })
    }

    // ---- population ----

    /// Generate one shard's slice of a provider's population: global
    /// function indices `[n·s/32, n·(s+1)/32)`. Planted abuse and leak
    /// functions occupy the low indices (in plan order), benign fills
    /// the rest; which shard owns an index never depends on the worker
    /// count, and all sampling for the slice comes from this shard's
    /// own RNG stream.
    fn generate_provider_shard(
        &mut self,
        c: &calib::ProviderCalib,
        p_idx: usize,
        plan: &AbusePlan,
        shard: usize,
    ) {
        let probed = c.provider.function_identifiable();

        // Carve out planted functions for this provider.
        let abuse: Vec<&PlannedAbuse> = plan
            .entries
            .iter()
            .filter(|e| e.provider == c.provider)
            .collect();
        let leaks: &[Vec<LeakItem>] = if c.provider == plan.leak_provider {
            &plan.leaks
        } else {
            &[]
        };
        let planted = abuse.len() + leaks.len();
        // Planted functions are never dropped, even if the scaled
        // population is smaller than the plan.
        let n = (self.config.scaled(c.domains) as usize).max(planted);

        let lo = n * shard / GEN_SHARDS;
        let hi = n * (shard + 1) / GEN_SHARDS;

        for i in lo..hi {
            let fplan = if i < abuse.len() {
                FunctionPlan::Abuse(abuse[i].clone())
            } else if i < planted {
                FunctionPlan::Leak(leaks[i - abuse.len()].clone())
            } else {
                FunctionPlan::Benign(self.sample_benign_class(c.provider))
            };
            // Deployment entropy is a pure function of (seed, provider,
            // index): the platform's minted domain can't drift with
            // deployment interleaving across workers.
            let entropy = fw_types::fnv::fold(
                fw_types::fnv::stream_seed(self.config.seed, 0xDE_9107),
                ((p_idx as u64) << 32) | i as u64,
            );
            self.generate_function(c, fplan, probed, entropy);
        }
    }

    /// Figure 6 calibrated benign-class roll for one provider.
    fn sample_benign_class(&mut self, provider: ProviderId) -> BenignClass {
        let r: f64 = self.rng.gen();
        // Provider-specific carve-outs first.
        match provider {
            ProviderId::Tencent => {
                // 19.12% of the 2.03% unreachable are Tencent DNS
                // failures; as a fraction of Tencent's own population:
                let tencent_deleted = calib::FRACTION_UNREACHABLE
                    * calib::FRACTION_UNREACHABLE_DNS
                    * calib::PAPER_PROBED as f64
                    / 6_154.0;
                if r < tencent_deleted {
                    return BenignClass::Deleted;
                }
            }
            ProviderId::Aws => {
                // AWS's outsized 502 share (§4.4) and 403-for-deleted.
                let aws_502 =
                    calib::FRACTION_502 * calib::AWS_SHARE_OF_502 * calib::PAPER_PROBED as f64
                        / 19_683.0;
                if r < aws_502 {
                    return BenignClass::Err502;
                }
                if r < aws_502 + 0.02 {
                    return BenignClass::Deleted; // → 403 bucket
                }
            }
            _ => {}
        }
        // Shared table (re-roll for independence from the carve-outs).
        let r: f64 = self.rng.gen();
        let internal = calib::FRACTION_UNREACHABLE * (1.0 - calib::FRACTION_UNREACHABLE_DNS);
        let err502 = if provider == ProviderId::Aws {
            0.0 // handled above
        } else {
            calib::FRACTION_502 * (1.0 - calib::AWS_SHARE_OF_502) * calib::PAPER_PROBED as f64
                / (calib::PAPER_PROBED as f64 - 19_683.0)
        };
        let ok200 = calib::FRACTION_200;
        let mut acc = internal;
        if r < acc {
            return BenignClass::Internal;
        }
        acc += err502;
        if r < acc {
            return BenignClass::Err502;
        }
        acc += calib::FRACTION_401;
        if r < acc {
            return BenignClass::Auth401;
        }
        acc += ok200;
        if r < acc {
            // Inside the 200 bucket: empty vs content mix.
            let r2: f64 = self.rng.gen();
            if r2 > calib::FRACTION_200_NONEMPTY {
                return BenignClass::Ok200Empty;
            }
            let r3: f64 = self.rng.gen();
            return if r3 < calib::CONTENT_MIX_JSON {
                BenignClass::Ok200Json
            } else if r3 < calib::CONTENT_MIX_JSON + calib::CONTENT_MIX_HTML {
                BenignClass::Ok200Html
            } else if r3
                < calib::CONTENT_MIX_JSON + calib::CONTENT_MIX_HTML + calib::CONTENT_MIX_PLAIN
            {
                BenignClass::Ok200Plain
            } else {
                BenignClass::Ok200Other
            };
        }
        // Minor buckets.
        for (p, class) in [
            (0.003, BenignClass::Minor(405)),
            (0.0025, BenignClass::Minor(400)),
            (0.003, BenignClass::Minor(500)),
            (0.0015, BenignClass::Minor(504)),
            (0.001, BenignClass::BenignRedirect),
        ] {
            acc += p;
            if r < acc {
                return class;
            }
        }
        BenignClass::Gated404
    }

    fn generate_function(
        &mut self,
        c: &calib::ProviderCalib,
        plan: FunctionPlan,
        probed: bool,
        entropy: u64,
    ) {
        let provider = c.provider;
        // Region: abuse geo-proxies must sit outside China.
        let region = self.pick_region(provider, &plan);

        // Temporal profile.
        let (first_seen, requests, lifespan, contiguous) = self.temporal(provider, &plan);
        let last_seen = first_seen + (lifespan - 1);
        let days = self.active_days(first_seen, lifespan, contiguous, requests);
        let truth = plan.truth();

        // Live deployment (probed providers only).
        let (fqdn, deployed) = if probed && self.config.deploy_live {
            let behavior = self.behavior_for(&plan, provider);
            let mut dspec = DeploySpec::new(provider, behavior)
                .in_region(&region)
                .with_entropy(entropy);
            if matches!(plan.benign_class(), Some(BenignClass::Auth401)) {
                dspec = dspec.with_auth();
            }
            let deployed = self.platform.deploy(dspec).expect("valid deployment plan");
            if matches!(plan.benign_class(), Some(BenignClass::Deleted)) {
                self.platform.delete(&deployed.fqdn);
            }
            (deployed.fqdn, true)
        } else {
            (self.mint_offline_domain(provider, &region), false)
        };

        // PDNS rows.
        self.write_pdns_rows(provider, &fqdn, &days, requests);

        self.functions.push(WorldFunction {
            fqdn,
            provider,
            region,
            truth,
            probed,
            deployed,
            first_seen,
            last_seen,
            days_active: days.len() as u32,
            total_requests: requests,
        });
    }

    fn pick_region(&mut self, provider: ProviderId, plan: &FunctionPlan) -> String {
        let regions = spec(provider).regions;
        let geo_bypass = matches!(
            plan,
            FunctionPlan::Abuse(PlannedAbuse {
                case: AbuseCase::GeoProxy,
                ..
            })
        );
        for _ in 0..32 {
            let r = regions[self.rng.gen_range(0..regions.len())];
            if !geo_bypass || !fw_abuse::proxy::region_is_china(r) {
                return r.to_string();
            }
        }
        regions[0].to_string()
    }

    /// First-seen day, request total, lifespan, contiguity.
    fn temporal(
        &mut self,
        provider: ProviderId,
        plan: &FunctionPlan,
    ) -> (DayStamp, u64, i64, bool) {
        // Month by Figure 3/4 weights (abuse cases override).
        let month_weights: Vec<f64> = (0..calib::MONTHS)
            .map(|m| self.plan_month_weight(provider, plan, m))
            .collect();
        let month = sample_weighted(&mut self.rng, &month_weights);
        let month_stamp = month_of_index(month);
        let day_in_month = self.rng.gen_range(0..month_stamp.len_days());
        let first_seen = month_stamp.first_day() + day_in_month;

        let requests = match plan {
            FunctionPlan::Abuse(a) => a.requests.max(1),
            _ => self.sample_requests(provider),
        };

        let max_span = (fw_types::MEASUREMENT_END - first_seen + 1).max(1);
        let lifespan = match plan {
            FunctionPlan::Abuse(a) => a.lifespan_days.min(max_span).max(1),
            _ => self.sample_lifespan(requests).min(max_span),
        };
        let contiguous = match plan {
            FunctionPlan::Abuse(_) => true,
            _ => lifespan <= 4,
        };
        (first_seen, requests, lifespan, contiguous)
    }

    fn plan_month_weight(&self, provider: ProviderId, plan: &FunctionPlan, m: usize) -> f64 {
        if let FunctionPlan::Abuse(a) = plan {
            match a.case {
                AbuseCase::OpenAiResale => {
                    // Figure 7: promos appear Jan–May 2023, peaking early.
                    return if (calib::MONTH_OPENAI_WAVE_START..=calib::MONTH_OPENAI_WAVE_END)
                        .contains(&m)
                    {
                        match m - calib::MONTH_OPENAI_WAVE_START {
                            0 => 2.0,
                            1 => 3.0,
                            2 => 2.5,
                            3 => 1.5,
                            _ => 1.0,
                        }
                    } else {
                        0.0
                    };
                }
                AbuseCase::Gambling => {
                    // Long-lived (§5.2): start early in the window.
                    return if m <= 8 { 1.0 } else { 0.0 };
                }
                _ => {}
            }
        }
        calib::first_seen_weight(provider, m)
    }

    /// Figure 5 mixture. The heavy-tail upper bound is capped per
    /// provider (≈2× the provider's Table 2 mean) so that provider totals
    /// stay near their targets; `match_provider_totals` tops up any
    /// deficit afterwards.
    fn sample_requests(&mut self, provider: ProviderId) -> u64 {
        let weights: Vec<f64> = calib::REQUEST_MIXTURE.iter().map(|(w, _, _)| *w).collect();
        let bucket = sample_weighted(&mut self.rng, &weights);
        let (_, lo, hi) = calib::REQUEST_MIXTURE[bucket];
        if bucket == calib::REQUEST_MIXTURE.len() - 1 {
            let c = calib::provider_calib(provider).expect("calibrated provider");
            let avg = (c.total_requests / c.domains.max(1)).max(1);
            let hi = (2 * avg).clamp(lo + 101, hi);
            // Heavy tail: log-uniform.
            let llo = (lo as f64).ln();
            let lhi = (hi as f64).ln();
            self.rng.gen_range(llo..lhi).exp() as u64
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// §4.3 lifespan mixture, constrained by the request count.
    fn sample_lifespan(&mut self, requests: u64) -> i64 {
        if requests < 2 {
            return 1;
        }
        let weights: Vec<f64> = calib::LIFESPAN_MIXTURE.iter().map(|(w, ..)| *w).collect();
        let bucket = sample_weighted(&mut self.rng, &weights);
        let (_, lo, hi, _) = calib::LIFESPAN_MIXTURE[bucket];
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// The set of days with activity. Guarantees first and last day
    /// present and `len ≤ requests`.
    fn active_days(
        &mut self,
        first: DayStamp,
        lifespan: i64,
        contiguous: bool,
        requests: u64,
    ) -> Vec<DayStamp> {
        if lifespan <= 1 || requests < 2 {
            return vec![first];
        }
        let last = first + (lifespan - 1);
        if contiguous {
            let take = lifespan.min(requests as i64);
            // All days when requests allow, else evenly spread with the
            // endpoints pinned.
            if take >= lifespan {
                return (0..lifespan).map(|d| first + d).collect();
            }
        }
        // Intermittent: density × lifespan days, clamped by requests.
        let density: f64 = self.rng.gen_range(0.05..0.9);
        let want = ((lifespan as f64 * density).round() as i64)
            .clamp(2, lifespan)
            .min(requests as i64) as usize;
        let mut days = vec![first, last];
        while days.len() < want {
            let d = first + self.rng.gen_range(1..lifespan - 1).max(1);
            days.push(d);
        }
        days.sort_unstable();
        days.dedup();
        days
    }

    /// Write the daily PDNS rows for one function.
    fn write_pdns_rows(
        &mut self,
        provider: ProviderId,
        fqdn: &Fqdn,
        days: &[DayStamp],
        requests: u64,
    ) {
        let c = calib::provider_calib(provider).expect("calibrated provider");
        debug_assert!(days.len() as u64 <= requests || days.len() == 1);
        // Every active day gets one observation (an active day IS a day
        // with ≥1 query); the remainder is distributed by the Figure 4
        // monthly multipliers (the Tencent Jan-2024 cliff).
        let weights: Vec<f64> = days
            .iter()
            .map(|d| calib::request_weight(provider, month_index(*d)))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let extra = requests.saturating_sub(days.len() as u64);
        let mut per_day: Vec<u64> = vec![1; days.len()];
        let mut allocated = 0u64;
        for (i, w) in weights.iter().enumerate() {
            let share = if i + 1 == days.len() {
                extra - allocated
            } else if wsum > 0.0 {
                ((extra as f64) * w / wsum).floor() as u64
            } else {
                0
            };
            let share = share.min(extra - allocated);
            allocated += share;
            per_day[i] += share;
        }

        let (a_share, cname_share, v6_share) = c.rtype_share;
        // Draw the whole fqdn's rows first (all randomness is consumed
        // here, so batching cannot change a sampled byte), then hand
        // them to the sink as one batch.
        let mut batch: Vec<(usize, usize, DayStamp, u64)> = Vec::with_capacity(days.len());
        for (day, cnt) in days.iter().zip(per_day) {
            // Split across rtypes; clamp so the parts sum exactly to cnt.
            let a_cnt = ((cnt as f64 * a_share).round() as u64).min(cnt);
            let v6_cnt = ((cnt as f64 * v6_share).round() as u64).min(cnt - a_cnt);
            let cname_cnt = cnt - a_cnt - v6_cnt;
            for (slot, sub) in [(0u8, a_cnt), (1, cname_cnt), (2, v6_cnt)] {
                if sub == 0 {
                    continue;
                }
                let Some(pidx) = self.pool_position(provider, slot) else {
                    continue;
                };
                // One rdata draw per day/rtype (a resolver answers from
                // one node for the whole TTL window).
                let total = *self.pools[pidx].cumulative.last().expect("pool non-empty");
                let x = self.rng.gen_range(0.0..total);
                let pool = &self.pools[pidx];
                let idx = pool
                    .cumulative
                    .partition_point(|cum| *cum < x)
                    .min(pool.values.len() - 1);
                batch.push((pidx, idx, *day, sub));
            }
            let _ = cname_share;
        }
        let pools = self.pools;
        self.sink.observe_fqdn_batch(
            fqdn,
            batch
                .iter()
                .map(|&(p, i, day, cnt)| (&pools[p].values[i], day, cnt)),
        );
    }

    /// Boost the heaviest benign functions so per-provider request totals
    /// approach the Table 2 targets: the tail carries the volume, like
    /// the long-running high-demand applications §4.3 describes. Each
    /// boosted function becomes a long-lived hot API (the heaviest one
    /// spans the whole window, reproducing the handful of full-window
    /// functions the paper notes), and its traffic draws fresh ingress
    /// rdata every day — which is what keeps AWS's Top10 concentration
    /// low (Table 2) despite the volume.
    fn match_provider_totals(&mut self) {
        for c in &calib::PROVIDERS {
            let target = (c.total_requests as f64 * self.config.scale) as u64;
            let current: u64 = self
                .functions
                .iter()
                .filter(|f| f.provider == c.provider)
                .map(|f| f.total_requests)
                .sum();
            if current >= target || current == 0 {
                continue;
            }
            let deficit = target - current;

            // The heaviest benign functions, by request count.
            let mut candidates: Vec<usize> = self
                .functions
                .iter()
                .enumerate()
                .filter(|(_, f)| f.provider == c.provider && matches!(f.truth, Truth::Benign(_)))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            candidates.sort_by_key(|i| std::cmp::Reverse(self.functions[*i].total_requests));
            let k = (candidates.len() / 50).clamp(1, 50).min(candidates.len());
            candidates.truncate(k);

            // Rank-weighted shares of the deficit.
            let weights: Vec<f64> = (1..=k).map(|r| 1.0 / (r as f64).sqrt()).collect();
            let wsum: f64 = weights.iter().sum();
            let mut allocated = 0u64;
            for (rank, idx) in candidates.iter().enumerate() {
                let share = if rank + 1 == k {
                    deficit - allocated
                } else {
                    ((deficit as f64) * weights[rank] / wsum) as u64
                };
                let share = share.min(deficit - allocated);
                allocated += share;
                if share == 0 {
                    continue;
                }
                let (fqdn, days, new_first, new_last) = {
                    let f = &self.functions[*idx];
                    // The top function spans the provider's entire
                    // availability window (Tencent/Kingsoft only exist
                    // after their function-URL launches); the rest run
                    // from their first sighting to the window end.
                    let start = if rank == 0 {
                        provider_window_start(c.provider)
                    } else {
                        f.first_seen
                    };
                    let end = fw_types::MEASUREMENT_END;
                    let mut days: Vec<DayStamp> =
                        (0..(end - start + 1)).map(|d| start + d).collect();
                    if days.len() as u64 > share {
                        days.truncate(share.max(1) as usize);
                    }
                    let new_last = *days.last().expect("non-empty");
                    (f.fqdn.clone(), days, start.min(f.first_seen), new_last)
                };
                self.write_pdns_rows(c.provider, &fqdn, &days, share);
                let agg = self.sink.aggregate(&fqdn).expect("rows just written");
                let f = &mut self.functions[*idx];
                f.total_requests += share;
                f.first_seen = new_first.min(agg.first_seen_all);
                f.last_seen = new_last.max(f.last_seen);
                f.days_active = agg.days_count;
            }
        }
    }

    /// Behaviour for a live deployment.
    fn behavior_for(&mut self, plan: &FunctionPlan, provider: ProviderId) -> Behavior {
        match plan {
            FunctionPlan::Benign(class) => self.benign_behavior(*class),
            FunctionPlan::Leak(items) => Behavior::SensitiveLeak {
                service: format!("svc{}", self.rng.gen_range(0..10_000)),
                items: items.clone(),
            },
            FunctionPlan::Abuse(a) => self.abuse_behavior(a, provider),
        }
    }

    fn benign_behavior(&mut self, class: BenignClass) -> Behavior {
        let n = self.rng.gen_range(0..10_000u32);
        match class {
            BenignClass::Gated404 => Behavior::PathGated {
                good_path: format!("/api/v{}/{}", self.rng.gen_range(1..4), n),
            },
            BenignClass::Ok200Json => Behavior::JsonApi {
                service: format!("svc{n}"),
            },
            BenignClass::Ok200Html => Behavior::HtmlPage {
                title: format!("Site {n}"),
            },
            BenignClass::Ok200Plain => Behavior::PlainLog {
                tag: format!("job{n}"),
            },
            BenignClass::Ok200Other => Behavior::ScriptOutput { xml: n % 2 == 0 },
            BenignClass::Ok200Empty => Behavior::EmptyOk,
            // The platform's auth layer produces the 401; behaviour
            // behind it is irrelevant.
            BenignClass::Auth401 => Behavior::JsonApi {
                service: format!("locked{n}"),
            },
            BenignClass::Err502 => Behavior::Crasher,
            BenignClass::Deleted => Behavior::EmptyOk,
            BenignClass::Internal => Behavior::InternalOnly,
            BenignClass::BenignRedirect => Behavior::RedirectHttp {
                location: "https://www.bilibili.com/".to_string(),
            },
            BenignClass::Minor(status) => Behavior::FixedStatus { status },
        }
    }

    fn abuse_behavior(&mut self, a: &PlannedAbuse, _provider: ProviderId) -> Behavior {
        match a.case {
            AbuseCase::C2 => {
                let tpl = relay_template(a.variant as usize);
                Behavior::C2Relay {
                    family: tpl.family.to_string(),
                    trigger_path: tpl.trigger_path,
                    trigger_magic: tpl.trigger_magic,
                    reply: tpl.reply,
                }
            }
            AbuseCase::Gambling => {
                const BRANDS: [&str; 6] = [
                    "LuckyWin",
                    "MegaBet",
                    "GoldJackpot",
                    "SpinKing",
                    "BetRiver",
                    "SlotStar",
                ];
                Behavior::GamblingSite {
                    brand: BRANDS[a.variant as usize % BRANDS.len()].to_string(),
                    campaign: a.variant / 8, // campaign-consistent groups
                }
            }
            AbuseCase::Porn => Behavior::PornSite {
                name: format!("NightTube{}", a.variant),
            },
            AbuseCase::Cheat => Behavior::CheatTool {
                tool: format!("AccountToolbox v{}", a.variant + 1),
            },
            AbuseCase::Redirect => match a.variant % 4 {
                0 => Behavior::RedirectHttp {
                    location: format!("https://fxbtg-trade{}.example-illicit.net/login", a.variant),
                },
                1 => Behavior::RedirectJs {
                    target: format!("http://dlcy{}.zeldalink-like.top/wlxcList.html", a.variant),
                },
                2 => Behavior::RedirectRandomSplice {
                    suffix: format!("rnd{}.example-illicit.xyz", a.variant),
                },
                _ => Behavior::RedirectRandomSelect {
                    urls: vec![
                        format!("https://hidden{}.example-illicit.net/", a.variant),
                        "https://www.bilibili.com/".to_string(),
                    ],
                },
            },
            AbuseCase::OpenAiResale => {
                if a.sells_accounts {
                    Behavior::OpenAiAccountSale {
                        contact: format!("QQ: 8{:08}", 7_700_000 + u64::from(a.group)),
                    }
                } else {
                    Behavior::OpenAiKeyPromo {
                        contact: format!("WeChat: wx_keyshop_{:03}", a.group),
                        key_prefix: "sk-s5S5BoV".to_string(),
                    }
                }
            }
            AbuseCase::IllegalProxy => {
                const SERVICES: [&str; 4] = ["scraper", "ticketmaster", "tiktok", "music"];
                Behavior::IllegalServiceProxy {
                    service: SERVICES[a.variant as usize % SERVICES.len()].to_string(),
                }
            }
            AbuseCase::GeoProxy => match a.variant % 8 {
                0 => Behavior::OpenAiProxyFrontend,
                6 => Behavior::GithubProxy,
                7 => Behavior::VpnProxy,
                _ => Behavior::OpenAiProxyApi,
            },
        }
    }

    /// Mint a Table 1-shaped domain without a live deployment (PDNS-only
    /// providers and `deploy_live = false` worlds).
    fn mint_offline_domain(&mut self, provider: ProviderId, region: &str) -> Fqdn {
        use fw_cloud::formats::UrlParts;
        let format = format_for(provider);
        loop {
            let alphabet: &[u8] = if provider == ProviderId::Aliyun {
                b"abcdefghijklmnopqrstuvwxyz"
            } else {
                b"abcdefghijklmnopqrstuvwxyz0123456789"
            };
            let rand_len = format.random_len.max(8);
            let random: String = (0..rand_len)
                .map(|_| alphabet[self.rng.gen_range(0..alphabet.len())] as char)
                .collect();
            let random = if format.random_len > 0 {
                random[..format.random_len].to_string()
            } else {
                random
            };
            let parts = UrlParts {
                fname: format!("fn{}", self.rng.gen_range(0..1_000_000u32)),
                pname: format!("proj{}", self.rng.gen_range(0..1_000_000u32)),
                user_id: format!(
                    "{:010}",
                    self.rng.gen_range(1_250_000_000u64..1_399_999_999)
                ),
                random,
                region: region.to_string(),
            };
            let (fqdn, _) = format.generate(&parts);
            // Uniqueness against everything this generator minted so
            // far (shard-private in both sink modes).
            if !self.sink.fqdn_minted(&fqdn) {
                return fqdn;
            }
        }
    }
}

// ---- abuse planning ----

#[derive(Debug, Clone)]
struct PlannedAbuse {
    case: AbuseCase,
    provider: ProviderId,
    /// Per-case sequence number (brands, campaigns, redirect variants).
    variant: u32,
    /// Contact-group id for resale promos.
    group: u32,
    sells_accounts: bool,
    requests: u64,
    lifespan_days: i64,
}

#[derive(Debug, Clone)]
enum FunctionPlan {
    Benign(BenignClass),
    Abuse(PlannedAbuse),
    Leak(Vec<LeakItem>),
}

impl FunctionPlan {
    fn truth(&self) -> Truth {
        match self {
            FunctionPlan::Benign(c) => Truth::Benign(*c),
            FunctionPlan::Abuse(a) => Truth::Abuse(a.case),
            FunctionPlan::Leak(items) => Truth::Leak(
                items
                    .iter()
                    .map(|i| match i {
                        LeakItem::Phone(_) => "phone",
                        LeakItem::NationalId(_) => "national_id",
                        LeakItem::AccessToken(_) => "token",
                        LeakItem::ApiKey(_) => "api_key",
                        LeakItem::Password(_) => "password",
                        LeakItem::NetworkId(_) => "network_id",
                    })
                    .collect(),
            ),
        }
    }

    fn benign_class(&self) -> Option<BenignClass> {
        match self {
            FunctionPlan::Benign(c) => Some(*c),
            _ => None,
        }
    }
}

struct AbusePlan {
    entries: Vec<PlannedAbuse>,
    leaks: Vec<Vec<LeakItem>>,
    leak_provider: ProviderId,
}

impl AbusePlan {
    fn build(config: &WorldConfig) -> AbusePlan {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xab5e);
        let mut entries = Vec::new();

        let push_case = |case: AbuseCase,
                         calib: calib::AbuseCalib,
                         providers: &[ProviderId],
                         lifespan: &dyn Fn(&mut SmallRng, u32) -> i64,
                         entries: &mut Vec<PlannedAbuse>,
                         rng: &mut SmallRng| {
            let n = config.scaled(calib.functions);
            let budget = (calib.requests as f64 * config.scale).max(1.0) as u64;
            // Random weights for the per-function request split.
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..1.5)).collect();
            let wsum: f64 = weights.iter().sum();
            let mut allocated = 0u64;
            for i in 0..n {
                let req = if i + 1 == n {
                    budget.saturating_sub(allocated).max(1)
                } else {
                    (((budget as f64) * weights[i as usize] / wsum) as u64).max(1)
                };
                allocated += req;
                entries.push(PlannedAbuse {
                    case,
                    provider: providers[i as usize % providers.len()],
                    variant: i as u32,
                    group: 0,
                    sells_accounts: false,
                    requests: req,
                    lifespan_days: lifespan(rng, i as u32),
                });
            }
        };

        // Abuse I — C2: majority Tencent, one Google2 (§5.1); ~112
        // calls/day → lifespan from the per-function budget.
        {
            let n = config.scaled(calib::ABUSE_C2.functions);
            let budget = (calib::ABUSE_C2.requests as f64 * config.scale).max(1.0) as u64;
            let per = (budget / n).max(1);
            for i in 0..n {
                entries.push(PlannedAbuse {
                    case: AbuseCase::C2,
                    // Last one on Google2, rest on Tencent.
                    provider: if i + 1 == n && n > 1 {
                        ProviderId::Google2
                    } else {
                        ProviderId::Tencent
                    },
                    // Cobalt Strike + InfoStealer families (§5.1).
                    variant: (i % 2) as u32,
                    group: 0,
                    sells_accounts: false,
                    requests: per,
                    lifespan_days: ((per / 112).max(7) as i64).min(200),
                });
            }
        }

        // Abuse II — gambling on Google2, long-lived (§5.2: mean 311 d).
        push_case(
            AbuseCase::Gambling,
            calib::ABUSE_GAMBLING,
            &[ProviderId::Google2],
            &|rng, _| rng.gen_range(150..=544),
            &mut entries,
            &mut rng,
        );
        push_case(
            AbuseCase::Porn,
            calib::ABUSE_PORN,
            &[ProviderId::Google2, ProviderId::Aliyun],
            &|rng, _| rng.gen_range(30..=120),
            &mut entries,
            &mut rng,
        );
        push_case(
            AbuseCase::Cheat,
            calib::ABUSE_CHEAT,
            &[ProviderId::Google2],
            &|rng, _| rng.gen_range(60..=300),
            &mut entries,
            &mut rng,
        );

        // Abuse III — redirects: static ones long-lived (§5.3: 152 d
        // mean), dynamic ones 1–2 days.
        push_case(
            AbuseCase::Redirect,
            calib::ABUSE_REDIRECT,
            &[ProviderId::Aliyun, ProviderId::Aws, ProviderId::Google2],
            &|rng, variant| {
                if variant % 4 >= 2 {
                    rng.gen_range(1..=2) // random splice/select
                } else {
                    rng.gen_range(60..=300)
                }
            },
            &mut entries,
            &mut rng,
        );

        // OpenAI resale on Aliyun with contact-group structure (§5.3).
        {
            let n = config.scaled(calib::ABUSE_OPENAI_RESALE.functions);
            let budget =
                (calib::ABUSE_OPENAI_RESALE.requests as f64 * config.scale).max(1.0) as u64;
            let per = (budget / n).max(1);
            let biggest = ((calib::OPENAI_BIGGEST_GROUP as f64
                / calib::ABUSE_OPENAI_RESALE.functions as f64)
                * n as f64)
                .round() as u64;
            let account_sellers = config
                .scaled(calib::OPENAI_ACCOUNT_GROUP)
                .min(n.saturating_sub(biggest));
            let contact_count = config.scaled(calib::OPENAI_CONTACTS).max(2) as u32;
            for i in 0..n {
                let (group, sells_accounts) = if i < biggest {
                    (0u32, false) // the shared-WeChat mega group
                } else if i < biggest + account_sellers {
                    (1, true)
                } else {
                    (
                        2 + (i as u32 % (contact_count.saturating_sub(2).max(1))),
                        false,
                    )
                };
                entries.push(PlannedAbuse {
                    case: AbuseCase::OpenAiResale,
                    provider: ProviderId::Aliyun,
                    variant: i as u32,
                    group,
                    sells_accounts,
                    requests: per,
                    lifespan_days: rng.gen_range(20..=120),
                });
            }
        }

        push_case(
            AbuseCase::IllegalProxy,
            calib::ABUSE_ILLEGAL_PROXY,
            &[ProviderId::Aws, ProviderId::Aliyun],
            &|rng, _| rng.gen_range(30..=300),
            &mut entries,
            &mut rng,
        );
        push_case(
            AbuseCase::GeoProxy,
            calib::ABUSE_GEO_PROXY,
            &[ProviderId::Aws, ProviderId::Google2, ProviderId::Aliyun],
            &|rng, _| rng.gen_range(10..=200),
            &mut entries,
            &mut rng,
        );

        // Finding 5 — sensitive-leak functions on a probed provider.
        let mut items: Vec<LeakItem> = Vec::new();
        let add = |n: u64,
                   make: &dyn Fn(&mut SmallRng, u64) -> LeakItem,
                   rng: &mut SmallRng,
                   items: &mut Vec<LeakItem>| {
            for i in 0..config.scaled(n) {
                items.push(make(rng, i));
            }
        };
        add(
            calib::SENSITIVE_PHONE,
            &|rng, _| {
                LeakItem::Phone(format!(
                    "+861{}{:08}",
                    rng.gen_range(3..=9),
                    rng.gen_range(0..99_999_999u64)
                ))
            },
            &mut rng,
            &mut items,
        );
        add(
            calib::SENSITIVE_NATIONAL_ID,
            &|rng, _| {
                LeakItem::NationalId(format!(
                    "11010519{:02}12310{:02}X",
                    rng.gen_range(10..99),
                    rng.gen_range(10..99)
                ))
            },
            &mut rng,
            &mut items,
        );
        add(
            calib::SENSITIVE_TOKEN,
            &|rng, i| {
                LeakItem::AccessToken(match i % 3 {
                    0 => format!("AKIA{:016X}", rng.gen::<u64>())[..20].to_string(),
                    1 => format!("ghp_{:032x}", rng.gen::<u128>()),
                    _ => format!(
                        "eyJhbGciOiJIUzI1NiJ9.eyJzdWIiOiI{:08x}In0.c2lnbmF0dXJl{:04x}",
                        rng.gen::<u32>(),
                        rng.gen::<u16>()
                    ),
                })
            },
            &mut rng,
            &mut items,
        );
        add(
            calib::SENSITIVE_API_KEY,
            &|rng, _| LeakItem::ApiKey(format!("sk-{:048x}", rng.gen::<u128>())),
            &mut rng,
            &mut items,
        );
        add(
            calib::SENSITIVE_PASSWORD,
            &|rng, _| LeakItem::Password(format!("P@ss{:06}!", rng.gen_range(0..999_999u32))),
            &mut rng,
            &mut items,
        );
        add(
            calib::SENSITIVE_NETWORK_ID,
            &|rng, i| {
                LeakItem::NetworkId(if i % 4 == 0 {
                    format!(
                        "0A:1B:{:02X}:{:02X}:{:02X}:{:02X}",
                        rng.gen::<u8>(),
                        rng.gen::<u8>(),
                        rng.gen::<u8>(),
                        rng.gen::<u8>()
                    )
                } else {
                    format!(
                        "10.{}.{}.{}",
                        rng.gen_range(0..255),
                        rng.gen_range(0..255),
                        rng.gen_range(1..255)
                    )
                })
            },
            &mut rng,
            &mut items,
        );

        // 1–3 items per leaky function.
        let mut leaks: Vec<Vec<LeakItem>> = Vec::new();
        let mut cursor = 0;
        while cursor < items.len() {
            let take = rng.gen_range(1..=3usize).min(items.len() - cursor);
            leaks.push(items[cursor..cursor + take].to_vec());
            cursor += take;
        }

        AbusePlan {
            entries,
            leaks,
            leak_provider: ProviderId::Aliyun,
        }
    }
}

// ---- helpers ----

fn sample_weighted(rng: &mut SmallRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// First day a provider can have observed functions (its launch month's
/// first day — the earliest month with non-zero first-seen weight).
fn provider_window_start(provider: ProviderId) -> DayStamp {
    let m = (0..calib::MONTHS)
        .find(|m| calib::first_seen_weight(provider, *m) > 0.0)
        .unwrap_or(0);
    month_of_index(m).first_day()
}

/// Month index 0 = April 2022.
fn month_of_index(m: usize) -> MonthStamp {
    let mut stamp = MEASUREMENT_START.month();
    for _ in 0..m {
        stamp = stamp.next();
    }
    stamp
}

fn month_index(day: DayStamp) -> usize {
    let m = day.month();
    let start = MEASUREMENT_START.month();
    ((m.year - start.year) * 12 + (m.month as i32 - start.month as i32)).max(0) as usize
}

/// Synthetic PDNS rdata pools: distinct from live ingress for k beyond
/// the live node count, identical for the first few (documented
/// consistency with the platform's address plan).
fn pool_v4(provider_idx: u8, k: u32) -> Ipv4Addr {
    if k < 8 {
        // Matches the live ingress plan's first region block.
        Ipv4Addr::new(203, provider_idx + 1, 0, 10 + k as u8)
    } else {
        Ipv4Addr::new(198, 18 + provider_idx, (k >> 8) as u8, k as u8)
    }
}

fn cname_suffix(provider: ProviderId) -> &'static str {
    match provider {
        ProviderId::Baidu => "ct-ingress.example-telecom.net",
        ProviderId::Ibm => "cdn.example-cloudflare.net",
        _ => provider.domain_suffix(),
    }
}

fn scaled_pool(full: u32, scale: f64) -> u32 {
    ((f64::from(full) * scale).round() as u32).clamp(1, full)
}

fn zipf_theta(provider: ProviderId) -> f64 {
    match provider {
        // Near-uniform across a very large pool (Top10 ≈ 1.8–2.1%).
        ProviderId::Aws => 0.1,
        // Moderately concentrated pool of 31 (Top10 ≈ 58%).
        ProviderId::Oracle => 0.75,
        // Small pools, heavily concentrated (Top10 > 92%).
        _ => 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(WorldConfig {
            seed: 7,
            scale: 0.002,
            deploy_live: true,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        })
    }

    /// Fused generation (rows streamed into a `DiskStore` as sampled)
    /// yields the exact same world as staged generation: identical
    /// function list and identical PDNS aggregates.
    #[test]
    fn generate_into_matches_generate() {
        struct TempDir(std::path::PathBuf);
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        let dir = TempDir(std::env::temp_dir().join(format!(
            "fw-gen-fused-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )));
        let _ = std::fs::remove_dir_all(&dir.0);

        let config = WorldConfig::usage(11, 0.003);
        let staged = World::generate(config.clone());
        let store = DiskStore::create(&dir.0, fw_store::StoreConfig::default()).unwrap();
        let fused = World::generate_into(config, &store);
        store.flush().unwrap();

        assert_eq!(staged.functions.len(), fused.functions.len());
        for (a, b) in staged.functions.iter().zip(&fused.functions) {
            assert_eq!(a.fqdn, b.fqdn);
            assert_eq!(a.truth, b.truth);
            assert_eq!(a.total_requests, b.total_requests);
            assert_eq!(a.first_seen, b.first_seen);
            assert_eq!(a.last_seen, b.last_seen);
            assert_eq!(a.days_active, b.days_active);
        }
        let mem_aggs = staged.pdns.all_aggregates();
        let disk_aggs = store.all_aggregates();
        assert_eq!(mem_aggs.len(), disk_aggs.len());
        for (a, b) in mem_aggs.iter().zip(&disk_aggs) {
            assert_eq!(a.fqdn, b.fqdn);
            assert_eq!(a.total_request_cnt, b.total_request_cnt);
            assert_eq!(a.rdata_dist, b.rdata_dist);
            assert_eq!(
                (a.first_seen_all, a.last_seen_all),
                (b.first_seen_all, b.last_seen_all)
            );
            assert_eq!(a.days_count, b.days_count);
        }
    }

    #[test]
    fn world_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.functions.len(), b.functions.len());
        for (fa, fb) in a.functions.iter().zip(&b.functions) {
            assert_eq!(fa.fqdn, fb.fqdn);
            assert_eq!(fa.total_requests, fb.total_requests);
        }
    }

    #[test]
    fn population_counts_scale() {
        let w = tiny_world();
        let expect: u64 = calib::PROVIDERS
            .iter()
            .map(|c| w.config.scaled(c.domains))
            .sum::<u64>()
            // plus leak functions carved out of Aliyun? No: planted
            // functions replace benign ones, so totals match exactly.
            ;
        assert_eq!(w.functions.len() as u64, expect);
    }

    #[test]
    fn abuse_cases_all_present_with_min_one() {
        let w = tiny_world();
        for case in AbuseCase::ALL {
            let n = w
                .abuse_functions()
                .filter(|f| f.truth.abuse_case() == Some(case))
                .count();
            assert!(n >= 1, "{case:?} missing");
        }
    }

    #[test]
    fn every_function_domain_matches_its_provider_format() {
        let w = tiny_world();
        for f in &w.functions {
            assert!(
                format_for(f.provider).matches(&f.fqdn),
                "{} does not match {} format",
                f.fqdn,
                f.provider
            );
        }
    }

    #[test]
    fn pdns_rows_exist_for_every_function() {
        let w = tiny_world();
        for f in &w.functions {
            let agg = w.pdns.aggregate(&f.fqdn).expect("has pdns rows");
            assert_eq!(agg.total_request_cnt, f.total_requests, "{}", f.fqdn);
            assert_eq!(agg.first_seen_all, f.first_seen, "{}", f.fqdn);
            assert!(agg.days_count as u64 <= f.total_requests, "{}", f.fqdn);
        }
    }

    #[test]
    fn days_within_measurement_window() {
        let w = tiny_world();
        for f in &w.functions {
            assert!(f.first_seen >= MEASUREMENT_START);
            assert!(f.last_seen <= fw_types::MEASUREMENT_END);
            assert!(f.first_seen <= f.last_seen);
        }
    }

    #[test]
    fn probed_scope_excludes_path_identified_providers() {
        let w = tiny_world();
        for f in &w.functions {
            assert_eq!(f.probed, f.provider.function_identifiable(), "{}", f.fqdn);
            if f.probed {
                assert!(f.deployed);
            } else {
                assert!(!f.deployed);
            }
        }
    }

    #[test]
    fn geo_proxies_deploy_outside_china() {
        let w = tiny_world();
        for f in w
            .abuse_functions()
            .filter(|f| f.truth.abuse_case() == Some(AbuseCase::GeoProxy))
        {
            assert!(
                !fw_abuse::proxy::region_is_china(&f.region),
                "{} in {}",
                f.fqdn,
                f.region
            );
        }
    }

    #[test]
    fn c2_relays_sit_on_tencent_plus_one_google2() {
        let w = tiny_world();
        let providers: Vec<ProviderId> = w
            .abuse_functions()
            .filter(|f| f.truth.abuse_case() == Some(AbuseCase::C2))
            .map(|f| f.provider)
            .collect();
        assert!(!providers.is_empty());
        assert!(providers
            .iter()
            .all(|p| matches!(p, ProviderId::Tencent | ProviderId::Google2)));
    }

    #[test]
    fn leak_functions_present() {
        let w = tiny_world();
        let leaks = w
            .functions
            .iter()
            .filter(|f| matches!(f.truth, Truth::Leak(_)))
            .count();
        assert!(leaks >= 1);
    }

    #[test]
    fn tencent_functions_only_appear_after_launch() {
        let w = tiny_world();
        let launch = month_of_index(calib::MONTH_TENCENT_LAUNCH).first_day();
        for f in w
            .functions
            .iter()
            .filter(|f| f.provider == ProviderId::Tencent)
        {
            assert!(f.first_seen >= launch, "{} at {}", f.fqdn, f.first_seen);
        }
    }

    #[test]
    fn single_day_fraction_roughly_matches_calibration() {
        let w = World::generate(WorldConfig {
            seed: 11,
            scale: 0.01,
            deploy_live: false,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        });
        let benign: Vec<&WorldFunction> = w
            .functions
            .iter()
            .filter(|f| matches!(f.truth, Truth::Benign(_)))
            .collect();
        let single = benign
            .iter()
            .filter(|f| f.first_seen == f.last_seen)
            .count() as f64;
        let frac = single / benign.len() as f64;
        assert!(
            (frac - calib::FRACTION_SINGLE_DAY).abs() < 0.05,
            "single-day fraction {frac}"
        );
    }

    #[test]
    fn provider_request_totals_close_to_table2() {
        let w = World::generate(WorldConfig {
            seed: 13,
            scale: 0.01,
            deploy_live: false,
            wall_clock: false,
            gen_workers: 0,
            platform: PlatformConfig::default(),
        });
        for c in &calib::PROVIDERS {
            let total: u64 = w
                .functions
                .iter()
                .filter(|f| f.provider == c.provider)
                .map(|f| f.total_requests)
                .sum();
            let target = (c.total_requests as f64 * w.config.scale) as u64;
            assert!(total >= target, "{}: {total} < target {target}", c.provider);
            assert!(
                (total as f64) < target as f64 * 1.6 + 1_000.0,
                "{}: {total} overshoots target {target}",
                c.provider
            );
        }
    }
}
