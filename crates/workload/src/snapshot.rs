//! Persisting a generated world's PDNS feed as an on-disk snapshot.
//!
//! Generating a calibrated world at scale takes minutes; the PDNS rows
//! it produces are deterministic for a `(seed, scale)` pair. A snapshot
//! materializes those rows into an `fw-store` [`DiskStore`] once, so
//! every figure binary can reopen them read-only (`--snapshot <dir>`)
//! instead of regenerating the world.

use crate::World;
use fw_dns::pdns::PdnsBackend;
use fw_store::{DiskStore, StoreConfig, StoreError};
use std::path::Path;

/// What a snapshot save wrote, for progress reporting.
#[derive(Debug, Clone)]
pub struct SnapshotStats {
    pub fqdns: usize,
    pub rows: usize,
    /// Per-shard ingest/flush accounting from the store that wrote the
    /// snapshot (flush counts, flush wall time, bytes written) — feeds
    /// `pipeline_gate`'s per-shard ingest timings.
    pub shards: Vec<fw_store::ShardIngestStats>,
}

/// Sidecar manifest (`world.meta`) recording which world a snapshot was
/// cut from, so consumers can inherit the seed/scale instead of the
/// caller having to repeat them on every replay invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotMeta {
    pub seed: u64,
    pub scale: f64,
    /// Whether the source world was live-deployed (`WorldConfig::live`)
    /// or PDNS-only (`WorldConfig::usage`); the two flavors mint
    /// different fqdn populations at the same seed.
    pub live: bool,
    /// Commutative content hash of the saved rows (see
    /// [`pdns_content_hash`]); `0` for manifests written before the
    /// field existed. Lets replay consumers check a snapshot matches
    /// its source world without reading every segment.
    pub rows_fnv: u64,
}

/// Order- and merge-insensitive content hash of a PDNS backend: each
/// `(fqdn, rtype, rdata, pdate)` key hashes to an FNV value which is
/// weighted by its count and summed with wrapping addition. Splitting a
/// count across rows (as uncompacted segments do) or visiting rows in a
/// different order cannot change the result, so the in-memory store and
/// any on-disk copy of it hash identically.
pub fn pdns_content_hash<B: PdnsBackend + ?Sized>(pdns: &B) -> u64 {
    let mut h = 0u64;
    pdns.for_each_row(&mut |fqdn, rtype, rdata, pdate, cnt| {
        let mut k = fw_types::fnv::fnv1a(fqdn.as_str().as_bytes());
        k = fw_types::fnv::fold(k, rtype as u64);
        k = rdata.with_text(|text| fw_types::fnv::update(k, text.as_bytes()));
        k = fw_types::fnv::fold(k, pdate.0 as u64);
        h = h.wrapping_add(k.wrapping_mul(cnt));
    });
    h
}

/// File name of the manifest inside a snapshot directory. The store
/// itself only reads the superblock and `shard-*` directories, so the
/// sidecar never interferes with segment I/O.
pub const META_FILE: &str = "world.meta";

impl SnapshotMeta {
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        let text = format!(
            "seed={}\nscale={}\nlive={}\nrows_fnv={:016x}\n",
            self.seed, self.scale, self.live, self.rows_fnv
        );
        std::fs::write(dir.join(META_FILE), text)
    }

    /// Read the manifest; `None` if absent or malformed (snapshots
    /// written by hand via [`save_pdns`] have no manifest).
    pub fn read(dir: &Path) -> Option<SnapshotMeta> {
        let text = std::fs::read_to_string(dir.join(META_FILE)).ok()?;
        let (mut seed, mut scale, mut live, mut rows_fnv) = (None, None, None, None);
        for line in text.lines() {
            match line.split_once('=')? {
                ("seed", v) => seed = v.parse().ok(),
                ("scale", v) => scale = v.parse().ok(),
                ("live", v) => live = v.parse().ok(),
                ("rows_fnv", v) => rows_fnv = u64::from_str_radix(v, 16).ok(),
                _ => {}
            }
        }
        Some(SnapshotMeta {
            seed: seed?,
            scale: scale?,
            live: live?,
            rows_fnv: rows_fnv.unwrap_or(0),
        })
    }
}

/// Persist any PDNS backend into a fresh [`DiskStore`] at `dir`
/// (created; fails if a snapshot already exists there). The store is
/// flushed and compacted so the result is one sorted segment per shard.
pub fn save_pdns<B: PdnsBackend + ?Sized>(
    pdns: &B,
    dir: &Path,
    shards: usize,
) -> Result<SnapshotStats, StoreError> {
    save_pdns_parallel(pdns, dir, shards, 1)
}

/// [`save_pdns`] with `workers` parallel producers feeding the store
/// (each owns a disjoint fqdn set, so the compacted result is
/// byte-identical at every worker count).
pub fn save_pdns_parallel<B: PdnsBackend + ?Sized>(
    pdns: &B,
    dir: &Path,
    shards: usize,
    workers: usize,
) -> Result<SnapshotStats, StoreError> {
    let store = DiskStore::create(
        dir,
        StoreConfig {
            shards,
            ..StoreConfig::default()
        },
    )?;
    store.ingest_parallel(pdns, workers.max(1));
    store.flush()?;
    store.compact()?;
    Ok(SnapshotStats {
        fqdns: store.fqdn_count(),
        rows: store.record_count(),
        shards: store.shard_ingest_stats(),
    })
}

impl World {
    /// Save this world's PDNS store as a reopenable snapshot, with a
    /// [`SnapshotMeta`] manifest recording the source seed/scale.
    pub fn save_snapshot(&self, dir: &Path, shards: usize) -> Result<SnapshotStats, StoreError> {
        self.save_snapshot_parallel(dir, shards, 1)
    }

    /// [`World::save_snapshot`] with parallel ingest producers.
    pub fn save_snapshot_parallel(
        &self,
        dir: &Path,
        shards: usize,
        workers: usize,
    ) -> Result<SnapshotStats, StoreError> {
        let stats = save_pdns_parallel(&self.pdns, dir, shards, workers)?;
        SnapshotMeta {
            seed: self.config.seed,
            scale: self.config.scale,
            live: self.config.deploy_live,
            rows_fnv: pdns_content_hash(&self.pdns),
        }
        .write(dir)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "fw-workload-snap-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_world() -> World {
        World::generate(WorldConfig {
            seed: 7,
            scale: 0.002,
            deploy_live: false,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn snapshot_equals_live_store() {
        let world = tiny_world();
        let dir = TempDir::new();
        let stats = world.save_snapshot(&dir.0, 4).unwrap();
        assert!(stats.fqdns > 0);
        assert_eq!(stats.fqdns, world.pdns.fqdn_count());

        let disk = DiskStore::open_read_only(&dir.0).unwrap();
        assert_eq!(disk.all_aggregates(), world.pdns.all_aggregates());
    }

    #[test]
    fn reopening_is_deterministic() {
        let world = tiny_world();
        let dir = TempDir::new();
        world.save_snapshot(&dir.0, 4).unwrap();
        let a = DiskStore::open_read_only(&dir.0).unwrap().all_aggregates();
        let b = DiskStore::open_read_only(&dir.0).unwrap().all_aggregates();
        assert_eq!(a, b);
    }

    #[test]
    fn manifest_roundtrips_world_identity() {
        let world = tiny_world();
        let dir = TempDir::new();
        world.save_snapshot(&dir.0, 4).unwrap();
        let meta = SnapshotMeta::read(&dir.0).expect("manifest written");
        assert_eq!(
            meta,
            SnapshotMeta {
                seed: 7,
                scale: 0.002,
                live: false,
                rows_fnv: pdns_content_hash(&world.pdns),
            }
        );
        assert_ne!(meta.rows_fnv, 0);
        // The on-disk copy hashes identically despite different row
        // merge boundaries.
        let disk = DiskStore::open_read_only(&dir.0).unwrap();
        assert_eq!(pdns_content_hash(&disk), meta.rows_fnv);
        // A bare save_pdns snapshot has no manifest.
        let dir2 = TempDir::new();
        save_pdns(&world.pdns, &dir2.0, 4).unwrap();
        assert!(SnapshotMeta::read(&dir2.0).is_none());
    }

    #[test]
    fn refuses_to_overwrite_existing_snapshot() {
        let world = tiny_world();
        let dir = TempDir::new();
        world.save_snapshot(&dir.0, 4).unwrap();
        assert!(matches!(
            world.save_snapshot(&dir.0, 4),
            Err(StoreError::AlreadyExists(_))
        ));
    }
}
