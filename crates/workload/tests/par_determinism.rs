//! Worker-count invariance of the parallel data plane (DESIGN.md §12).
//!
//! World generation fans shards out across `gen_workers` threads and
//! snapshot ingest fans fqdn partitions across producer threads; both
//! must be pure functions of `(seed, scale)` — the worker count may
//! only change wall time, never a byte of output. These properties
//! drive both paths at worker counts {1, 3, 8} over random seeds and
//! scales and require identical function populations, identical full
//! row dumps, and identical manifest/content hashes.

use fw_dns::pdns::PdnsBackend;
use fw_store::DiskStore;
use fw_workload::{pdns_content_hash, SnapshotMeta, World, WorldConfig, WorldFunction};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "fw-par-det-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config(seed: u64, scale: f64, live: bool, gen_workers: usize) -> WorldConfig {
    let mut c = if live {
        WorldConfig::live(seed, scale)
    } else {
        WorldConfig::usage(seed, scale)
    };
    c.gen_workers = gen_workers;
    c
}

/// Every ground-truth field that generation decides, flattened into a
/// comparable value (`WorldFunction` itself doesn't impl `PartialEq`).
fn fingerprint(
    f: &WorldFunction,
) -> (
    String,
    String,
    String,
    String,
    bool,
    bool,
    i64,
    i64,
    u32,
    u64,
) {
    (
        f.fqdn.as_str().to_string(),
        format!("{:?}", f.provider),
        f.region.clone(),
        format!("{:?}", f.truth),
        f.probed,
        f.deployed,
        f.first_seen.0,
        f.last_seen.0,
        f.days_active,
        f.total_requests,
    )
}

/// Full row dump in canonical order (sorted fqdns, then each fqdn's
/// `(pdate, rdata)` visit order) — stricter than the commutative
/// content hash because it also pins per-fqdn row lists. Raw
/// `for_each_row` order is hash-map order and can't be compared
/// across independently built stores.
fn row_dump<B: PdnsBackend + ?Sized>(pdns: &B) -> Vec<(String, u8, String, i64, u64)> {
    let mut rows = Vec::new();
    for fqdn in pdns.sorted_fqdns() {
        pdns.for_each_record_of(&fqdn, &mut |rtype, rdata, pdate, cnt| {
            rows.push((
                fqdn.as_str().to_string(),
                rtype as u8,
                rdata.text(),
                pdate.0,
                cnt,
            ));
        });
    }
    rows
}

/// Seeds/scales small enough that a single proptest case stays cheap
/// but still mints functions on several providers.
fn world_spec() -> impl Strategy<Value = (u64, f64)> {
    (any::<u16>(), 0u8..3).prop_map(|(seed, step)| (seed as u64, 0.001 + step as f64 * 0.001))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Generation at any worker count is byte-identical to serial:
    /// same functions in the same order, same PDNS rows, same hash.
    #[test]
    fn generation_is_worker_count_invariant((seed, scale) in world_spec()) {
        let base = World::generate(config(seed, scale, false, 1));
        let base_fns: Vec<_> = base.functions.iter().map(fingerprint).collect();
        let base_rows = row_dump(&base.pdns);
        let base_hash = pdns_content_hash(&base.pdns);
        prop_assert!(!base_fns.is_empty());

        for workers in [3usize, 8] {
            let w = World::generate(config(seed, scale, false, workers));
            let fns: Vec<_> = w.functions.iter().map(fingerprint).collect();
            prop_assert_eq!(&fns, &base_fns, "functions diverge at gen_workers={}", workers);
            prop_assert_eq!(&row_dump(&w.pdns), &base_rows, "rows diverge at gen_workers={}", workers);
            prop_assert_eq!(pdns_content_hash(&w.pdns), base_hash);
        }
    }

    /// Parallel snapshot ingest is invariant: the compacted on-disk
    /// store and its manifest hash match the serial save exactly.
    #[test]
    fn ingest_is_worker_count_invariant((seed, scale) in world_spec()) {
        let world = World::generate(config(seed, scale, false, 0));

        let serial_dir = TempDir::new();
        world.save_snapshot_parallel(&serial_dir.0, 4, 1).unwrap();
        let serial = DiskStore::open_read_only(&serial_dir.0).unwrap();
        let serial_aggs = serial.all_aggregates();
        let serial_rows = row_dump(&serial);
        let serial_meta = SnapshotMeta::read(&serial_dir.0).unwrap();
        prop_assert_eq!(serial_meta.rows_fnv, pdns_content_hash(&world.pdns));

        for workers in [3usize, 8] {
            let dir = TempDir::new();
            world.save_snapshot_parallel(&dir.0, 4, workers).unwrap();
            let disk = DiskStore::open_read_only(&dir.0).unwrap();
            prop_assert_eq!(&disk.all_aggregates(), &serial_aggs, "aggregates diverge at workers={}", workers);
            prop_assert_eq!(&row_dump(&disk), &serial_rows, "rows diverge at workers={}", workers);
            prop_assert_eq!(SnapshotMeta::read(&dir.0).unwrap(), serial_meta);
        }
    }
}

/// Live-deployed worlds exercise the platform RNG path (deploys pull
/// region + URL randomness from the per-function entropy stream, not
/// the shared platform RNG), so pin those too at a fixed seed.
#[test]
fn live_generation_is_worker_count_invariant() {
    let base = World::generate(config(7, 0.002, true, 1));
    let base_fns: Vec<_> = base.functions.iter().map(fingerprint).collect();
    let base_rows = row_dump(&base.pdns);
    assert!(base.functions.iter().any(|f| f.deployed));

    let par = World::generate(config(7, 0.002, true, 8));
    let fns: Vec<_> = par.functions.iter().map(fingerprint).collect();
    assert_eq!(fns, base_fns);
    assert_eq!(row_dump(&par.pdns), base_rows);
    assert_eq!(pdns_content_hash(&par.pdns), pdns_content_hash(&base.pdns));
}
