//! A minimal JSON value parser and renderer.
//!
//! The workspace writes most of its JSON by hand (registry export,
//! bench reports, trace dumps) but several consumers also need to
//! *read* it back: the trace reporter, the bench regression gate, and
//! the streaming daemon's checkpoint/status format. This is the one
//! shared implementation — a strict recursive-descent parser over the
//! full JSON grammar, small enough to audit, with the handful of
//! accessors the consumers use. No serde in the vendored dependency
//! set. `fw-obs` re-exports [`Json`] for compatibility with its
//! pre-move consumers.

/// A parsed JSON value. Object keys keep insertion order (duplicates:
/// last one wins on [`Json::get`] lookups — matching serde_json).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64 if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 1.8446744073709552e19 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace). Round-trips through
    /// [`Json::parse`]; the bench regression gate uses it to carry
    /// history entries from an old report into a rewritten one, and
    /// the streaming daemon uses it for checkpoint/status documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values print without a fraction so counters
                // and ids survive a parse/render cycle byte-identically.
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Quote and escape a string as a JSON string literal (including the
/// surrounding double quotes). The shared primitive behind every
/// hand-rolled JSON writer in the workspace.
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: JSON encodes astral chars
                            // as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or("truncated surrogate")?;
                                    let lo_hex =
                                        std::str::from_utf8(lo_hex).map_err(|_| "bad surrogate")?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| "bad surrogate")?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(cp).ok_or("invalid codepoint")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control char in string".to_string()),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8")?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let v =
            Json::parse(r#"{"a": [1, 2.5, -3e2, true, false, null, "x\nA😀"], "b": {}}"#).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(a[6].as_str(), Some("x\nA😀"));
        assert!(v.get("b").and_then(Json::as_obj).unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "01x",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn render_round_trips() {
        let text = r#"{"a":[1,2.5,-300,true,false,null,"x\nA😀"],"b":{},"c":"q\"uote"}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Integers stay integers across the cycle.
        assert!(rendered.contains("[1,2.5,-300,"), "got {rendered}");
    }

    #[test]
    fn escape_quotes_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("n\nr\rt\t"), "\"n\\nr\\rt\\t\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        // Escaped output parses back to the original string.
        let tricky = "q\"uote\\slash\nline\u{7}bell😀";
        assert_eq!(
            Json::parse(&escape(tricky)).unwrap(),
            Json::Str(tricky.to_string())
        );
    }
}
