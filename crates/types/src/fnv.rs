//! FNV-1a 64-bit hashing, shared by every subsystem that needs a
//! stable, dependency-free hash.
//!
//! Four crates used to carry their own copy of this loop (fw-store
//! shard routing, the fw-dns resolver cache shards, fw-net's simulated
//! packet jitter, fw-cloud's anycast node pick). They are consolidated
//! here so shard assignment can never silently diverge between layers:
//! the unit tests pin exact hash values, and any edit that changes them
//! breaks the pins before it breaks a snapshot.
//!
//! FNV-1a is used (not SipHash) because these hashes are *persisted
//! semantics*, not DoS-hardened table hashes: fw-store writes the shard
//! index into the snapshot directory layout, and the generator derives
//! per-shard RNG seeds from it. Both must be identical across runs,
//! platforms, and std versions.

/// FNV-1a 64-bit offset basis.
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte slice with FNV-1a 64.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    update(OFFSET, bytes)
}

/// Continue an FNV-1a hash over more bytes. `update(OFFSET, b)` is
/// `fnv1a(b)`; chaining `update` calls equals hashing the
/// concatenation.
#[inline]
pub fn update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fold a whole `u64` into the hash in one step (xor + multiply).
///
/// This is **not** the same as hashing the value's 8 bytes — it is the
/// one-step variant the resolver's cache sharding has always used to
/// mix the record type into the name hash, kept bit-exact here.
#[inline]
pub fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(PRIME)
}

/// Derive a child seed from a parent seed and a stream index by
/// hashing both as little-endian bytes. Used for per-shard RNG streams
/// in the parallel world generator: `stream_seed(seed, shard)` is a
/// pure function of its inputs, so the set of streams is independent
/// of worker count.
#[inline]
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    update(update(OFFSET, &seed.to_le_bytes()), &stream.to_le_bytes())
}

/// A [`std::hash::Hasher`] over the FNV-1a loop, for `HashMap`s on hot
/// ingest paths where SipHash dominates the lookup cost. These tables
/// are rebuilt per run and never face untrusted keys, so DoS hardening
/// buys nothing. Unlike the free functions above, hasher output is
/// *not* persisted semantics — only bucket placement.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // A fresh hasher starts at 0 (from Default); mix the offset in
        // lazily so short integer keys still avalanche.
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let h = if self.0 == 0 { OFFSET } else { self.0 };
        self.0 = update(h, bytes);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = if self.0 == 0 { OFFSET } else { self.0 };
        self.0 = fold(h, v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`]-keyed maps.
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Standard FNV-1a 64 test vectors; if these move, every persisted
    /// shard assignment in the repo moves with them.
    #[test]
    fn pinned_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    /// Pin the exact values the pre-consolidation copies produced for
    /// representative inputs from each call site.
    #[test]
    fn pinned_call_site_values() {
        // fw-store shard routing hashes the fqdn string.
        assert_eq!(fnv1a(b"abc123.fcapp.run"), 0x2869_15fe_3d27_9b62);
        assert_eq!(fnv1a(b"abc123.fcapp.run") % 16, 2);
        // fw-dns resolver cache: name bytes, then the record type is
        // folded in as a whole u64.
        assert_eq!(fold(fnv1a(b"abc123.fcapp.run"), 1) % 16, 9);
        // fw-cloud anycast node pick hashes the fqdn the same way.
        assert_eq!(fnv1a(b"x.cloudfunctions.net"), 0x3fc3_fd38_b4c6_dcc0);
    }

    #[test]
    fn update_chaining_equals_concatenation() {
        let h = update(update(OFFSET, b"foo"), b"bar");
        assert_eq!(h, fnv1a(b"foobar"));
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let s0 = stream_seed(42, 0);
        let s1 = stream_seed(42, 1);
        assert_ne!(s0, s1);
        assert_ne!(s0, stream_seed(43, 0));
        // Pin one value so shard RNG streams never drift.
        assert_eq!(
            stream_seed(42, 0),
            fnv1a(&[42, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        );
    }
}
