//! Fully-qualified domain names.
//!
//! Passive DNS keys records by `fqdn`; the identification stage (paper §3.2)
//! matches those names against provider URL-format expressions. [`Fqdn`]
//! normalises to lowercase and validates basic DNS shape so downstream code
//! can compare names with plain equality.

use std::fmt;

/// A validated, lowercase fully-qualified domain name (no trailing dot).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fqdn(String);

impl Fqdn {
    /// Parse and normalise a domain name.
    ///
    /// Accepts letters, digits, hyphens and underscores per label (PDNS
    /// feeds contain underscore labels in the wild), labels of 1–63 bytes,
    /// total length ≤ 253 bytes, at least two labels. A single trailing dot
    /// is stripped.
    pub fn parse(raw: &str) -> Result<Self, crate::FwError> {
        let trimmed = raw.strip_suffix('.').unwrap_or(raw);
        if trimmed.is_empty() || trimmed.len() > 253 {
            return Err(crate::FwError::InvalidDomain(raw.to_string()));
        }
        let lower = trimmed.to_ascii_lowercase();
        let labels: Vec<&str> = lower.split('.').collect();
        if labels.len() < 2 {
            return Err(crate::FwError::InvalidDomain(raw.to_string()));
        }
        for label in &labels {
            if label.is_empty() || label.len() > 63 {
                return Err(crate::FwError::InvalidDomain(raw.to_string()));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(crate::FwError::InvalidDomain(raw.to_string()));
            }
        }
        Ok(Fqdn(lower))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterator over labels, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Does this name end with the given suffix *on a label boundary*?
    ///
    /// `a.scf.tencentcs.com` ends with `scf.tencentcs.com` but
    /// `xscf.tencentcs.com` does not.
    pub fn has_suffix(&self, suffix: &str) -> bool {
        // Stored names are already lowercase; compare case-insensitively
        // instead of lowercasing `suffix` into a fresh allocation — this
        // runs per candidate format on the classification hot path.
        let name = self.0.as_bytes();
        let suffix = suffix.as_bytes();
        if name.len() < suffix.len() {
            return false;
        }
        let tail = &name[name.len() - suffix.len()..];
        if !tail.eq_ignore_ascii_case(suffix) {
            return false;
        }
        name.len() == suffix.len() || name[name.len() - suffix.len() - 1] == b'.'
    }

    /// Registrable-suffix convenience: the last `n` labels joined by dots.
    pub fn last_labels(&self, n: usize) -> String {
        let labels: Vec<&str> = self.labels().collect();
        let start = labels.len().saturating_sub(n);
        labels[start..].join(".")
    }
}

impl fmt::Display for Fqdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Fqdn {
    type Err = crate::FwError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fqdn::parse(s)
    }
}

impl AsRef<str> for Fqdn {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_lowercases() {
        let f = Fqdn::parse("Example.COM").unwrap();
        assert_eq!(f.as_str(), "example.com");
    }

    #[test]
    fn strips_trailing_dot() {
        assert_eq!(Fqdn::parse("a.b.").unwrap().as_str(), "a.b");
    }

    #[test]
    fn rejects_bad_names() {
        for bad in ["", ".", "single", "a..b", "-\u{1F600}.com", "a b.com"] {
            assert!(Fqdn::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        let long_label = format!("{}.com", "a".repeat(64));
        assert!(Fqdn::parse(&long_label).is_err());
        let long_total = format!("{}.com", "a.".repeat(130));
        assert!(Fqdn::parse(&long_total).is_err());
    }

    #[test]
    fn accepts_underscores_and_hyphens() {
        assert!(Fqdn::parse("_dmarc.example.com").is_ok());
        assert!(Fqdn::parse("my-fn-abc.fcapp.run").is_ok());
    }

    #[test]
    fn suffix_matching_is_label_aligned() {
        let f = Fqdn::parse("a.scf.tencentcs.com").unwrap();
        assert!(f.has_suffix("scf.tencentcs.com"));
        assert!(f.has_suffix("tencentcs.com"));
        assert!(!f.has_suffix("cf.tencentcs.com"));
        let g = Fqdn::parse("xscf.tencentcs.com").unwrap();
        assert!(!g.has_suffix("scf.tencentcs.com"));
        // exact equality counts as suffix
        let h = Fqdn::parse("scf.tencentcs.com").unwrap();
        assert!(h.has_suffix("scf.tencentcs.com"));
    }

    #[test]
    fn last_labels() {
        let f = Fqdn::parse("x.y.fcapp.run").unwrap();
        assert_eq!(f.last_labels(2), "fcapp.run");
        assert_eq!(f.last_labels(10), "x.y.fcapp.run");
    }
}
