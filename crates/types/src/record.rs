//! DNS record types and rdata as they appear in passive-DNS tuples.
//!
//! The paper's analysis (Table 2) distinguishes three resolution outcomes:
//! A (rtype=1), CNAME (rtype=5) and AAAA (rtype=28). The wire codec in
//! `fw-dns` supports a few more types; this module only carries the subset
//! the measurement pipeline reasons about.

use crate::Fqdn;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record type, with the numeric code used in PDNS `rtype` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordType {
    /// IPv4 address record (rtype = 1).
    A,
    /// Canonical name record (rtype = 5).
    Cname,
    /// IPv6 address record (rtype = 28).
    Aaaa,
}

impl RecordType {
    /// Numeric code as used in DNS wire format and PDNS dumps.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Cname => 5,
            RecordType::Aaaa => 28,
        }
    }

    /// Parse from the numeric code.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(RecordType::A),
            5 => Some(RecordType::Cname),
            28 => Some(RecordType::Aaaa),
            _ => None,
        }
    }

    pub const ALL: [RecordType; 3] = [RecordType::A, RecordType::Cname, RecordType::Aaaa];
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecordType::A => "A",
            RecordType::Cname => "CNAME",
            RecordType::Aaaa => "AAAA",
        })
    }
}

/// Resolution data: the right-hand side of a DNS answer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rdata {
    V4(Ipv4Addr),
    V6(Ipv6Addr),
    Name(Fqdn),
}

impl Rdata {
    /// The record type this rdata corresponds to.
    pub fn rtype(&self) -> RecordType {
        match self {
            Rdata::V4(_) => RecordType::A,
            Rdata::V6(_) => RecordType::Aaaa,
            Rdata::Name(_) => RecordType::Cname,
        }
    }

    /// Canonical textual rendering, as a PDNS dump would store it.
    pub fn text(&self) -> String {
        self.with_text(str::to_string)
    }

    /// Run `f` over the canonical text without allocating: addresses
    /// format into a stack buffer, names borrow their stored string.
    /// Byte-identical to [`text`](Self::text) — the row content hashes
    /// depend on that.
    pub fn with_text<R>(&self, f: impl FnOnce(&str) -> R) -> R {
        match self {
            Rdata::Name(n) => f(n.as_str()),
            Rdata::V4(ip) => {
                let mut buf = TextBuf::new();
                use fmt::Write as _;
                write!(buf, "{ip}").expect("ipv4 text fits the stack buffer");
                f(buf.as_str())
            }
            Rdata::V6(ip) => {
                let mut buf = TextBuf::new();
                use fmt::Write as _;
                write!(buf, "{ip}").expect("ipv6 text fits the stack buffer");
                f(buf.as_str())
            }
        }
    }
}

/// Stack buffer sized for the longest address rendering (an IPv6 with an
/// embedded IPv4 tail is 45 bytes).
struct TextBuf {
    buf: [u8; 48],
    len: usize,
}

impl TextBuf {
    fn new() -> Self {
        TextBuf {
            buf: [0; 48],
            len: 0,
        }
    }

    fn as_str(&self) -> &str {
        // Only ever filled through `fmt::Write` with ASCII address text.
        std::str::from_utf8(&self.buf[..self.len]).expect("address text is ascii")
    }
}

impl fmt::Write for TextBuf {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let bytes = s.as_bytes();
        if self.len + bytes.len() > self.buf.len() {
            return Err(fmt::Error);
        }
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
        Ok(())
    }
}

impl fmt::Display for Rdata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_iana() {
        assert_eq!(RecordType::A.code(), 1);
        assert_eq!(RecordType::Cname.code(), 5);
        assert_eq!(RecordType::Aaaa.code(), 28);
        for t in RecordType::ALL {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(16), None);
    }

    #[test]
    fn rdata_type_and_text() {
        let v4 = Rdata::V4(Ipv4Addr::new(203, 0, 113, 7));
        assert_eq!(v4.rtype(), RecordType::A);
        assert_eq!(v4.text(), "203.0.113.7");

        let name = Rdata::Name(Fqdn::parse("gz.scf.tencentcs.com").unwrap());
        assert_eq!(name.rtype(), RecordType::Cname);
        assert_eq!(name.text(), "gz.scf.tencentcs.com");

        let v6 = Rdata::V6("2001:db8::1".parse().unwrap());
        assert_eq!(v6.rtype(), RecordType::Aaaa);
    }
}
