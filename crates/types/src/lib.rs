//! # fw-types
//!
//! Shared vocabulary for the `faaswild` workspace: provider identifiers,
//! calendar timestamps at the granularity passive DNS uses (whole days),
//! fully-qualified domain names, DNS record types and rdata, and the common
//! error type.
//!
//! Everything here is deliberately small and dependency-light so that every
//! other crate in the workspace can share one set of core types without
//! pulling in simulation or analysis machinery.

pub mod day;
pub mod domain;
pub mod error;
pub mod fnv;
pub mod json;
pub mod memmem;
pub mod provider;
pub mod record;

pub use day::{DayStamp, MonthStamp, MEASUREMENT_END, MEASUREMENT_START};
pub use domain::Fqdn;
pub use error::{FwError, FwResult};
pub use json::Json;
pub use provider::ProviderId;
pub use record::{Rdata, RecordType};
