//! Workspace-wide error type.
//!
//! Crates that have richer local failure modes define their own error enums
//! and convert into [`FwError`] at crate boundaries. This keeps the public
//! pipeline API (`fw-core`) returning a single error type.

use std::fmt;

/// Common error type shared across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FwError {
    /// A domain name failed validation.
    InvalidDomain(String),
    /// A pattern failed to compile (message from `fw-pattern`).
    Pattern(String),
    /// DNS wire-format or resolution failure.
    Dns(String),
    /// Simulated-network failure (connection refused, reset, timeout...).
    Net(String),
    /// HTTP protocol failure.
    Http(String),
    /// Cloud-platform operation failure (unknown function, quota...).
    Cloud(String),
    /// Analysis-stage failure (empty corpus, dimension mismatch...).
    Analysis(String),
    /// Configuration or parameter error.
    Config(String),
    /// Input/output error carried as a message (keeps `Clone`/`Eq`).
    Io(String),
}

impl fmt::Display for FwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FwError::InvalidDomain(d) => write!(f, "invalid domain name: {d:?}"),
            FwError::Pattern(m) => write!(f, "pattern error: {m}"),
            FwError::Dns(m) => write!(f, "dns error: {m}"),
            FwError::Net(m) => write!(f, "network error: {m}"),
            FwError::Http(m) => write!(f, "http error: {m}"),
            FwError::Cloud(m) => write!(f, "cloud platform error: {m}"),
            FwError::Analysis(m) => write!(f, "analysis error: {m}"),
            FwError::Config(m) => write!(f, "config error: {m}"),
            FwError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for FwError {}

impl From<std::io::Error> for FwError {
    fn from(e: std::io::Error) -> Self {
        FwError::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type FwResult<T> = Result<T, FwError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FwError::Dns("nxdomain for example.com".into());
        assert!(e.to_string().contains("nxdomain"));
        assert!(e.to_string().starts_with("dns error"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, "deadline");
        let e: FwError = io.into();
        assert!(matches!(e, FwError::Io(_)));
    }
}
