//! Calendar timestamps at passive-DNS granularity.
//!
//! The PDNS dataset the paper works with aggregates observations per *day*
//! (`pdate`), so the natural timestamp for this workspace is a day counter.
//! [`DayStamp`] is a number of days since the Unix epoch (1970-01-01, UTC),
//! convertible to and from civil `(year, month, day)` dates using Howard
//! Hinnant's well-known `days_from_civil` / `civil_from_days` algorithms.
//! [`MonthStamp`] buckets days into calendar months for the monthly trend
//! figures (Figures 3, 4 and 7).

use std::fmt;

/// A calendar day, stored as days since 1970-01-01 (UTC).
///
/// Supports arithmetic (`+ i64`, difference) and civil-date conversion.
///
/// ```
/// use fw_types::DayStamp;
/// let d = DayStamp::from_ymd(2022, 4, 1);
/// assert_eq!(d.ymd(), (2022, 4, 1));
/// assert_eq!((d + 30).ymd(), (2022, 5, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DayStamp(pub i64);

/// First day of the paper's measurement window (April 2022).
pub const MEASUREMENT_START: DayStamp = DayStamp(19083); // 2022-04-01
/// Last day of the paper's measurement window (March 2024).
pub const MEASUREMENT_END: DayStamp = DayStamp(19813); // 2024-03-31

impl DayStamp {
    /// Build a stamp from a civil date. Panics on out-of-range months/days
    /// (callers construct dates from literals or validated input).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        DayStamp(days_from_civil(year, month, day))
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The calendar month this day falls in.
    pub fn month(self) -> MonthStamp {
        let (y, m, _) = self.ymd();
        MonthStamp { year: y, month: m }
    }

    /// Number of days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: DayStamp) -> i64 {
        other.0 - self.0
    }

    /// ISO-8601 `YYYY-MM-DD` rendering.
    pub fn iso(self) -> String {
        let (y, m, d) = self.ymd();
        format!("{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Display for DayStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso())
    }
}

impl std::ops::Add<i64> for DayStamp {
    type Output = DayStamp;
    fn add(self, rhs: i64) -> DayStamp {
        DayStamp(self.0 + rhs)
    }
}

impl std::ops::Sub<i64> for DayStamp {
    type Output = DayStamp;
    fn sub(self, rhs: i64) -> DayStamp {
        DayStamp(self.0 - rhs)
    }
}

impl std::ops::Sub<DayStamp> for DayStamp {
    type Output = i64;
    fn sub(self, rhs: DayStamp) -> i64 {
        self.0 - rhs.0
    }
}

/// A calendar month, used for the paper's monthly trend series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonthStamp {
    pub year: i32,
    pub month: u32,
}

impl MonthStamp {
    pub fn new(year: i32, month: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        MonthStamp { year, month }
    }

    /// First day of this month.
    pub fn first_day(self) -> DayStamp {
        DayStamp::from_ymd(self.year, self.month, 1)
    }

    /// Last day of this month.
    pub fn last_day(self) -> DayStamp {
        self.next().first_day() - 1
    }

    /// Number of days in this month.
    pub fn len_days(self) -> i64 {
        self.next().first_day() - self.first_day()
    }

    /// The following month.
    pub fn next(self) -> MonthStamp {
        if self.month == 12 {
            MonthStamp {
                year: self.year + 1,
                month: 1,
            }
        } else {
            MonthStamp {
                year: self.year,
                month: self.month + 1,
            }
        }
    }

    /// Inclusive iterator over months `self..=end`.
    pub fn range_inclusive(self, end: MonthStamp) -> impl Iterator<Item = MonthStamp> {
        let mut cur = self;
        std::iter::from_fn(move || {
            if cur > end {
                None
            } else {
                let out = cur;
                cur = cur.next();
                Some(out)
            }
        })
    }

    /// `YYYY-MM` rendering.
    pub fn label(self) -> String {
        format!("{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Display for MonthStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Days since the epoch for a civil date (proleptic Gregorian calendar).
///
/// Howard Hinnant's `days_from_civil`, which is exact for all `i32` years.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(DayStamp::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(DayStamp(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn measurement_window_constants_match_civil_dates() {
        assert_eq!(MEASUREMENT_START.ymd(), (2022, 4, 1));
        assert_eq!(MEASUREMENT_END.ymd(), (2024, 3, 31));
        // The paper describes a two-year window; 2024 is a leap year so the
        // span is 730 days inclusive of both endpoints.
        assert_eq!(MEASUREMENT_END - MEASUREMENT_START + 1, 731);
    }

    #[test]
    fn leap_year_handling() {
        let d = DayStamp::from_ymd(2024, 2, 28);
        assert_eq!((d + 1).ymd(), (2024, 2, 29));
        assert_eq!((d + 2).ymd(), (2024, 3, 1));
        let d = DayStamp::from_ymd(2023, 2, 28);
        assert_eq!((d + 1).ymd(), (2023, 3, 1));
    }

    #[test]
    fn month_arithmetic() {
        let m = MonthStamp::new(2022, 12);
        assert_eq!(m.next(), MonthStamp::new(2023, 1));
        assert_eq!(m.len_days(), 31);
        assert_eq!(MonthStamp::new(2024, 2).len_days(), 29);
        assert_eq!(MonthStamp::new(2023, 2).len_days(), 28);
        assert_eq!(m.last_day().ymd(), (2022, 12, 31));
    }

    #[test]
    fn month_range_covers_measurement_window() {
        let months: Vec<_> = MEASUREMENT_START
            .month()
            .range_inclusive(MEASUREMENT_END.month())
            .collect();
        assert_eq!(months.len(), 24);
        assert_eq!(months[0], MonthStamp::new(2022, 4));
        assert_eq!(months[23], MonthStamp::new(2024, 3));
    }

    #[test]
    fn roundtrip_every_day_in_window() {
        for off in 0..=(MEASUREMENT_END - MEASUREMENT_START) {
            let d = MEASUREMENT_START + off;
            let (y, m, dd) = d.ymd();
            assert_eq!(DayStamp::from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(DayStamp::from_ymd(2022, 4, 1).to_string(), "2022-04-01");
        assert_eq!(MonthStamp::new(2024, 3).to_string(), "2024-03");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn invalid_month_panics() {
        DayStamp::from_ymd(2022, 13, 1);
    }
}
