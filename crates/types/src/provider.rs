//! Serverless cloud function providers studied in the paper (Table 1).
//!
//! Nine vendors are covered; Google ships two URL formats (1st and 2nd
//! generation), so like the paper we track ten *provider formats*. Two flags
//! reproduce the paper's scoping decisions:
//!
//! * [`ProviderId::dns_identifiable`] — Azure shares `azurewebsites.net`
//!   with non-function web apps, so its functions cannot be identified from
//!   domain patterns alone and it is excluded from PDNS collection.
//! * [`ProviderId::path_identified`] — Google (1st gen), IBM, Oracle and
//!   Azure embed the function identifier in the URL *path*, which passive
//!   DNS cannot observe; these are excluded from active probing and from
//!   per-function aggregation.

use std::fmt;

/// How a provider exposes the function URL at creation time (Table 1,
/// "Generation Mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UrlGenerationMode {
    /// URL is generated automatically when the function is created.
    Automatic,
    /// The user must create an HTTP trigger by hand (Baidu).
    Manual,
    /// Function-URL invocation is opt-in during setup (AWS, Kingsoft,
    /// Google).
    Optional,
}

impl fmt::Display for UrlGenerationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UrlGenerationMode::Automatic => "Automatic",
            UrlGenerationMode::Manual => "Manual",
            UrlGenerationMode::Optional => "Optional",
        })
    }
}

/// One of the ten provider URL formats from Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProviderId {
    Aliyun,
    Baidu,
    Tencent,
    Kingsoft,
    Aws,
    Google,
    Google2,
    Ibm,
    Oracle,
    Azure,
}

impl ProviderId {
    /// All ten provider formats, in Table 1 order.
    pub const ALL: [ProviderId; 10] = [
        ProviderId::Aliyun,
        ProviderId::Baidu,
        ProviderId::Tencent,
        ProviderId::Kingsoft,
        ProviderId::Aws,
        ProviderId::Google,
        ProviderId::Google2,
        ProviderId::Ibm,
        ProviderId::Oracle,
        ProviderId::Azure,
    ];

    /// Human-readable product name.
    pub fn product_name(self) -> &'static str {
        match self {
            ProviderId::Aliyun => "Aliyun Function Compute",
            ProviderId::Baidu => "Baidu Cloud Function Compute",
            ProviderId::Tencent => "Tencent Serverless Cloud Function",
            ProviderId::Kingsoft => "Kingsoft Cloud Function",
            ProviderId::Aws => "AWS Lambda",
            ProviderId::Google => "Google Cloud Function",
            ProviderId::Google2 => "Google Cloud Function (2nd gen)",
            ProviderId::Ibm => "IBM Cloud Function",
            ProviderId::Oracle => "Oracle Cloud Functions",
            ProviderId::Azure => "Azure Function",
        }
    }

    /// Short label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            ProviderId::Aliyun => "Aliyun",
            ProviderId::Baidu => "Baidu",
            ProviderId::Tencent => "Tencent",
            ProviderId::Kingsoft => "Ksyun",
            ProviderId::Aws => "AWS",
            ProviderId::Google => "Google",
            ProviderId::Google2 => "Google2",
            ProviderId::Ibm => "IBM",
            ProviderId::Oracle => "Oracle",
            ProviderId::Azure => "Azure",
        }
    }

    /// Launch year of this function-URL format (Table 1).
    pub fn launch_year(self) -> i32 {
        match self {
            ProviderId::Aliyun => 2017,
            ProviderId::Baidu => 2017,
            ProviderId::Tencent => 2017,
            ProviderId::Kingsoft => 2022,
            ProviderId::Aws => 2014,
            ProviderId::Google => 2017,
            ProviderId::Google2 => 2022,
            ProviderId::Ibm => 2016,
            ProviderId::Oracle => 2019,
            ProviderId::Azure => 2016,
        }
    }

    /// The registrable domain suffix used by the format (Table 1,
    /// "Domain-Suffix" column, without the user prefix).
    pub fn domain_suffix(self) -> &'static str {
        match self {
            ProviderId::Aliyun => "fcapp.run",
            ProviderId::Baidu => "baidubce.com",
            ProviderId::Tencent => "scf.tencentcs.com",
            ProviderId::Kingsoft => "ksyuncf.com",
            ProviderId::Aws => "on.aws",
            ProviderId::Google => "cloudfunctions.net",
            ProviderId::Google2 => "a.run.app",
            ProviderId::Ibm => "functions.appdomain.cloud",
            ProviderId::Oracle => "oci.oraclecloud.com",
            ProviderId::Azure => "azurewebsites.net",
        }
    }

    /// URL generation mode at function creation (Table 1).
    pub fn generation_mode(self) -> UrlGenerationMode {
        match self {
            ProviderId::Aliyun
            | ProviderId::Tencent
            | ProviderId::Ibm
            | ProviderId::Oracle
            | ProviderId::Azure => UrlGenerationMode::Automatic,
            ProviderId::Baidu => UrlGenerationMode::Manual,
            ProviderId::Kingsoft | ProviderId::Aws | ProviderId::Google | ProviderId::Google2 => {
                UrlGenerationMode::Optional
            }
        }
    }

    /// Can functions of this format be identified from the domain name in
    /// passive DNS? Only Azure fails this (shared `azurewebsites.net`
    /// suffix), so it is excluded from collection (§3.2, grey row).
    pub fn dns_identifiable(self) -> bool {
        !matches!(self, ProviderId::Azure)
    }

    /// Does the format put the function identifier in the URL *path*
    /// (invisible to passive DNS)? These formats are excluded from active
    /// probing and per-function aggregation (§3.3, blue rows).
    pub fn path_identified(self) -> bool {
        matches!(
            self,
            ProviderId::Google | ProviderId::Ibm | ProviderId::Oracle | ProviderId::Azure
        )
    }

    /// Formats included in PDNS collection (all but Azure).
    pub fn collected() -> impl Iterator<Item = ProviderId> {
        Self::ALL.into_iter().filter(|p| p.dns_identifiable())
    }

    /// Formats included in active probing: collected *and* not
    /// path-identified (AWS, Google2, Tencent, Baidu, Aliyun, Kingsoft).
    pub fn actively_probed() -> impl Iterator<Item = ProviderId> {
        Self::collected().filter(|p| !p.path_identified())
    }

    /// Formats whose domains map one-to-one to a specific cloud function,
    /// enabling invocation-frequency and lifespan analysis (§4.3 excludes
    /// Google, IBM and Oracle).
    pub fn function_identifiable(self) -> bool {
        self.dns_identifiable() && !self.path_identified()
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_formats_nine_vendors() {
        assert_eq!(ProviderId::ALL.len(), 10);
        // Google appears twice (two URL formats), all other labels unique.
        let mut labels: Vec<_> = ProviderId::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn collection_scope_matches_paper() {
        let collected: Vec<_> = ProviderId::collected().collect();
        assert_eq!(collected.len(), 9);
        assert!(!collected.contains(&ProviderId::Azure));
    }

    #[test]
    fn active_probing_scope_matches_paper() {
        let probed: Vec<_> = ProviderId::actively_probed().collect();
        // §3.3: AWS, Google2, Tencent, Baidu, Aliyun and Kingsoft.
        assert_eq!(
            probed,
            vec![
                ProviderId::Aliyun,
                ProviderId::Baidu,
                ProviderId::Tencent,
                ProviderId::Kingsoft,
                ProviderId::Aws,
                ProviderId::Google2,
            ]
        );
    }

    #[test]
    fn function_identifiable_excludes_google_ibm_oracle() {
        for p in [ProviderId::Google, ProviderId::Ibm, ProviderId::Oracle] {
            assert!(!p.function_identifiable(), "{p}");
        }
        for p in ProviderId::actively_probed() {
            assert!(p.function_identifiable(), "{p}");
        }
    }

    #[test]
    fn table1_metadata_spot_checks() {
        assert_eq!(ProviderId::Aws.launch_year(), 2014);
        assert_eq!(ProviderId::Google2.launch_year(), 2022);
        assert_eq!(ProviderId::Tencent.domain_suffix(), "scf.tencentcs.com");
        assert_eq!(
            ProviderId::Baidu.generation_mode(),
            UrlGenerationMode::Manual
        );
        assert_eq!(
            ProviderId::Aws.generation_mode(),
            UrlGenerationMode::Optional
        );
        assert_eq!(
            ProviderId::Oracle.generation_mode(),
            UrlGenerationMode::Automatic
        );
    }
}
