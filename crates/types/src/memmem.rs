//! Byte-substring search anchored on a fast `memchr`.
//!
//! The C2 fingerprint matcher and the HTTP parser both scan response
//! bodies for short byte needles. A naive `windows(n).any(..)` walk is
//! O(n·m) with a per-window comparison loop; the classic trick is to
//! scan for the needle's *first byte* with a word-at-a-time `memchr`
//! and only attempt full comparisons at those anchor points. For bodies
//! where the anchor byte is rare (binary C2 framing, HTML tags) this
//! does long aligned skips instead of byte-by-byte window shifts.
//!
//! `fw-types` has no dependencies by design, so the `memchr` here is a
//! small hand-rolled SWAR (SIMD-within-a-register) implementation: read
//! the haystack a `usize` word at a time and use the "has zero byte"
//! bit trick to test eight lanes per iteration.

/// Index of the first occurrence of `byte` in `haystack`, scanning a
/// machine word at a time.
pub fn memchr(byte: u8, haystack: &[u8]) -> Option<usize> {
    const LANES: usize = core::mem::size_of::<usize>();
    // Broadcast the needle byte to every lane of a word.
    let broadcast = usize::from_ne_bytes([byte; LANES]);
    let lo = usize::from_ne_bytes([0x01; LANES]);
    let hi = usize::from_ne_bytes([0x80; LANES]);

    let mut i = 0;
    // Head: align to a word boundary is unnecessary — unaligned loads
    // via `from_ne_bytes` on a copied chunk are free on the targets we
    // care about; just chunk from the start.
    while i + LANES <= haystack.len() {
        let chunk: [u8; LANES] = haystack[i..i + LANES].try_into().unwrap();
        let word = usize::from_ne_bytes(chunk) ^ broadcast;
        // Zero-byte detector: (w - 0x01..) & !w & 0x80.. is non-zero
        // iff some lane of `word` is zero.
        if word.wrapping_sub(lo) & !word & hi != 0 {
            // Some lane matched; find it with a short scalar scan.
            for (j, &b) in haystack[i..i + LANES].iter().enumerate() {
                if b == byte {
                    return Some(i + j);
                }
            }
        }
        i += LANES;
    }
    haystack[i..].iter().position(|&b| b == byte).map(|j| i + j)
}

/// Index of the first occurrence of `needle` in `haystack`.
///
/// Empty needles match at offset 0, mirroring `str::find("")`.
pub fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    if needle.len() > haystack.len() {
        return None;
    }
    let (first, rest) = needle.split_first().unwrap();
    let mut offset = 0;
    let last_start = haystack.len() - needle.len();
    while offset <= last_start {
        let found = memchr(*first, &haystack[offset..=last_start])?;
        let start = offset + found;
        if &haystack[start + 1..start + needle.len()] == rest {
            return Some(start);
        }
        offset = start + 1;
    }
    None
}

/// Does `haystack` contain `needle`? (`find_subsequence(..).is_some()`.)
pub fn contains_subsequence(haystack: &[u8], needle: &[u8]) -> bool {
    find_subsequence(haystack, needle).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        if needle.is_empty() {
            return Some(0);
        }
        if needle.len() > haystack.len() {
            return None;
        }
        haystack.windows(needle.len()).position(|w| w == needle)
    }

    #[test]
    fn memchr_finds_first_occurrence() {
        assert_eq!(memchr(b'x', b""), None);
        assert_eq!(memchr(b'a', b"a"), Some(0));
        assert_eq!(memchr(b'z', b"abcdefgh"), None);
        assert_eq!(memchr(b'h', b"abcdefgh"), Some(7));
        assert_eq!(memchr(b'b', b"aaaaaaaabaaab"), Some(8));
        // Crosses a word boundary.
        let hay = [b'q'; 37];
        let mut hay2 = hay;
        hay2[33] = b'!';
        assert_eq!(memchr(b'!', &hay2), Some(33));
        assert_eq!(memchr(b'!', &hay), None);
    }

    #[test]
    fn find_matches_naive_on_fixed_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"a"),
            (b"abc", b""),
            (b"hello world", b"world"),
            (b"hello world", b"worlds"),
            (b"aaaaaaab", b"aab"),
            (b"abababab", b"bab"),
            (b"\x00\x01\x02\x03", b"\x02\x03"),
            (b"mzmzmzmzmq", b"mq"),
        ];
        for (h, n) in cases {
            assert_eq!(find_subsequence(h, n), naive(h, n), "h={h:?} n={n:?}");
        }
    }

    #[test]
    fn long_haystack_rare_anchor() {
        let mut hay = vec![b'a'; 10_000];
        hay.extend_from_slice(b"MZ\x90needle");
        assert_eq!(find_subsequence(&hay, b"MZ\x90needle"), Some(10_000));
        assert!(contains_subsequence(&hay, b"needle"));
        assert!(!contains_subsequence(&hay, b"needles"));
    }
}
