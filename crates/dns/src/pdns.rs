//! Passive-DNS store.
//!
//! Mirrors the dataset of paper §3.2: records aggregated at the daily level
//! as `<fqdn, rtype, rdata, first_seen, last_seen, request_cnt, pdate>`
//! tuples, plus the per-fqdn aggregation used throughout §4:
//! `first_seen_all`, `last_seen_all`, `days_count`, `total_request_cnt` and
//! the distribution of resolution results.
//!
//! Rdata values are interned per fqdn, so the memory cost of a row is one
//! day stamp, one small index and one counter — the store comfortably holds
//! full-scale (531k-domain) synthetic worlds.

use crate::resolver::Sensor;
use fw_types::{DayStamp, Fqdn, Rdata, RecordType};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One materialized PDNS tuple (daily aggregate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdnsRecord {
    pub fqdn: Fqdn,
    pub rtype: RecordType,
    pub rdata: Rdata,
    /// First observation on `pdate` (day granularity in this store).
    pub first_seen: DayStamp,
    /// Last observation on `pdate`.
    pub last_seen: DayStamp,
    pub request_cnt: u64,
    pub pdate: DayStamp,
}

#[derive(Debug, Clone, Copy)]
struct DailyRow {
    pdate: DayStamp,
    rdata_idx: u32,
    cnt: u64,
}

#[derive(Debug, Default)]
struct FqdnEntry {
    rdatas: Vec<Rdata>,
    /// rdata → index side table; high-fanout ingress fqdns (anycast
    /// frontends) see hundreds of distinct rdatas, so interning must not
    /// scan `rdatas` linearly per observation.
    rdata_index: HashMap<Rdata, u32>,
    rows: Vec<DailyRow>,
}

impl FqdnEntry {
    fn intern(&mut self, rdata: &Rdata) -> u32 {
        if let Some(&i) = self.rdata_index.get(rdata) {
            return i;
        }
        let i = self.rdatas.len() as u32;
        self.rdatas.push(rdata.clone());
        self.rdata_index.insert(rdata.clone(), i);
        i
    }
}

/// Per-fqdn aggregate (paper §3.2 "key metrics").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FqdnAggregate {
    pub fqdn: Fqdn,
    pub first_seen_all: DayStamp,
    pub last_seen_all: DayStamp,
    /// Number of distinct days with observed resolutions.
    pub days_count: u32,
    pub total_request_cnt: u64,
    /// Distribution of resolution results: `(rdata, total requests)`.
    pub rdata_dist: Vec<(Rdata, u64)>,
}

impl FqdnAggregate {
    /// Lifespan in days, inclusive of both endpoints (≥ 1).
    pub fn lifespan_days(&self) -> i64 {
        self.last_seen_all - self.first_seen_all + 1
    }

    /// Activity density: fraction of lifespan days with observed activity.
    /// Single-day functions have density 1 by definition.
    pub fn activity_density(&self) -> f64 {
        self.days_count as f64 / self.lifespan_days() as f64
    }
}

/// Storage-engine abstraction over PDNS daily aggregates.
///
/// The measurement pipeline (`fw-core`) only needs this narrow, object-safe
/// surface, so it runs unchanged against the in-memory [`PdnsStore`] and the
/// persistent sharded segment store in `fw-store`. Callbacks take
/// `&mut dyn FnMut` so the trait stays object-safe; iteration order is
/// backend-defined and consumers must not rely on it.
pub trait PdnsBackend {
    /// Record `count` observations of `fqdn → rdata` on `day`.
    fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64);

    /// Number of distinct fqdns observed.
    fn fqdn_count(&self) -> usize;

    /// Number of daily-aggregate rows. Backends may merge duplicate
    /// `(fqdn, rdata, pdate)` keys differently, so this is a storage
    /// metric, not an analysis input.
    fn record_count(&self) -> usize;

    /// Visit every observed fqdn (backend-defined order).
    fn for_each_fqdn(&self, f: &mut dyn FnMut(&Fqdn));

    /// Visit every daily row as `(fqdn, rtype, rdata, pdate, request_cnt)`.
    /// The callback must not call back into the same backend (sharded
    /// backends hold a shard lock across the visit); `for_each_fqdn` has
    /// no such restriction — calling [`PdnsBackend::aggregate`] from its
    /// callback is the expected identification-stage pattern.
    fn for_each_row(&self, f: &mut dyn FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64));

    /// Per-fqdn aggregate (paper §3.2), or `None` if the fqdn is unknown.
    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate>;

    /// All aggregates, sorted by fqdn — deterministic across backends, so
    /// equivalence tests can compare stores element-wise.
    fn all_aggregates(&self) -> Vec<FqdnAggregate> {
        let mut out = Vec::with_capacity(self.fqdn_count());
        self.for_each_fqdn(&mut |fqdn| {
            out.push(self.aggregate(fqdn).expect("fqdn is in the store"));
        });
        out.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
        out
    }
}

/// The passive-DNS record store.
#[derive(Debug, Default)]
pub struct PdnsStore {
    entries: HashMap<Fqdn, FqdnEntry>,
    total_rows: usize,
}

impl PdnsStore {
    pub fn new() -> PdnsStore {
        PdnsStore::default()
    }

    /// Record one observation of `fqdn → rdata` on `day`.
    pub fn observe(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
        self.observe_count(fqdn, rdata, day, 1);
    }

    /// Record `count` observations at once (bulk ingestion path used by the
    /// workload generator, which produces daily aggregates directly).
    pub fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        if count == 0 {
            return;
        }
        fw_obs::counter_inc!("fw.dns.pdns.rows_ingested");
        let entry = self.entries.entry(fqdn.clone()).or_default();
        let idx = entry.intern(rdata);
        // Same-day observations arrive consecutively in both ingestion
        // paths; scan the tail of the row list for a mergeable row.
        for row in entry.rows.iter_mut().rev() {
            if row.pdate != day {
                break;
            }
            if row.rdata_idx == idx {
                row.cnt += count;
                fw_obs::counter_inc!("fw.dns.pdns.dedup_merged");
                return;
            }
        }
        entry.rows.push(DailyRow {
            pdate: day,
            rdata_idx: idx,
            cnt: count,
        });
        self.total_rows += 1;
    }

    /// Number of distinct fqdns observed.
    pub fn fqdn_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of daily-aggregate rows.
    pub fn record_count(&self) -> usize {
        self.total_rows
    }

    /// Iterate all fqdns (arbitrary order).
    pub fn fqdns(&self) -> impl Iterator<Item = &Fqdn> {
        self.entries.keys()
    }

    /// Materialize the records for one fqdn, sorted by `(pdate, rdata)`.
    pub fn records_for(&self, fqdn: &Fqdn) -> Vec<PdnsRecord> {
        let Some(entry) = self.entries.get(fqdn) else {
            return Vec::new();
        };
        // Render each interned rdata's text once; sorting by
        // `(pdate, rdata.text())` directly would re-allocate the text on
        // every comparison.
        let texts: Vec<String> = entry.rdatas.iter().map(|r| r.text()).collect();
        let mut order: Vec<&DailyRow> = entry.rows.iter().collect();
        order.sort_by(|a, b| {
            (a.pdate, texts[a.rdata_idx as usize].as_str())
                .cmp(&(b.pdate, texts[b.rdata_idx as usize].as_str()))
        });
        order
            .into_iter()
            .map(|row| {
                let rdata = entry.rdatas[row.rdata_idx as usize].clone();
                PdnsRecord {
                    fqdn: fqdn.clone(),
                    rtype: rdata.rtype(),
                    rdata,
                    first_seen: row.pdate,
                    last_seen: row.pdate,
                    request_cnt: row.cnt,
                    pdate: row.pdate,
                }
            })
            .collect()
    }

    /// Visit every daily row without materializing owned records. The
    /// visitor receives `(fqdn, rtype, rdata, pdate, request_cnt)`.
    pub fn for_each_row<F>(&self, mut f: F)
    where
        F: FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64),
    {
        for (fqdn, entry) in &self.entries {
            for row in &entry.rows {
                let rdata = &entry.rdatas[row.rdata_idx as usize];
                f(fqdn, rdata.rtype(), rdata, row.pdate, row.cnt);
            }
        }
    }

    /// Per-fqdn aggregate (paper §3.2).
    pub fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        let entry = self.entries.get(fqdn)?;
        let mut first = DayStamp(i64::MAX);
        let mut last = DayStamp(i64::MIN);
        let mut total = 0u64;
        let mut dist: Vec<u64> = vec![0; entry.rdatas.len()];
        let mut days: Vec<DayStamp> = Vec::with_capacity(entry.rows.len());
        for row in &entry.rows {
            first = first.min(row.pdate);
            last = last.max(row.pdate);
            total += row.cnt;
            dist[row.rdata_idx as usize] += row.cnt;
            days.push(row.pdate);
        }
        days.sort_unstable();
        days.dedup();
        // Sorted by rdata so aggregates from different backends (whose
        // interning orders differ) compare equal with plain `==`.
        let mut rdata_dist: Vec<(Rdata, u64)> = entry.rdatas.iter().cloned().zip(dist).collect();
        rdata_dist.sort_by(|a, b| a.0.cmp(&b.0));
        Some(FqdnAggregate {
            fqdn: fqdn.clone(),
            first_seen_all: first,
            last_seen_all: last,
            days_count: days.len() as u32,
            total_request_cnt: total,
            rdata_dist,
        })
    }

    /// Aggregates for every fqdn (arbitrary order).
    pub fn aggregates(&self) -> impl Iterator<Item = FqdnAggregate> + '_ {
        self.entries
            .keys()
            .map(|f| self.aggregate(f).expect("known fqdn aggregates"))
    }
}

impl PdnsStore {
    /// Materialize any backend's rows into a fresh in-memory store (used
    /// when an analysis needs mutation on top of a read-only snapshot).
    pub fn from_backend<B: PdnsBackend + ?Sized>(backend: &B) -> PdnsStore {
        let mut store = PdnsStore::new();
        backend.for_each_row(&mut |fqdn, _rtype, rdata, pdate, cnt| {
            store.observe_count(fqdn, rdata, pdate, cnt);
        });
        store
    }
}

impl PdnsBackend for PdnsStore {
    fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        PdnsStore::observe_count(self, fqdn, rdata, day, count);
    }

    fn fqdn_count(&self) -> usize {
        PdnsStore::fqdn_count(self)
    }

    fn record_count(&self) -> usize {
        PdnsStore::record_count(self)
    }

    fn for_each_fqdn(&self, f: &mut dyn FnMut(&Fqdn)) {
        for fqdn in self.fqdns() {
            f(fqdn);
        }
    }

    fn for_each_row(&self, f: &mut dyn FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64)) {
        PdnsStore::for_each_row(self, |fqdn, rtype, rdata, pdate, cnt| {
            f(fqdn, rtype, rdata, pdate, cnt)
        });
    }

    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        PdnsStore::aggregate(self, fqdn)
    }
}

/// Shareable PDNS store usable as a resolver [`Sensor`].
#[derive(Clone, Default)]
pub struct SharedPdns(pub Arc<Mutex<PdnsStore>>);

impl SharedPdns {
    pub fn new() -> SharedPdns {
        SharedPdns::default()
    }

    pub fn lock(&self) -> parking_lot::MutexGuard<'_, PdnsStore> {
        self.0.lock()
    }
}

impl Sensor for SharedPdns {
    fn observe(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
        self.0.lock().observe(fqdn, rdata, day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn a(last: u8) -> Rdata {
        Rdata::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    fn day(n: i64) -> DayStamp {
        fw_types::MEASUREMENT_START + n
    }

    #[test]
    fn same_day_same_rdata_merges() {
        let mut s = PdnsStore::new();
        let f = fq("x.on.aws");
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(1), day(0));
        assert_eq!(s.record_count(), 1);
        let recs = s.records_for(&f);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].request_cnt, 3);
        assert_eq!(recs[0].pdate, day(0));
    }

    #[test]
    fn different_rdata_same_day_splits_rows() {
        let mut s = PdnsStore::new();
        let f = fq("x.on.aws");
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(2), day(0));
        s.observe(&f, &a(1), day(0));
        assert_eq!(s.record_count(), 2);
        let recs = s.records_for(&f);
        let total: u64 = recs.iter().map(|r| r.request_cnt).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn aggregate_matches_paper_fields() {
        let mut s = PdnsStore::new();
        let f = fq("fn.a.run.app");
        s.observe_count(&f, &a(1), day(0), 5);
        s.observe_count(&f, &a(1), day(3), 2);
        s.observe_count(&f, &Rdata::Name(fq("edge.a.run.app")), day(3), 1);
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.first_seen_all, day(0));
        assert_eq!(agg.last_seen_all, day(3));
        assert_eq!(agg.days_count, 2);
        assert_eq!(agg.total_request_cnt, 8);
        assert_eq!(agg.lifespan_days(), 4);
        assert!((agg.activity_density() - 0.5).abs() < 1e-9);
        assert_eq!(agg.rdata_dist.len(), 2);
    }

    #[test]
    fn single_day_density_is_one() {
        let mut s = PdnsStore::new();
        let f = fq("oneday.on.aws");
        s.observe(&f, &a(1), day(10));
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.lifespan_days(), 1);
        assert!((agg.activity_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_count_is_ignored() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("z.on.aws"), &a(1), day(0), 0);
        assert_eq!(s.fqdn_count(), 0);
        assert_eq!(s.record_count(), 0);
    }

    #[test]
    fn unknown_fqdn_has_no_aggregate() {
        let s = PdnsStore::new();
        assert!(s.aggregate(&fq("missing.on.aws")).is_none());
        assert!(s.records_for(&fq("missing.on.aws")).is_empty());
    }

    #[test]
    fn for_each_row_visits_everything() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("a.on.aws"), &a(1), day(0), 4);
        s.observe_count(&fq("b.on.aws"), &a(2), day(1), 6);
        let mut total = 0u64;
        let mut rows = 0usize;
        s.for_each_row(|_, _, _, _, cnt| {
            total += cnt;
            rows += 1;
        });
        assert_eq!(total, 10);
        assert_eq!(rows, 2);
    }

    #[test]
    fn shared_store_acts_as_sensor() {
        use crate::resolver::Sensor;
        let shared = SharedPdns::new();
        shared.observe(&fq("s.on.aws"), &a(3), day(2));
        assert_eq!(shared.lock().fqdn_count(), 1);
    }

    #[test]
    fn backend_trait_mirrors_inherent_api() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("a.on.aws"), &a(1), day(0), 4);
        s.observe_count(&fq("b.on.aws"), &a(2), day(1), 6);
        let backend: &dyn PdnsBackend = &s;
        assert_eq!(backend.fqdn_count(), 2);
        assert_eq!(backend.record_count(), 2);
        let mut seen = Vec::new();
        backend.for_each_fqdn(&mut |f| seen.push(f.clone()));
        seen.sort();
        assert_eq!(seen, vec![fq("a.on.aws"), fq("b.on.aws")]);
        let aggs = backend.all_aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].fqdn, fq("a.on.aws"));
        assert_eq!(aggs[0].total_request_cnt, 4);

        let copy = PdnsStore::from_backend(&s);
        assert_eq!(copy.all_aggregates(), aggs);
    }

    #[test]
    fn intern_index_stays_consistent_under_many_rdatas() {
        let mut s = PdnsStore::new();
        let f = fq("fanout.on.aws");
        for i in 0..300u16 {
            let r = Rdata::V4(Ipv4Addr::new(198, 51, (i >> 8) as u8, (i & 0xff) as u8));
            s.observe(&f, &r, day(0));
            // Re-observing must reuse the interned index, not mint rows.
            s.observe(&f, &r, day(0));
        }
        assert_eq!(s.record_count(), 300);
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.rdata_dist.len(), 300);
        assert_eq!(agg.total_request_cnt, 600);
    }

    #[test]
    fn records_sorted_by_date() {
        let mut s = PdnsStore::new();
        let f = fq("sorted.on.aws");
        s.observe(&f, &a(1), day(5));
        s.observe(&f, &a(1), day(1));
        s.observe(&f, &a(1), day(3));
        let recs = s.records_for(&f);
        let dates: Vec<_> = recs.iter().map(|r| r.pdate).collect();
        assert_eq!(dates, vec![day(1), day(3), day(5)]);
    }
}
