//! Passive-DNS store.
//!
//! Mirrors the dataset of paper §3.2: records aggregated at the daily level
//! as `<fqdn, rtype, rdata, first_seen, last_seen, request_cnt, pdate>`
//! tuples, plus the per-fqdn aggregation used throughout §4:
//! `first_seen_all`, `last_seen_all`, `days_count`, `total_request_cnt` and
//! the distribution of resolution results.
//!
//! Rdata values are interned per fqdn, so the memory cost of a row is one
//! day stamp, one small index and one counter — the store comfortably holds
//! full-scale (531k-domain) synthetic worlds.

use crate::resolver::Sensor;
use fw_types::{DayStamp, Fqdn, Rdata, RecordType};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One materialized PDNS tuple (daily aggregate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdnsRecord {
    pub fqdn: Fqdn,
    pub rtype: RecordType,
    pub rdata: Rdata,
    /// First observation on `pdate` (day granularity in this store).
    pub first_seen: DayStamp,
    /// Last observation on `pdate`.
    pub last_seen: DayStamp,
    pub request_cnt: u64,
    pub pdate: DayStamp,
}

/// One streamed daily observation — the wire-level unit the sensing
/// daemon (`fw-stream`) ingests and the delta-driven identify/usage
/// updaters in `fw-core` consume. Unlike [`PdnsRecord`] it carries no
/// derived first/last-seen state: it is a raw `(fqdn, rdata, day, cnt)`
/// fact, and replaying any permutation of the same multiset of rows
/// into a [`PdnsBackend`] (or the incremental engines) yields the same
/// aggregates. The record type is derivable via `rdata.rtype()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdnsRow {
    pub fqdn: Fqdn,
    pub rdata: Rdata,
    pub day: DayStamp,
    pub cnt: u64,
}

#[derive(Debug, Clone, Copy)]
struct DailyRow {
    pdate: DayStamp,
    rdata_idx: u32,
    cnt: u64,
}

#[derive(Debug, Default)]
struct FqdnEntry {
    rdatas: Vec<Rdata>,
    /// rdata → index side table; high-fanout ingress fqdns (anycast
    /// frontends) see hundreds of distinct rdatas, so interning must not
    /// scan `rdatas` linearly per observation.
    rdata_index: HashMap<Rdata, u32>,
    rows: Vec<DailyRow>,
}

impl FqdnEntry {
    fn intern(&mut self, rdata: &Rdata) -> u32 {
        if let Some(&i) = self.rdata_index.get(rdata) {
            return i;
        }
        let i = self.rdatas.len() as u32;
        self.rdatas.push(rdata.clone());
        self.rdata_index.insert(rdata.clone(), i);
        i
    }
}

/// Per-fqdn aggregate (paper §3.2 "key metrics").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FqdnAggregate {
    pub fqdn: Fqdn,
    pub first_seen_all: DayStamp,
    pub last_seen_all: DayStamp,
    /// Number of distinct days with observed resolutions.
    pub days_count: u32,
    pub total_request_cnt: u64,
    /// Distribution of resolution results: `(rdata, total requests)`.
    pub rdata_dist: Vec<(Rdata, u64)>,
}

impl FqdnAggregate {
    /// Lifespan in days, inclusive of both endpoints (≥ 1).
    pub fn lifespan_days(&self) -> i64 {
        self.last_seen_all - self.first_seen_all + 1
    }

    /// Activity density: fraction of lifespan days with observed activity.
    /// Single-day functions have density 1 by definition.
    pub fn activity_density(&self) -> f64 {
        self.days_count as f64 / self.lifespan_days() as f64
    }
}

/// Storage-engine abstraction over PDNS daily aggregates.
///
/// The measurement pipeline (`fw-core`) only needs this narrow, object-safe
/// surface, so it runs unchanged against the in-memory [`PdnsStore`] and the
/// persistent sharded segment store in `fw-store`. Callbacks take
/// `&mut dyn FnMut` so the trait stays object-safe; iteration order is
/// backend-defined and consumers must not rely on it.
///
/// `Sync` is a supertrait: both shipped backends are trivially shareable,
/// and requiring it here lets the provided [`PdnsBackend::par_aggregates`]
/// fan read-only aggregation out across threads for any backend —
/// including through `&dyn PdnsBackend`.
pub trait PdnsBackend: Sync {
    /// Record `count` observations of `fqdn → rdata` on `day`.
    fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64);

    /// Number of distinct fqdns observed.
    fn fqdn_count(&self) -> usize;

    /// Number of daily-aggregate rows. Backends may merge duplicate
    /// `(fqdn, rdata, pdate)` keys differently, so this is a storage
    /// metric, not an analysis input.
    fn record_count(&self) -> usize;

    /// Visit every observed fqdn (backend-defined order).
    fn for_each_fqdn(&self, f: &mut dyn FnMut(&Fqdn));

    /// Visit every daily row as `(fqdn, rtype, rdata, pdate, request_cnt)`.
    /// The callback must not call back into the same backend (sharded
    /// backends hold a shard lock across the visit); `for_each_fqdn` has
    /// no such restriction — calling [`PdnsBackend::aggregate`] from its
    /// callback is the expected identification-stage pattern.
    fn for_each_row(&self, f: &mut dyn FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64));

    /// Per-fqdn aggregate (paper §3.2), or `None` if the fqdn is unknown.
    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate>;

    /// Visit one fqdn's daily rows as `(rtype, rdata, pdate, request_cnt)`
    /// in `(pdate, rdata text)` order — exactly the rows and order of
    /// `PdnsStore::records_for`, without allocating owned `PdnsRecord`s.
    /// A no-op for unknown fqdns. Sharded backends may hold a shard lock
    /// across the visit, so the callback must not call back into the same
    /// backend.
    fn for_each_record_of(&self, fqdn: &Fqdn, f: &mut dyn FnMut(RecordType, &Rdata, DayStamp, u64));

    /// All aggregates, sorted by fqdn — deterministic across backends, so
    /// equivalence tests can compare stores element-wise.
    fn all_aggregates(&self) -> Vec<FqdnAggregate> {
        let mut out = Vec::with_capacity(self.fqdn_count());
        self.for_each_fqdn(&mut |fqdn| {
            out.push(self.aggregate(fqdn).expect("fqdn is in the store"));
        });
        out.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
        out
    }

    /// All observed fqdns, sorted. The deterministic work-list the
    /// parallel aggregation path fans out over.
    fn sorted_fqdns(&self) -> Vec<Fqdn> {
        let mut out = Vec::with_capacity(self.fqdn_count());
        self.for_each_fqdn(&mut |fqdn| out.push(fqdn.clone()));
        out.sort();
        out
    }

    /// [`PdnsBackend::all_aggregates`], computed on up to `workers`
    /// threads. Identical output at any worker count: the work-list is
    /// the sorted fqdn list and `par_map_indexed` merges in input order.
    /// Backends with cheaper internal parallelism (per-shard locks)
    /// override this.
    fn par_aggregates(&self, workers: usize) -> Vec<FqdnAggregate> {
        let fqdns = self.sorted_fqdns();
        fw_analysis::par::par_map_indexed(&fqdns, workers, |_, fqdn| {
            self.aggregate(fqdn).expect("fqdn is in the store")
        })
    }
}

/// Order one entry's rows by `(pdate, rdata text)` — the canonical
/// `records_for` order, shared by the owned and visitor read paths.
/// Each interned rdata's text is rendered once; sorting by
/// `rdata.text()` directly would re-allocate the text per comparison.
fn sorted_rows<'e>(rows: &'e [DailyRow], rdatas: &'e [Rdata]) -> Vec<(&'e DailyRow, &'e Rdata)> {
    let texts: Vec<String> = rdatas.iter().map(|r| r.text()).collect();
    let mut order: Vec<&DailyRow> = rows.iter().collect();
    order.sort_by(|a, b| {
        (a.pdate, texts[a.rdata_idx as usize].as_str())
            .cmp(&(b.pdate, texts[b.rdata_idx as usize].as_str()))
    });
    order
        .into_iter()
        .map(|row| (row, &rdatas[row.rdata_idx as usize]))
        .collect()
}

/// The passive-DNS record store.
#[derive(Debug, Default)]
pub struct PdnsStore {
    entries: HashMap<Fqdn, FqdnEntry>,
    total_rows: usize,
}

impl PdnsStore {
    pub fn new() -> PdnsStore {
        PdnsStore::default()
    }

    /// Record one observation of `fqdn → rdata` on `day`.
    pub fn observe(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
        self.observe_count(fqdn, rdata, day, 1);
    }

    /// Record `count` observations at once (bulk ingestion path used by the
    /// workload generator, which produces daily aggregates directly).
    pub fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        if count == 0 {
            return;
        }
        fw_obs::counter_inc!("fw.dns.pdns.rows_ingested");
        let entry = self.entries.entry(fqdn.clone()).or_default();
        let idx = entry.intern(rdata);
        // Same-day observations arrive consecutively in both ingestion
        // paths; scan the tail of the row list for a mergeable row.
        for row in entry.rows.iter_mut().rev() {
            if row.pdate != day {
                break;
            }
            if row.rdata_idx == idx {
                row.cnt += count;
                fw_obs::counter_inc!("fw.dns.pdns.dedup_merged");
                return;
            }
        }
        entry.rows.push(DailyRow {
            pdate: day,
            rdata_idx: idx,
            cnt: count,
        });
        self.total_rows += 1;
    }

    /// Number of distinct fqdns observed.
    pub fn fqdn_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of daily-aggregate rows.
    pub fn record_count(&self) -> usize {
        self.total_rows
    }

    /// Iterate all fqdns (arbitrary order).
    pub fn fqdns(&self) -> impl Iterator<Item = &Fqdn> {
        self.entries.keys()
    }

    /// Materialize the records for one fqdn, sorted by `(pdate, rdata)`.
    pub fn records_for(&self, fqdn: &Fqdn) -> Vec<PdnsRecord> {
        let Some(entry) = self.entries.get(fqdn) else {
            return Vec::new();
        };
        sorted_rows(&entry.rows, &entry.rdatas)
            .into_iter()
            .map(|(row, rdata)| PdnsRecord {
                fqdn: fqdn.clone(),
                rtype: rdata.rtype(),
                rdata: rdata.clone(),
                first_seen: row.pdate,
                last_seen: row.pdate,
                request_cnt: row.cnt,
                pdate: row.pdate,
            })
            .collect()
    }

    /// Visit one fqdn's rows in `records_for` order (`(pdate, rdata
    /// text)`) without materializing owned `PdnsRecord`s — the hot-path
    /// replacement for `records_for` in `identify`/`usage`, which only
    /// read each row once.
    pub fn for_each_record_of<F>(&self, fqdn: &Fqdn, mut f: F)
    where
        F: FnMut(RecordType, &Rdata, DayStamp, u64),
    {
        let Some(entry) = self.entries.get(fqdn) else {
            return;
        };
        for (row, rdata) in sorted_rows(&entry.rows, &entry.rdatas) {
            f(rdata.rtype(), rdata, row.pdate, row.cnt);
        }
    }

    /// Move another store's entries into this one. Entry moves are O(1)
    /// per fqdn when the key sets are disjoint (the parallel generator's
    /// shard merge — each fqdn is minted by exactly one shard); colliding
    /// fqdns fall back to row-by-row replay with exact `(pdate, rdata)`
    /// merging, which commutes, so the merged store is independent of
    /// absorb order for a given shard sequence.
    pub fn absorb(&mut self, other: PdnsStore) {
        if self.entries.is_empty() {
            *self = other;
            return;
        }
        for (fqdn, src) in other.entries {
            match self.entries.entry(fqdn) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.total_rows += src.rows.len();
                    v.insert(src);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let dst = o.get_mut();
                    let mut by_key: HashMap<(DayStamp, u32), usize> = dst
                        .rows
                        .iter()
                        .enumerate()
                        .map(|(i, r)| ((r.pdate, r.rdata_idx), i))
                        .collect();
                    for row in src.rows {
                        let idx = dst.intern(&src.rdatas[row.rdata_idx as usize]);
                        match by_key.entry((row.pdate, idx)) {
                            std::collections::hash_map::Entry::Occupied(pos) => {
                                dst.rows[*pos.get()].cnt += row.cnt;
                            }
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                slot.insert(dst.rows.len());
                                dst.rows.push(DailyRow {
                                    pdate: row.pdate,
                                    rdata_idx: idx,
                                    cnt: row.cnt,
                                });
                                self.total_rows += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Visit every daily row without materializing owned records. The
    /// visitor receives `(fqdn, rtype, rdata, pdate, request_cnt)`.
    pub fn for_each_row<F>(&self, mut f: F)
    where
        F: FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64),
    {
        for (fqdn, entry) in &self.entries {
            for row in &entry.rows {
                let rdata = &entry.rdatas[row.rdata_idx as usize];
                f(fqdn, rdata.rtype(), rdata, row.pdate, row.cnt);
            }
        }
    }

    /// Per-fqdn aggregate (paper §3.2).
    pub fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        let entry = self.entries.get(fqdn)?;
        let mut first = DayStamp(i64::MAX);
        let mut last = DayStamp(i64::MIN);
        let mut total = 0u64;
        let mut dist: Vec<u64> = vec![0; entry.rdatas.len()];
        let mut days: Vec<DayStamp> = Vec::with_capacity(entry.rows.len());
        for row in &entry.rows {
            first = first.min(row.pdate);
            last = last.max(row.pdate);
            total += row.cnt;
            dist[row.rdata_idx as usize] += row.cnt;
            days.push(row.pdate);
        }
        days.sort_unstable();
        days.dedup();
        // Sorted by rdata so aggregates from different backends (whose
        // interning orders differ) compare equal with plain `==`.
        let mut rdata_dist: Vec<(Rdata, u64)> = entry.rdatas.iter().cloned().zip(dist).collect();
        rdata_dist.sort_by(|a, b| a.0.cmp(&b.0));
        Some(FqdnAggregate {
            fqdn: fqdn.clone(),
            first_seen_all: first,
            last_seen_all: last,
            days_count: days.len() as u32,
            total_request_cnt: total,
            rdata_dist,
        })
    }

    /// Aggregates for every fqdn (arbitrary order).
    pub fn aggregates(&self) -> impl Iterator<Item = FqdnAggregate> + '_ {
        self.entries
            .keys()
            .map(|f| self.aggregate(f).expect("known fqdn aggregates"))
    }
}

impl PdnsStore {
    /// Materialize any backend's rows into a fresh in-memory store (used
    /// when an analysis needs mutation on top of a read-only snapshot).
    pub fn from_backend<B: PdnsBackend + ?Sized>(backend: &B) -> PdnsStore {
        let mut store = PdnsStore::new();
        backend.for_each_row(&mut |fqdn, _rtype, rdata, pdate, cnt| {
            store.observe_count(fqdn, rdata, pdate, cnt);
        });
        store
    }
}

impl PdnsBackend for PdnsStore {
    fn observe_count(&mut self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp, count: u64) {
        PdnsStore::observe_count(self, fqdn, rdata, day, count);
    }

    fn fqdn_count(&self) -> usize {
        PdnsStore::fqdn_count(self)
    }

    fn record_count(&self) -> usize {
        PdnsStore::record_count(self)
    }

    fn for_each_fqdn(&self, f: &mut dyn FnMut(&Fqdn)) {
        for fqdn in self.fqdns() {
            f(fqdn);
        }
    }

    fn for_each_row(&self, f: &mut dyn FnMut(&Fqdn, RecordType, &Rdata, DayStamp, u64)) {
        PdnsStore::for_each_row(self, |fqdn, rtype, rdata, pdate, cnt| {
            f(fqdn, rtype, rdata, pdate, cnt)
        });
    }

    fn aggregate(&self, fqdn: &Fqdn) -> Option<FqdnAggregate> {
        PdnsStore::aggregate(self, fqdn)
    }

    fn for_each_record_of(
        &self,
        fqdn: &Fqdn,
        f: &mut dyn FnMut(RecordType, &Rdata, DayStamp, u64),
    ) {
        PdnsStore::for_each_record_of(self, fqdn, |rtype, rdata, pdate, cnt| {
            f(rtype, rdata, pdate, cnt)
        });
    }
}

/// Shareable PDNS store usable as a resolver [`Sensor`].
#[derive(Clone, Default)]
pub struct SharedPdns(pub Arc<Mutex<PdnsStore>>);

impl SharedPdns {
    pub fn new() -> SharedPdns {
        SharedPdns::default()
    }

    pub fn lock(&self) -> parking_lot::MutexGuard<'_, PdnsStore> {
        self.0.lock()
    }
}

impl Sensor for SharedPdns {
    fn observe(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
        self.0.lock().observe(fqdn, rdata, day);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn a(last: u8) -> Rdata {
        Rdata::V4(Ipv4Addr::new(198, 51, 100, last))
    }

    fn day(n: i64) -> DayStamp {
        fw_types::MEASUREMENT_START + n
    }

    #[test]
    fn same_day_same_rdata_merges() {
        let mut s = PdnsStore::new();
        let f = fq("x.on.aws");
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(1), day(0));
        assert_eq!(s.record_count(), 1);
        let recs = s.records_for(&f);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].request_cnt, 3);
        assert_eq!(recs[0].pdate, day(0));
    }

    #[test]
    fn different_rdata_same_day_splits_rows() {
        let mut s = PdnsStore::new();
        let f = fq("x.on.aws");
        s.observe(&f, &a(1), day(0));
        s.observe(&f, &a(2), day(0));
        s.observe(&f, &a(1), day(0));
        assert_eq!(s.record_count(), 2);
        let recs = s.records_for(&f);
        let total: u64 = recs.iter().map(|r| r.request_cnt).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn aggregate_matches_paper_fields() {
        let mut s = PdnsStore::new();
        let f = fq("fn.a.run.app");
        s.observe_count(&f, &a(1), day(0), 5);
        s.observe_count(&f, &a(1), day(3), 2);
        s.observe_count(&f, &Rdata::Name(fq("edge.a.run.app")), day(3), 1);
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.first_seen_all, day(0));
        assert_eq!(agg.last_seen_all, day(3));
        assert_eq!(agg.days_count, 2);
        assert_eq!(agg.total_request_cnt, 8);
        assert_eq!(agg.lifespan_days(), 4);
        assert!((agg.activity_density() - 0.5).abs() < 1e-9);
        assert_eq!(agg.rdata_dist.len(), 2);
    }

    #[test]
    fn single_day_density_is_one() {
        let mut s = PdnsStore::new();
        let f = fq("oneday.on.aws");
        s.observe(&f, &a(1), day(10));
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.lifespan_days(), 1);
        assert!((agg.activity_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_count_is_ignored() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("z.on.aws"), &a(1), day(0), 0);
        assert_eq!(s.fqdn_count(), 0);
        assert_eq!(s.record_count(), 0);
    }

    #[test]
    fn unknown_fqdn_has_no_aggregate() {
        let s = PdnsStore::new();
        assert!(s.aggregate(&fq("missing.on.aws")).is_none());
        assert!(s.records_for(&fq("missing.on.aws")).is_empty());
    }

    #[test]
    fn for_each_row_visits_everything() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("a.on.aws"), &a(1), day(0), 4);
        s.observe_count(&fq("b.on.aws"), &a(2), day(1), 6);
        let mut total = 0u64;
        let mut rows = 0usize;
        s.for_each_row(|_, _, _, _, cnt| {
            total += cnt;
            rows += 1;
        });
        assert_eq!(total, 10);
        assert_eq!(rows, 2);
    }

    #[test]
    fn shared_store_acts_as_sensor() {
        use crate::resolver::Sensor;
        let shared = SharedPdns::new();
        shared.observe(&fq("s.on.aws"), &a(3), day(2));
        assert_eq!(shared.lock().fqdn_count(), 1);
    }

    #[test]
    fn backend_trait_mirrors_inherent_api() {
        let mut s = PdnsStore::new();
        s.observe_count(&fq("a.on.aws"), &a(1), day(0), 4);
        s.observe_count(&fq("b.on.aws"), &a(2), day(1), 6);
        let backend: &dyn PdnsBackend = &s;
        assert_eq!(backend.fqdn_count(), 2);
        assert_eq!(backend.record_count(), 2);
        let mut seen = Vec::new();
        backend.for_each_fqdn(&mut |f| seen.push(f.clone()));
        seen.sort();
        assert_eq!(seen, vec![fq("a.on.aws"), fq("b.on.aws")]);
        let aggs = backend.all_aggregates();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].fqdn, fq("a.on.aws"));
        assert_eq!(aggs[0].total_request_cnt, 4);

        let copy = PdnsStore::from_backend(&s);
        assert_eq!(copy.all_aggregates(), aggs);
    }

    #[test]
    fn intern_index_stays_consistent_under_many_rdatas() {
        let mut s = PdnsStore::new();
        let f = fq("fanout.on.aws");
        for i in 0..300u16 {
            let r = Rdata::V4(Ipv4Addr::new(198, 51, (i >> 8) as u8, (i & 0xff) as u8));
            s.observe(&f, &r, day(0));
            // Re-observing must reuse the interned index, not mint rows.
            s.observe(&f, &r, day(0));
        }
        assert_eq!(s.record_count(), 300);
        let agg = s.aggregate(&f).unwrap();
        assert_eq!(agg.rdata_dist.len(), 300);
        assert_eq!(agg.total_request_cnt, 600);
    }

    #[test]
    fn absorb_disjoint_and_colliding_stores() {
        // Disjoint: plain entry moves.
        let mut base = PdnsStore::new();
        base.observe_count(&fq("a.on.aws"), &a(1), day(0), 4);
        let mut other = PdnsStore::new();
        other.observe_count(&fq("b.on.aws"), &a(2), day(1), 6);
        base.absorb(other);
        assert_eq!(base.fqdn_count(), 2);
        assert_eq!(base.record_count(), 2);

        // Colliding fqdn: exact (pdate, rdata) keys merge, new keys append.
        let mut collide = PdnsStore::new();
        collide.observe_count(&fq("a.on.aws"), &a(1), day(0), 10); // merges
        collide.observe_count(&fq("a.on.aws"), &a(3), day(0), 1); // new rdata
        collide.observe_count(&fq("a.on.aws"), &a(1), day(5), 2); // new day
        base.absorb(collide);
        assert_eq!(base.fqdn_count(), 2);
        assert_eq!(base.record_count(), 4);
        let agg = base.aggregate(&fq("a.on.aws")).unwrap();
        assert_eq!(agg.total_request_cnt, 17);
        assert_eq!(agg.days_count, 2);

        // Absorbing into an empty store is a move.
        let mut empty = PdnsStore::new();
        empty.absorb(PdnsStore::from_backend(&base));
        assert_eq!(empty.all_aggregates(), base.all_aggregates());
        assert_eq!(empty.record_count(), base.record_count());
    }

    #[test]
    fn sharded_build_and_absorb_equals_serial_build() {
        // The parallel generator's merge pattern: each fqdn's rows all
        // come from one shard; absorbing in shard order must reproduce
        // the serially built store exactly (aggregates and row dumps).
        let build = |stores: &mut [PdnsStore]| {
            for i in 0..40u8 {
                let f = fq(&format!("fn{i}.on.aws"));
                let shard = (i % stores.len() as u8) as usize;
                for d in 0..4 {
                    stores[shard].observe_count(&f, &a(i % 7), day(d), u64::from(i) + 1);
                }
            }
        };
        let mut serial = vec![PdnsStore::new()];
        build(&mut serial);
        let serial = serial.pop().unwrap();
        for shards in [2usize, 3, 8] {
            let mut parts: Vec<PdnsStore> = (0..shards).map(|_| PdnsStore::new()).collect();
            build(&mut parts);
            let mut merged = PdnsStore::new();
            for part in parts {
                merged.absorb(part);
            }
            assert_eq!(merged.all_aggregates(), serial.all_aggregates());
            assert_eq!(merged.record_count(), serial.record_count());
        }
    }

    #[test]
    fn par_aggregates_default_matches_all_aggregates() {
        let mut s = PdnsStore::new();
        for i in 0..30u8 {
            s.observe_count(&fq(&format!("p{i}.on.aws")), &a(i), day(i64::from(i)), 2);
        }
        let want = s.all_aggregates();
        for workers in [1, 3, 8] {
            assert_eq!(s.par_aggregates(workers), want, "workers={workers}");
        }
        assert_eq!(
            s.sorted_fqdns(),
            want.iter().map(|a| a.fqdn.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn records_sorted_by_date() {
        let mut s = PdnsStore::new();
        let f = fq("sorted.on.aws");
        s.observe(&f, &a(1), day(5));
        s.observe(&f, &a(1), day(1));
        s.observe(&f, &a(1), day(3));
        let recs = s.records_for(&f);
        let dates: Vec<_> = recs.iter().map(|r| r.pdate).collect();
        assert_eq!(dates, vec![day(1), day(3), day(5)]);
    }
}
