//! # fw-dns
//!
//! The DNS substrate for `faaswild`:
//!
//! * [`wire`] — an RFC 1035 message codec (header, questions, resource
//!   records, name compression) built from scratch. The simulated resolver
//!   can answer over real wire bytes, and the codec is property-tested for
//!   encode/decode round-trips.
//! * [`zone`] — authoritative zones with exact and wildcard records plus
//!   CNAME chains. Providers in `fw-cloud` publish their ingress records
//!   here; Tencent's "no wildcard" policy (paper §4.4) is a zone flag.
//! * [`resolver`] — a recursive resolver with a TTL cache and a pluggable
//!   *passive-DNS sensor*: every client query is observed the way the
//!   paper's collaborating resolver operator observes traffic.
//! * [`pdns`] — the passive-DNS store: daily-aggregated
//!   `<fqdn, rtype, rdata, first_seen, last_seen, request_cnt, pdate>`
//!   tuples and the per-fqdn aggregates (`first_seen_all`, `days_count`,
//!   `total_request_cnt`, rdata distribution) that §3.2 computes.

pub mod pdns;
pub mod resolver;
pub mod wire;
pub mod zone;

pub use pdns::{FqdnAggregate, PdnsRecord, PdnsRow, PdnsStore};
pub use resolver::{ResolveError, Resolver};
pub use zone::Zone;
