//! Authoritative zones.
//!
//! Each cloud provider publishes one zone per domain suffix (for instance
//! `scf.tencentcs.com`). A zone holds exact-name records and, optionally, a
//! wildcard record set that answers for any name under the origin — the
//! paper observes that every provider except Tencent enables wildcard
//! resolution, which is why deleted Tencent functions are the only ones to
//! return NXDOMAIN (§4.4).

use fw_types::{Fqdn, Rdata, RecordType};
use std::collections::HashMap;

/// Outcome of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Records of the requested type (possibly preceded by CNAMEs the
    /// resolver should chase).
    Records(Vec<(Rdata, u32)>),
    /// The name exists but has no records of the requested type.
    NoData,
    /// The name does not exist in this zone.
    NxDomain,
}

/// An authoritative zone for one domain suffix.
#[derive(Debug, Clone)]
pub struct Zone {
    origin: Fqdn,
    /// Exact records: name → (rdata, ttl) list.
    records: HashMap<Fqdn, Vec<(Rdata, u32)>>,
    /// Wildcard records answering `*.<origin>`; `None` disables wildcards.
    wildcard: Option<Vec<(Rdata, u32)>>,
}

impl Zone {
    /// Create an empty zone rooted at `origin`.
    pub fn new(origin: Fqdn) -> Zone {
        Zone {
            origin,
            records: HashMap::new(),
            wildcard: None,
        }
    }

    /// The zone origin (suffix served by this zone).
    pub fn origin(&self) -> &Fqdn {
        &self.origin
    }

    /// Does this zone answer for `name`?
    pub fn covers(&self, name: &Fqdn) -> bool {
        name.has_suffix(self.origin.as_str())
    }

    /// Add a record for an exact name (which must fall under the origin).
    pub fn add(&mut self, name: Fqdn, rdata: Rdata, ttl: u32) {
        debug_assert!(
            self.covers(&name) || name == self.origin,
            "record {name} outside zone {}",
            self.origin
        );
        self.records.entry(name).or_default().push((rdata, ttl));
    }

    /// Remove all records for a name (function deletion).
    pub fn remove(&mut self, name: &Fqdn) {
        self.records.remove(name);
    }

    /// Enable wildcard resolution: any non-existing name under the origin
    /// resolves to these records (the behaviour of every provider except
    /// Tencent in the paper).
    pub fn set_wildcard(&mut self, records: Vec<(Rdata, u32)>) {
        self.wildcard = Some(records);
    }

    /// Disable wildcard resolution (Tencent policy).
    pub fn clear_wildcard(&mut self) {
        self.wildcard = None;
    }

    pub fn has_wildcard(&self) -> bool {
        self.wildcard.is_some()
    }

    /// Number of exact names in the zone.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Does an exact record set exist for this name?
    pub fn contains(&self, name: &Fqdn) -> bool {
        self.records.contains_key(name)
    }

    /// Authoritative lookup for `name` with record type `rtype`.
    ///
    /// CNAME semantics: if the name owns a CNAME and the query is not for
    /// CNAME itself, the CNAME record is returned (type `Cname`) and the
    /// resolver chases it.
    pub fn lookup(&self, name: &Fqdn, rtype: RecordType) -> LookupOutcome {
        if let Some(set) = self.records.get(name) {
            // CNAME short-circuits other types.
            if rtype != RecordType::Cname {
                let cnames: Vec<(Rdata, u32)> = set
                    .iter()
                    .filter(|(r, _)| r.rtype() == RecordType::Cname)
                    .cloned()
                    .collect();
                if !cnames.is_empty() {
                    return LookupOutcome::Records(cnames);
                }
            }
            let matched: Vec<(Rdata, u32)> = set
                .iter()
                .filter(|(r, _)| r.rtype() == rtype)
                .cloned()
                .collect();
            if matched.is_empty() {
                LookupOutcome::NoData
            } else {
                LookupOutcome::Records(matched)
            }
        } else if self.covers(name) {
            match &self.wildcard {
                Some(wc) => {
                    let matched: Vec<(Rdata, u32)> = wc
                        .iter()
                        .filter(|(r, _)| {
                            r.rtype() == rtype
                                || (rtype != RecordType::Cname && r.rtype() == RecordType::Cname)
                        })
                        .cloned()
                        .collect();
                    if matched.is_empty() {
                        LookupOutcome::NoData
                    } else {
                        LookupOutcome::Records(matched)
                    }
                }
                None => LookupOutcome::NxDomain,
            }
        } else {
            LookupOutcome::NxDomain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn a(ip: [u8; 4]) -> Rdata {
        Rdata::V4(Ipv4Addr::from(ip))
    }

    #[test]
    fn exact_lookup() {
        let mut z = Zone::new(fq("scf.tencentcs.com"));
        z.add(fq("uid-rand-gz.scf.tencentcs.com"), a([1, 2, 3, 4]), 60);
        match z.lookup(&fq("uid-rand-gz.scf.tencentcs.com"), RecordType::A) {
            LookupOutcome::Records(r) => assert_eq!(r[0].0, a([1, 2, 3, 4])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_name_without_wildcard_is_nxdomain() {
        let z = Zone::new(fq("scf.tencentcs.com"));
        assert_eq!(
            z.lookup(&fq("gone.scf.tencentcs.com"), RecordType::A),
            LookupOutcome::NxDomain
        );
    }

    #[test]
    fn wildcard_answers_unknown_names() {
        let mut z = Zone::new(fq("on.aws"));
        z.set_wildcard(vec![(a([9, 9, 9, 9]), 60)]);
        match z.lookup(&fq("deleted.lambda-url.us-east-1.on.aws"), RecordType::A) {
            LookupOutcome::Records(r) => assert_eq!(r[0].0, a([9, 9, 9, 9])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cname_shortcircuits_a_queries() {
        let mut z = Zone::new(fq("fcapp.run"));
        z.add(
            fq("fn-proj-abc.cn-shanghai.fcapp.run"),
            Rdata::Name(fq("ingress.cn-shanghai.fcapp.run")),
            300,
        );
        z.add(fq("ingress.cn-shanghai.fcapp.run"), a([7, 7, 7, 7]), 60);
        match z.lookup(&fq("fn-proj-abc.cn-shanghai.fcapp.run"), RecordType::A) {
            LookupOutcome::Records(r) => {
                assert_eq!(r[0].0.rtype(), RecordType::Cname);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_for_missing_type() {
        let mut z = Zone::new(fq("on.aws"));
        z.add(fq("x.lambda-url.us-east-1.on.aws"), a([1, 1, 1, 1]), 60);
        assert_eq!(
            z.lookup(&fq("x.lambda-url.us-east-1.on.aws"), RecordType::Aaaa),
            LookupOutcome::NoData
        );
    }

    #[test]
    fn removal_turns_wildcardless_zone_to_nxdomain() {
        let mut z = Zone::new(fq("scf.tencentcs.com"));
        let name = fq("f.scf.tencentcs.com");
        z.add(name.clone(), a([1, 2, 3, 4]), 60);
        z.remove(&name);
        assert_eq!(z.lookup(&name, RecordType::A), LookupOutcome::NxDomain);
    }

    #[test]
    fn out_of_zone_is_nxdomain() {
        let z = Zone::new(fq("on.aws"));
        assert_eq!(
            z.lookup(&fq("example.com"), RecordType::A),
            LookupOutcome::NxDomain
        );
    }
}
