//! A recursive resolver with TTL caching and a passive-DNS sensor hook.
//!
//! This plays the role of the collaborating DNS operator in the paper: all
//! client queries flow through recursive resolvers, and a sensor records
//! `(fqdn, rdata)` observations into the PDNS store (`fw-dns::pdns`). The
//! resolver also answers over RFC 1035 wire bytes via [`Resolver::serve_wire`].

use crate::wire::{Message, QType, Rcode, ResourceRecord, RrData};
use crate::zone::{LookupOutcome, Zone};
use fw_types::{DayStamp, Fqdn, Rdata, RecordType};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Maximum CNAME chain length before giving up.
const MAX_CHAIN: usize = 8;

/// Observer of resolved answers — the passive-DNS tap.
pub trait Sensor: Send + Sync {
    /// Called once per `(owner name, rdata)` answer pair of a successful
    /// resolution observed on `day`.
    fn observe(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp);
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Name does not exist (authoritative NXDOMAIN).
    NxDomain,
    /// Name exists but has no records of the requested type.
    NoRecords,
    /// No zone is authoritative for the name (simulated internet only
    /// contains provider zones).
    NoZone,
    /// CNAME chain exceeded [`MAX_CHAIN`].
    ChainTooLong,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain => write!(f, "NXDOMAIN"),
            ResolveError::NoRecords => write!(f, "no records of requested type"),
            ResolveError::NoZone => write!(f, "no authoritative zone"),
            ResolveError::ChainTooLong => write!(f, "cname chain too long"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// A successful resolution: the full answer chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// `(owner, rdata)` pairs, CNAMEs first, then terminal records.
    pub answers: Vec<(Fqdn, Rdata)>,
    /// Whether the answer came from the resolver cache.
    pub from_cache: bool,
}

impl Resolution {
    /// Terminal addresses (A/AAAA) of the chain.
    pub fn addresses(&self) -> Vec<Rdata> {
        self.answers
            .iter()
            .filter(|(_, r)| r.rtype() != RecordType::Cname)
            .map(|(_, r)| r.clone())
            .collect()
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    answers: Vec<(Fqdn, Rdata)>,
    expires_at: u64,
}

/// Resolver counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    pub queries: u64,
    pub cache_hits: u64,
    pub nxdomain: u64,
    pub servfail: u64,
}

/// Internal atomic counters, snapshot as [`ResolverStats`].
#[derive(Debug, Default)]
struct AtomicStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    nxdomain: AtomicU64,
    servfail: AtomicU64,
}

/// Number of cache shards. Keys are spread by an FNV-1a hash, so 16
/// probe workers hitting distinct domains almost never contend on the
/// same shard lock.
const CACHE_SHARDS: usize = 16;

type CacheShard = RwLock<HashMap<(Fqdn, RecordType), CacheEntry>>;

/// The recursive resolver.
///
/// The cache and counters are interior-mutable (sharded `RwLock`s and
/// atomics), so [`Resolver::resolve_shared`] serves lookups — cached or
/// not — through `&self`. Callers that hold the resolver inside an
/// outer `Arc<RwLock<..>>` can therefore stay on the outer **read**
/// lock for the entire scan/probe path; the outer write lock is only
/// needed for topology changes (`add_zone`, `zone_for_mut`,
/// `set_sensor`, `flush_cache`), which then exclude all readers.
pub struct Resolver {
    zones: Vec<Zone>,
    cache: Vec<CacheShard>,
    sensor: Option<Arc<dyn Sensor>>,
    stats: AtomicStats,
}

impl fmt::Debug for Resolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resolver")
            .field("zones", &self.zones.len())
            .field("cache_entries", &self.cache_len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Resolver {
    fn default() -> Self {
        Self::new()
    }
}

impl Resolver {
    pub fn new() -> Resolver {
        Resolver {
            zones: Vec::new(),
            cache: (0..CACHE_SHARDS).map(|_| RwLock::default()).collect(),
            sensor: None,
            stats: AtomicStats::default(),
        }
    }

    /// FNV-1a over the owner name and record type picks the shard.
    fn shard(&self, name: &Fqdn, rtype: RecordType) -> &CacheShard {
        let h = fw_types::fnv::fold(fw_types::fnv::fnv1a(name.as_str().as_bytes()), rtype as u64);
        &self.cache[(h % CACHE_SHARDS as u64) as usize]
    }

    fn cache_len(&self) -> usize {
        self.cache.iter().map(|s| s.read().len()).sum()
    }

    /// Attach the passive-DNS sensor.
    pub fn set_sensor(&mut self, sensor: Arc<dyn Sensor>) {
        self.sensor = Some(sensor);
    }

    /// Register an authoritative zone.
    pub fn add_zone(&mut self, zone: Zone) {
        self.zones.push(zone);
    }

    /// Mutable access to the zone covering `name` (longest-origin match).
    pub fn zone_for_mut(&mut self, name: &Fqdn) -> Option<&mut Zone> {
        self.zones
            .iter_mut()
            .filter(|z| z.covers(name) || z.origin() == name)
            .max_by_key(|z| z.origin().as_str().len())
    }

    fn zone_for(&self, name: &Fqdn) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| z.covers(name) || z.origin() == name)
            .max_by_key(|z| z.origin().as_str().len())
    }

    /// Counters since construction (atomic snapshot).
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            queries: self.stats.queries.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            nxdomain: self.stats.nxdomain.load(Ordering::Relaxed),
            servfail: self.stats.servfail.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries.
    pub fn flush_cache(&mut self) {
        for shard in &self.cache {
            shard.write().clear();
        }
    }

    /// Resolve `name` for record type `rtype` at virtual time `now`
    /// (seconds). Kept for API compatibility — delegates to
    /// [`Resolver::resolve_shared`], which only needs `&self`.
    pub fn resolve(
        &mut self,
        name: &Fqdn,
        rtype: RecordType,
        now: u64,
    ) -> Result<Resolution, ResolveError> {
        self.resolve_shared(name, rtype, now)
    }

    /// Resolve through `&self`: the scan/probe read path.
    ///
    /// Cached, unexpired entries are served under a shard **read** lock
    /// (the fast path — no exclusive lock anywhere); misses walk the
    /// zones (immutable under `&self`) and publish the entry under a
    /// brief shard write lock. Every client query — cached or not — is
    /// observed by the sensor, matching how a recursive-resolver PDNS
    /// vantage point sees traffic; the sensor's own interior mutability
    /// (e.g. `SharedPdns`) makes the observation append-friendly, so a
    /// cache hit never needs `&mut Resolver`.
    pub fn resolve_shared(
        &self,
        name: &Fqdn,
        rtype: RecordType,
        now: u64,
    ) -> Result<Resolution, ResolveError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let key = (name.clone(), rtype);
        let shard = self.shard(name, rtype);
        // Fast path: shared lock, no writes.
        let cached = {
            let guard = shard.read();
            guard
                .get(&key)
                .and_then(|entry| (entry.expires_at > now).then(|| entry.answers.clone()))
        };
        if let Some(answers) = cached {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            fw_obs::counter_inc!("fw.dns.resolve.fast_hit");
            self.sense(&answers, now);
            return Ok(Resolution {
                answers,
                from_cache: true,
            });
        }
        fw_obs::counter_inc!("fw.dns.resolve.slow_path");
        let _trace = fw_obs::trace_span("dns/resolve_slow");
        // Evict an expired entry (if a racing thread refreshed it in the
        // meantime, serve the refreshed copy instead).
        {
            let mut guard = shard.write();
            if let Some(entry) = guard.get(&key) {
                if entry.expires_at > now {
                    let answers = entry.answers.clone();
                    drop(guard);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.sense(&answers, now);
                    return Ok(Resolution {
                        answers,
                        from_cache: true,
                    });
                }
                guard.remove(&key);
            }
        }

        let mut answers: Vec<(Fqdn, Rdata)> = Vec::new();
        let mut min_ttl: u32 = u32::MAX;
        let mut cur = name.clone();
        for _hop in 0..MAX_CHAIN {
            let zone = match self.zone_for(&cur) {
                Some(z) => z,
                None => {
                    // Off-platform CNAME target (e.g. a telecom ingress
                    // domain): the chain ends here with what we have.
                    if answers.is_empty() {
                        return Err(ResolveError::NoZone);
                    }
                    break;
                }
            };
            match zone.lookup(&cur, rtype) {
                LookupOutcome::Records(recs) => {
                    let mut next: Option<Fqdn> = None;
                    for (rdata, ttl) in recs {
                        min_ttl = min_ttl.min(ttl);
                        if rdata.rtype() == RecordType::Cname && rtype != RecordType::Cname {
                            if let Rdata::Name(target) = &rdata {
                                next = Some(target.clone());
                            }
                        }
                        answers.push((cur.clone(), rdata));
                    }
                    match next {
                        Some(target) => cur = target,
                        None => break,
                    }
                }
                LookupOutcome::NoData => {
                    if answers.is_empty() {
                        return Err(ResolveError::NoRecords);
                    }
                    break;
                }
                LookupOutcome::NxDomain => {
                    if answers.is_empty() {
                        self.stats.nxdomain.fetch_add(1, Ordering::Relaxed);
                        return Err(ResolveError::NxDomain);
                    }
                    break;
                }
            }
            if answers.len() > 64 {
                return Err(ResolveError::ChainTooLong);
            }
        }
        if answers.is_empty() {
            return Err(ResolveError::ChainTooLong);
        }

        let ttl = if min_ttl == u32::MAX { 60 } else { min_ttl };
        shard.write().insert(
            key,
            CacheEntry {
                answers: answers.clone(),
                expires_at: now + u64::from(ttl),
            },
        );
        self.sense(&answers, now);
        Ok(Resolution {
            answers,
            from_cache: false,
        })
    }

    fn sense(&self, answers: &[(Fqdn, Rdata)], now: u64) {
        if let Some(sensor) = &self.sensor {
            let day = DayStamp((now / 86_400) as i64);
            for (owner, rdata) in answers {
                sensor.observe(owner, rdata, day);
            }
        }
    }

    /// Answer a wire-format query. Always returns an encodable response
    /// (FORMERR on undecodable input is impossible since we need the id —
    /// undecodable input yields `None`).
    pub fn serve_wire(&mut self, query: &[u8], now: u64) -> Option<Vec<u8>> {
        let msg = Message::decode(query).ok()?;
        let Some(q) = msg.questions.first() else {
            let resp = Message::response_to(&msg, Rcode::FormErr);
            return Some(resp.encode());
        };
        let rtype = match q.qtype {
            QType::A => RecordType::A,
            QType::Aaaa => RecordType::Aaaa,
            QType::Cname => RecordType::Cname,
            _ => {
                let resp = Message::response_to(&msg, Rcode::NotImp);
                return Some(resp.encode());
            }
        };
        let mut resp = match self.resolve(&q.name, rtype, now) {
            Ok(res) => {
                let mut resp = Message::response_to(&msg, Rcode::NoError);
                for (owner, rdata) in res.answers {
                    let data = match rdata {
                        Rdata::V4(ip) => RrData::A(ip),
                        Rdata::V6(ip) => RrData::Aaaa(ip),
                        Rdata::Name(n) => RrData::Cname(n),
                    };
                    resp.answers.push(ResourceRecord {
                        name: owner,
                        ttl: 60,
                        data,
                    });
                }
                resp
            }
            Err(ResolveError::NxDomain) => Message::response_to(&msg, Rcode::NxDomain),
            Err(ResolveError::NoRecords) => Message::response_to(&msg, Rcode::NoError),
            Err(_) => Message::response_to(&msg, Rcode::ServFail),
        };
        resp.flags.authoritative = false;
        Some(resp.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::net::Ipv4Addr;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    fn a(last: u8) -> Rdata {
        Rdata::V4(Ipv4Addr::new(203, 0, 113, last))
    }

    struct VecSensor(Mutex<Vec<(Fqdn, Rdata, DayStamp)>>);

    impl Sensor for VecSensor {
        fn observe(&self, fqdn: &Fqdn, rdata: &Rdata, day: DayStamp) {
            self.0.lock().push((fqdn.clone(), rdata.clone(), day));
        }
    }

    fn resolver_with_tencent() -> Resolver {
        let mut r = Resolver::new();
        let mut z = Zone::new(fq("scf.tencentcs.com"));
        z.add(
            fq("1300000001-abcdefghij-gz.scf.tencentcs.com"),
            Rdata::Name(fq("gz.scf.tencentcs.com")),
            120,
        );
        z.add(fq("gz.scf.tencentcs.com"), a(1), 60);
        r.add_zone(z);
        r
    }

    #[test]
    fn follows_cname_chain() {
        let mut r = resolver_with_tencent();
        let res = r
            .resolve(
                &fq("1300000001-abcdefghij-gz.scf.tencentcs.com"),
                RecordType::A,
                0,
            )
            .unwrap();
        assert_eq!(res.answers.len(), 2);
        assert_eq!(res.answers[0].1.rtype(), RecordType::Cname);
        assert_eq!(res.addresses(), vec![a(1)]);
    }

    #[test]
    fn caches_within_ttl_and_expires_after() {
        let mut r = resolver_with_tencent();
        let name = fq("1300000001-abcdefghij-gz.scf.tencentcs.com");
        let first = r.resolve(&name, RecordType::A, 0).unwrap();
        assert!(!first.from_cache);
        let second = r.resolve(&name, RecordType::A, 30).unwrap();
        assert!(second.from_cache);
        // min TTL of chain is 60 → expired at t=61.
        let third = r.resolve(&name, RecordType::A, 61).unwrap();
        assert!(!third.from_cache);
        assert_eq!(r.stats().cache_hits, 1);
        assert_eq!(r.stats().queries, 3);
    }

    #[test]
    fn sensor_sees_every_query_including_cache_hits() {
        let sensor = Arc::new(VecSensor(Mutex::new(Vec::new())));
        let mut r = resolver_with_tencent();
        r.set_sensor(sensor.clone());
        let name = fq("1300000001-abcdefghij-gz.scf.tencentcs.com");
        r.resolve(&name, RecordType::A, 0).unwrap();
        r.resolve(&name, RecordType::A, 10).unwrap();
        // Two queries × two answers each (CNAME + A).
        assert_eq!(sensor.0.lock().len(), 4);
    }

    #[test]
    fn nxdomain_for_unknown_tencent_name() {
        // Tencent zone has no wildcard — the paper's deleted-function case.
        let mut r = resolver_with_tencent();
        let err = r
            .resolve(
                &fq("9999999999-deleted000-gz.scf.tencentcs.com"),
                RecordType::A,
                0,
            )
            .unwrap_err();
        assert_eq!(err, ResolveError::NxDomain);
        assert_eq!(r.stats().nxdomain, 1);
    }

    #[test]
    fn wildcard_zone_answers_deleted_names() {
        let mut r = Resolver::new();
        let mut z = Zone::new(fq("on.aws"));
        z.set_wildcard(vec![(a(50), 60)]);
        r.add_zone(z);
        let res = r
            .resolve(&fq("deleted.lambda-url.us-east-1.on.aws"), RecordType::A, 0)
            .unwrap();
        assert_eq!(res.addresses(), vec![a(50)]);
    }

    #[test]
    fn no_zone_error_for_foreign_names() {
        let mut r = resolver_with_tencent();
        assert_eq!(
            r.resolve(&fq("example.org"), RecordType::A, 0),
            Err(ResolveError::NoZone)
        );
    }

    #[test]
    fn off_platform_cname_target_ends_chain() {
        // Baidu-style third-party telecom ingress: CNAME points outside any
        // zone we serve; the resolution still succeeds with the CNAME.
        let mut r = Resolver::new();
        let mut z = Zone::new(fq("baidubce.com"));
        z.add(
            fq("abcdefghij123.cfc-execute.bj.baidubce.com"),
            Rdata::Name(fq("ingress.ct-telecom.example.net")),
            60,
        );
        r.add_zone(z);
        let res = r
            .resolve(
                &fq("abcdefghij123.cfc-execute.bj.baidubce.com"),
                RecordType::A,
                0,
            )
            .unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(res.answers[0].1.rtype(), RecordType::Cname);
    }

    #[test]
    fn wire_roundtrip_through_resolver() {
        use crate::wire::{Message, QType};
        let mut r = resolver_with_tencent();
        let q = Message::query(
            77,
            fq("1300000001-abcdefghij-gz.scf.tencentcs.com"),
            QType::A,
        );
        let resp_bytes = r.serve_wire(&q.encode(), 0).unwrap();
        let resp = Message::decode(&resp_bytes).unwrap();
        assert_eq!(resp.id, 77);
        assert!(resp.flags.response);
        assert_eq!(resp.answers.len(), 2);
    }

    #[test]
    fn wire_nxdomain() {
        use crate::wire::{Message, QType, Rcode};
        let mut r = resolver_with_tencent();
        let q = Message::query(5, fq("nope.scf.tencentcs.com"), QType::A);
        let resp = Message::decode(&r.serve_wire(&q.encode(), 0).unwrap()).unwrap();
        assert_eq!(Rcode::from_code(resp.flags.rcode), Rcode::NxDomain);
    }

    #[test]
    fn garbage_wire_input_yields_none() {
        let mut r = resolver_with_tencent();
        assert!(r.serve_wire(&[1, 2, 3], 0).is_none());
    }

    /// The §4 query schedule used by the read-path equivalence tests:
    /// 20 wildcard names, each queried four times across two days.
    fn pdns_schedule() -> Vec<(Fqdn, u64)> {
        let mut schedule = Vec::new();
        for i in 0..20u32 {
            let name = fq(&format!("fn{i}.lambda-url.us-east-1.on.aws"));
            for q in 0..4u64 {
                // Cache hits within the TTL, refreshes across days.
                schedule.push((name.clone(), q * 40_000));
            }
        }
        schedule
    }

    fn wildcard_resolver(sensor: Arc<dyn Sensor>) -> Resolver {
        let mut r = Resolver::new();
        let mut z = Zone::new(fq("on.aws"));
        z.set_wildcard(vec![(a(50), 60)]);
        r.add_zone(z);
        r.set_sensor(sensor);
        r
    }

    /// PDNS `request_cnt` totals must be unchanged by the lock-free read
    /// path: the same query schedule, issued through the old `&mut self`
    /// write path and through `resolve_shared` from 8 concurrent
    /// threads, yields identical per-row counts.
    #[test]
    fn shared_read_path_senses_identically_to_write_path() {
        use crate::pdns::SharedPdns;

        let schedule = pdns_schedule();

        // Old write path, serial.
        let serial_pdns = SharedPdns::new();
        let mut serial = wildcard_resolver(Arc::new(serial_pdns.clone()));
        for (name, now) in &schedule {
            serial.resolve(name, RecordType::A, *now).unwrap();
        }

        // Read path, 8 threads round-robin over the same schedule.
        let shared_pdns = SharedPdns::new();
        let shared = wildcard_resolver(Arc::new(shared_pdns.clone()));
        std::thread::scope(|scope| {
            for w in 0..8 {
                let shared = &shared;
                let schedule = &schedule;
                scope.spawn(move || {
                    for (name, now) in schedule.iter().skip(w).step_by(8) {
                        shared.resolve_shared(name, RecordType::A, *now).unwrap();
                    }
                });
            }
        });

        let rows = |p: &SharedPdns| {
            let mut v = Vec::new();
            p.lock().for_each_row(|fqdn, rtype, rdata, day, cnt| {
                v.push((fqdn.clone(), rtype, rdata.clone(), day, cnt));
            });
            v.sort();
            v
        };
        let serial_rows = rows(&serial_pdns);
        assert!(!serial_rows.is_empty());
        assert_eq!(serial_rows, rows(&shared_pdns));
        assert_eq!(serial.stats().queries, shared.stats().queries);
        assert_eq!(serial.stats().cache_hits, shared.stats().cache_hits);
    }

    /// Concurrent readers on the fast path never lose counter updates
    /// and always see the cached answers.
    #[test]
    fn concurrent_fast_path_hits_are_counted() {
        let r = resolver_with_tencent();
        let name = fq("1300000001-abcdefghij-gz.scf.tencentcs.com");
        // Warm the cache.
        r.resolve_shared(&name, RecordType::A, 0).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = &r;
                let name = &name;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let res = r.resolve_shared(name, RecordType::A, 10).unwrap();
                        assert!(res.from_cache);
                    }
                });
            }
        });
        assert_eq!(r.stats().queries, 401);
        assert_eq!(r.stats().cache_hits, 400);
    }
}
