//! RFC 1035 DNS message wire codec.
//!
//! Implements the subset the simulator speaks: header with flags and rcode,
//! QTYPE A/NS/CNAME/TXT/AAAA, class IN, and domain-name encoding with
//! message-compression pointers on decode (encode writes uncompressed names
//! with an optional compression dictionary — both forms decode
//! identically).
//!
//! The codec is defensive in the smoltcp spirit: malformed input yields a
//! typed [`WireError`], never a panic; compression-pointer loops and
//! truncated buffers are detected explicitly.

use fw_types::Fqdn;
use std::fmt;

/// Maximum pointer hops while decoding one name (loop guard).
const MAX_POINTER_HOPS: usize = 32;

/// DNS wire decode/encode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadPointer,
    PointerLoop,
    LabelTooLong,
    NameTooLong,
    BadLabelBytes,
    UnsupportedType(u16),
    UnsupportedClass(u16),
    BadRdataLength,
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "compression pointer out of range"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::LabelTooLong => write!(f, "label longer than 63 bytes"),
            WireError::NameTooLong => write!(f, "name longer than 253 bytes"),
            WireError::BadLabelBytes => write!(f, "label contains invalid bytes"),
            WireError::UnsupportedType(t) => write!(f, "unsupported rrtype {t}"),
            WireError::UnsupportedClass(c) => write!(f, "unsupported class {c}"),
            WireError::BadRdataLength => write!(f, "rdata length mismatch"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Query/record type codes the codec understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QType {
    A,
    Ns,
    Cname,
    Txt,
    Aaaa,
}

impl QType {
    pub fn code(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Txt => 16,
            QType::Aaaa => 28,
        }
    }

    pub fn from_code(code: u16) -> Result<Self, WireError> {
        Ok(match code {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            16 => QType::Txt,
            28 => QType::Aaaa,
            other => return Err(WireError::UnsupportedType(other)),
        })
    }
}

/// Response code (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    pub fn from_code(code: u8) -> Rcode {
        match code {
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => Rcode::NoError,
        }
    }
}

/// Message header flags (the subset we model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    pub response: bool,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: u8,
}

impl Flags {
    fn to_u16(self) -> u16 {
        let mut v = 0u16;
        if self.response {
            v |= 1 << 15;
        }
        // opcode 0 (QUERY)
        if self.authoritative {
            v |= 1 << 10;
        }
        if self.truncated {
            v |= 1 << 9;
        }
        if self.recursion_desired {
            v |= 1 << 8;
        }
        if self.recursion_available {
            v |= 1 << 7;
        }
        v | u16::from(self.rcode & 0x0f)
    }

    fn from_u16(v: u16) -> Flags {
        Flags {
            response: v & (1 << 15) != 0,
            authoritative: v & (1 << 10) != 0,
            truncated: v & (1 << 9) != 0,
            recursion_desired: v & (1 << 8) != 0,
            recursion_available: v & (1 << 7) != 0,
            rcode: (v & 0x0f) as u8,
        }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub name: Fqdn,
    pub qtype: QType,
}

/// Resource-record payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RrData {
    A(std::net::Ipv4Addr),
    Ns(Fqdn),
    Cname(Fqdn),
    Txt(Vec<u8>),
    Aaaa(std::net::Ipv6Addr),
}

impl RrData {
    pub fn qtype(&self) -> QType {
        match self {
            RrData::A(_) => QType::A,
            RrData::Ns(_) => QType::Ns,
            RrData::Cname(_) => QType::Cname,
            RrData::Txt(_) => QType::Txt,
            RrData::Aaaa(_) => QType::Aaaa,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    pub name: Fqdn,
    pub ttl: u32,
    pub data: RrData,
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    pub id: u16,
    pub flags: Flags,
    pub questions: Vec<Question>,
    pub answers: Vec<ResourceRecord>,
    pub authorities: Vec<ResourceRecord>,
    pub additionals: Vec<ResourceRecord>,
}

impl Message {
    /// Build a recursive query for one name/type.
    pub fn query(id: u16, name: Fqdn, qtype: QType) -> Message {
        Message {
            id,
            flags: Flags {
                recursion_desired: true,
                ..Flags::default()
            },
            questions: vec![Question { name, qtype }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build a response skeleton mirroring a query.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                response: true,
                recursion_desired: query.flags.recursion_desired,
                recursion_available: true,
                rcode: rcode.code(),
                ..Flags::default()
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Encode to wire bytes (names compressed against earlier occurrences).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        let mut dict: Vec<(String, usize)> = Vec::new();
        put_u16(&mut buf, self.id);
        put_u16(&mut buf, self.flags.to_u16());
        put_u16(&mut buf, self.questions.len() as u16);
        put_u16(&mut buf, self.answers.len() as u16);
        put_u16(&mut buf, self.authorities.len() as u16);
        put_u16(&mut buf, self.additionals.len() as u16);
        for q in &self.questions {
            encode_name(&mut buf, q.name.as_str(), &mut dict);
            put_u16(&mut buf, q.qtype.code());
            put_u16(&mut buf, 1); // class IN
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            encode_name(&mut buf, rr.name.as_str(), &mut dict);
            put_u16(&mut buf, rr.data.qtype().code());
            put_u16(&mut buf, 1); // class IN
            put_u32(&mut buf, rr.ttl);
            let rd_len_at = buf.len();
            put_u16(&mut buf, 0); // placeholder
            let start = buf.len();
            match &rr.data {
                RrData::A(ip) => buf.extend_from_slice(&ip.octets()),
                RrData::Aaaa(ip) => buf.extend_from_slice(&ip.octets()),
                RrData::Ns(n) | RrData::Cname(n) => encode_name(&mut buf, n.as_str(), &mut dict),
                RrData::Txt(t) => {
                    // character-strings of up to 255 bytes each
                    for chunk in t.chunks(255) {
                        buf.push(chunk.len() as u8);
                        buf.extend_from_slice(chunk);
                    }
                    if t.is_empty() {
                        buf.push(0);
                    }
                }
            }
            let rd_len = (buf.len() - start) as u16;
            buf[rd_len_at..rd_len_at + 2].copy_from_slice(&rd_len.to_be_bytes());
        }
        buf
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let id = cur.u16()?;
        let flags = Flags::from_u16(cur.u16()?);
        let qd = cur.u16()? as usize;
        let an = cur.u16()? as usize;
        let ns = cur.u16()? as usize;
        let ar = cur.u16()? as usize;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = cur.name()?;
            let qtype = QType::from_code(cur.u16()?)?;
            let class = cur.u16()?;
            if class != 1 {
                return Err(WireError::UnsupportedClass(class));
            }
            questions.push(Question { name, qtype });
        }
        let mut sections = [Vec::with_capacity(an), Vec::new(), Vec::new()];
        for (i, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                sections[i].push(cur.record()?);
            }
        }
        if cur.pos != bytes.len() {
            return Err(WireError::TrailingBytes);
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Encode a name, emitting a compression pointer when a suffix of the name
/// was already written at a pointer-addressable offset.
fn encode_name(buf: &mut Vec<u8>, name: &str, dict: &mut Vec<(String, usize)>) {
    let mut rest = name;
    loop {
        if rest.is_empty() {
            buf.push(0);
            return;
        }
        if let Some((_, off)) = dict.iter().find(|(n, off)| n == rest && *off < 0x4000) {
            put_u16(buf, 0xC000 | (*off as u16));
            return;
        }
        if buf.len() < 0x4000 {
            dict.push((rest.to_string(), buf.len()));
        }
        let (label, tail) = match rest.split_once('.') {
            Some((l, t)) => (l, t),
            None => (rest, ""),
        };
        debug_assert!(label.len() <= 63);
        buf.push(label.len() as u8);
        buf.extend_from_slice(label.as_bytes());
        rest = tail;
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Decode a (possibly compressed) name starting at the cursor.
    fn name(&mut self) -> Result<Fqdn, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut pos = self.pos;
        let mut hops = 0usize;
        let mut jumped = false;
        loop {
            let len = *self.buf.get(pos).ok_or(WireError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                let b2 = *self.buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | b2;
                if target >= self.buf.len() {
                    return Err(WireError::BadPointer);
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(WireError::PointerLoop);
                }
                pos = target;
                continue;
            }
            if len > 63 {
                return Err(WireError::LabelTooLong);
            }
            if len == 0 {
                if !jumped {
                    self.pos = pos + 1;
                }
                break;
            }
            let bytes = self
                .buf
                .get(pos + 1..pos + 1 + len)
                .ok_or(WireError::Truncated)?;
            let label = std::str::from_utf8(bytes).map_err(|_| WireError::BadLabelBytes)?;
            labels.push(label.to_string());
            pos += 1 + len;
        }
        let joined = labels.join(".");
        if joined.len() > 253 {
            return Err(WireError::NameTooLong);
        }
        Fqdn::parse(&joined).map_err(|_| WireError::BadLabelBytes)
    }

    fn record(&mut self) -> Result<ResourceRecord, WireError> {
        let name = self.name()?;
        let rtype = self.u16()?;
        let class = self.u16()?;
        if class != 1 {
            return Err(WireError::UnsupportedClass(class));
        }
        let ttl = self.u32()?;
        let rd_len = self.u16()? as usize;
        let rd_end = self
            .pos
            .checked_add(rd_len)
            .filter(|e| *e <= self.buf.len())
            .ok_or(WireError::Truncated)?;
        let data = match QType::from_code(rtype)? {
            QType::A => {
                let o = self.take(4).map_err(|_| WireError::BadRdataLength)?;
                if rd_len != 4 {
                    return Err(WireError::BadRdataLength);
                }
                RrData::A(std::net::Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            QType::Aaaa => {
                let o = self.take(16).map_err(|_| WireError::BadRdataLength)?;
                if rd_len != 16 {
                    return Err(WireError::BadRdataLength);
                }
                let mut oct = [0u8; 16];
                oct.copy_from_slice(o);
                RrData::Aaaa(std::net::Ipv6Addr::from(oct))
            }
            QType::Ns => {
                let n = self.name()?;
                if self.pos != rd_end {
                    return Err(WireError::BadRdataLength);
                }
                RrData::Ns(n)
            }
            QType::Cname => {
                let n = self.name()?;
                if self.pos != rd_end {
                    return Err(WireError::BadRdataLength);
                }
                RrData::Cname(n)
            }
            QType::Txt => {
                let mut out = Vec::new();
                while self.pos < rd_end {
                    let l = self.u8()? as usize;
                    out.extend_from_slice(self.take(l)?);
                }
                if self.pos != rd_end {
                    return Err(WireError::BadRdataLength);
                }
                RrData::Txt(out)
            }
        };
        Ok(ResourceRecord { name, ttl, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, fq("abc.scf.tencentcs.com"), QType::A);
        let bytes = q.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn response_with_all_rr_types_roundtrips() {
        let q = Message::query(7, fq("fn.fcapp.run"), QType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(ResourceRecord {
            name: fq("fn.fcapp.run"),
            ttl: 300,
            data: RrData::Cname(fq("ingress.cn-shanghai.fcapp.run")),
        });
        r.answers.push(ResourceRecord {
            name: fq("ingress.cn-shanghai.fcapp.run"),
            ttl: 60,
            data: RrData::A("203.0.113.9".parse().unwrap()),
        });
        r.answers.push(ResourceRecord {
            name: fq("ingress.cn-shanghai.fcapp.run"),
            ttl: 60,
            data: RrData::Aaaa("2001:db8::9".parse().unwrap()),
        });
        r.authorities.push(ResourceRecord {
            name: fq("fcapp.run"),
            ttl: 3600,
            data: RrData::Ns(fq("ns1.fcapp.run")),
        });
        r.additionals.push(ResourceRecord {
            name: fq("meta.fcapp.run"),
            ttl: 30,
            data: RrData::Txt(b"v=faas1".to_vec()),
        });
        let bytes = r.encode();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn compression_shrinks_repeated_suffixes() {
        let q = Message::query(1, fq("a.example.com"), QType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        for i in 0..5 {
            r.answers.push(ResourceRecord {
                name: fq("a.example.com"),
                ttl: 60,
                data: RrData::A(std::net::Ipv4Addr::new(10, 0, 0, i)),
            });
        }
        let bytes = r.encode();
        // Uncompressed, "a.example.com" appears 6 times (15 bytes each).
        // With pointers every repeat is 2 bytes.
        assert!(bytes.len() < 12 + 6 * 15 + 6 * 14, "no compression applied");
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.answers.len(), 5);
        assert_eq!(back.answers[4].name, fq("a.example.com"));
    }

    #[test]
    fn nxdomain_flag_roundtrip() {
        let q = Message::query(9, fq("gone.scf.tencentcs.com"), QType::A);
        let r = Message::response_to(&q, Rcode::NxDomain);
        let back = Message::decode(&r.encode()).unwrap();
        assert_eq!(Rcode::from_code(back.flags.rcode), Rcode::NxDomain);
        assert!(back.flags.response);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let q = Message::query(3, fq("x.on.aws"), QType::Aaaa);
        let bytes = q.encode();
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn pointer_loop_detected() {
        // Header with 1 question whose name is a self-pointing pointer.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 0x0C]); // pointer to itself (offset 12)
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(Message::decode(&bytes), Err(WireError::PointerLoop));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let q = Message::query(4, fq("y.on.aws"), QType::A);
        let mut bytes = q.encode();
        bytes.push(0xFF);
        assert_eq!(Message::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn unsupported_class_rejected() {
        let q = Message::query(5, fq("z.on.aws"), QType::A);
        let mut bytes = q.encode();
        let n = bytes.len();
        bytes[n - 1] = 3; // class CH
        assert_eq!(Message::decode(&bytes), Err(WireError::UnsupportedClass(3)));
    }

    #[test]
    fn empty_txt_roundtrips() {
        let q = Message::query(6, fq("t.on.aws"), QType::Txt);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(ResourceRecord {
            name: fq("t.on.aws"),
            ttl: 1,
            data: RrData::Txt(Vec::new()),
        });
        let back = Message::decode(&r.encode()).unwrap();
        assert_eq!(back.answers[0].data, RrData::Txt(Vec::new()));
    }
}
