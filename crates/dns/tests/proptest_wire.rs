//! Property tests for the DNS wire codec and PDNS aggregation.

use fw_dns::pdns::PdnsStore;
use fw_dns::wire::{Message, QType, Rcode, ResourceRecord, RrData};
use fw_types::{DayStamp, Fqdn, Rdata};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,12}"
}

fn arb_fqdn() -> impl Strategy<Value = Fqdn> {
    proptest::collection::vec(arb_label(), 2..5)
        .prop_map(|labels| Fqdn::parse(&labels.join(".")).unwrap())
}

fn arb_rrdata() -> impl Strategy<Value = RrData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RrData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RrData::Aaaa(Ipv6Addr::from(o))),
        arb_fqdn().prop_map(RrData::Cname),
        arb_fqdn().prop_map(RrData::Ns),
        proptest::collection::vec(any::<u8>(), 0..600).prop_map(RrData::Txt),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_fqdn(), any::<u32>(), arb_rrdata()).prop_map(|(name, ttl, data)| ResourceRecord {
        name,
        ttl,
        data,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_fqdn(),
        prop_oneof![
            Just(QType::A),
            Just(QType::Aaaa),
            Just(QType::Cname),
            Just(QType::Txt),
            Just(QType::Ns)
        ],
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        prop_oneof![
            Just(Rcode::NoError),
            Just(Rcode::NxDomain),
            Just(Rcode::ServFail)
        ],
    )
        .prop_map(|(id, qname, qtype, answers, auth, rcode)| {
            let q = Message::query(id, qname, qtype);
            let mut resp = Message::response_to(&q, rcode);
            resp.answers = answers;
            resp.authorities = auth;
            resp
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(msg in arb_message()) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("generated message must decode");
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_mutated_valid_messages(
        msg in arb_message(),
        flip_at in any::<proptest::sample::Index>(),
        flip_to in any::<u8>(),
    ) {
        let mut bytes = msg.encode();
        if !bytes.is_empty() {
            let i = flip_at.index(bytes.len());
            bytes[i] = flip_to;
            let _ = Message::decode(&bytes);
        }
    }

    /// Aggregation invariant: total_request_cnt equals the sum of per-day
    /// counts, and days_count never exceeds the lifespan.
    #[test]
    fn pdns_aggregate_invariants(
        observations in proptest::collection::vec((0i64..730, 1u64..100, 0u8..3), 1..60)
    ) {
        let mut store = PdnsStore::new();
        let fqdn = Fqdn::parse("prop.on.aws").unwrap();
        let rdatas = [
            Rdata::V4(Ipv4Addr::new(10, 0, 0, 1)),
            Rdata::V4(Ipv4Addr::new(10, 0, 0, 2)),
            Rdata::Name(Fqdn::parse("edge.on.aws").unwrap()),
        ];
        let mut expected_total = 0u64;
        for (day_off, cnt, which) in &observations {
            store.observe_count(
                &fqdn,
                &rdatas[*which as usize],
                DayStamp(19083 + day_off),
                *cnt,
            );
            expected_total += cnt;
        }
        let agg = store.aggregate(&fqdn).unwrap();
        prop_assert_eq!(agg.total_request_cnt, expected_total);
        prop_assert!(i64::from(agg.days_count) <= agg.lifespan_days());
        prop_assert!(agg.activity_density() > 0.0 && agg.activity_density() <= 1.0);
        let dist_total: u64 = agg.rdata_dist.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(dist_total, expected_total);
    }
}
