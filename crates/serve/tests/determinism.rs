//! The load-harness determinism contract: same seed ⇒ same run, at any
//! worker count. Digest equality is byte equality — every client FNV-
//! digests its response stream off the wire, so two runs agree on the
//! digest iff every cacheable response byte was identical.

use fw_serve::{CacheConfig, LoadConfig, LoadPlan, ServeApi, ServeState};
use fw_workload::{World, WorldConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 7;

fn run(workers: usize) -> fw_serve::LoadReport {
    let world = World::generate(WorldConfig::usage(SEED, 0.01));
    let state = Arc::new(ServeState::build(world.pdns, workers));
    let plan = LoadPlan {
        function_fqdns: Arc::new(state.function_fqdns()),
    };
    let net = fw_net::SimNet::new(SEED);
    let addr: SocketAddr = "10.99.0.1:8080".parse().unwrap();
    let api = Arc::new(ServeApi::new(state, CacheConfig::default()));
    api.serve_pool(&net, addr, workers.max(1));
    let config = LoadConfig {
        clients: 2_000,
        max_requests_per_client: 3,
        workers,
        seed: SEED,
        window: Duration::from_secs(600),
        ..LoadConfig::default()
    };
    fw_serve::load::run_load(&net, addr, &config, &plan)
}

/// Everything a run is supposed to reproduce (wall-time fields and the
/// status-endpoint byte count are the only run-varying parts).
fn fingerprint(r: &fw_serve::LoadReport) -> (u64, u64, [u64; 7], u64, u64, u64, u64) {
    (
        r.requests,
        r.digest,
        r.endpoint_counts,
        r.status_ok,
        r.status_not_found,
        r.status_other,
        r.virtual_us,
    )
}

#[test]
fn same_seed_is_identical_across_worker_counts_and_reruns() {
    let serial = run(1);
    let wide = run(8);
    let wide_again = run(8);
    assert!(serial.requests >= 2_000, "every client issues >= 1 request");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&wide),
        "workers=1 and workers=8 must produce identical requests and response bytes"
    );
    assert_eq!(
        fingerprint(&wide),
        fingerprint(&wide_again),
        "two same-config runs must be byte-identical"
    );
    // Sanity on the shape of the run: the mix exercised every endpoint
    // class and the unknown-fqdn slice produced real 404s.
    assert!(serial.endpoint_counts.iter().all(|&c| c > 0));
    assert!(serial.status_not_found > 0);
    assert!(serial.status_ok > serial.status_not_found);
}

#[test]
fn different_seed_changes_the_run() {
    let world = World::generate(WorldConfig::usage(SEED, 0.01));
    let state = Arc::new(ServeState::build(world.pdns, 4));
    let plan = LoadPlan {
        function_fqdns: Arc::new(state.function_fqdns()),
    };
    let net = fw_net::SimNet::new(SEED);
    let addr: SocketAddr = "10.99.0.2:8080".parse().unwrap();
    let api = Arc::new(ServeApi::new(state, CacheConfig::default()));
    api.serve_pool(&net, addr, 4);
    let mut config = LoadConfig {
        clients: 500,
        workers: 4,
        seed: SEED,
        window: Duration::from_secs(60),
        ..LoadConfig::default()
    };
    let a = fw_serve::load::run_load(&net, addr, &config, &plan);
    config.seed = SEED + 1;
    let b = fw_serve::load::run_load(&net, addr, &config, &plan);
    assert_ne!(
        a.digest, b.digest,
        "a different seed must draw a different request schedule"
    );
}
