//! Property tests: a single-shard [`ShardedCache`] with admission off
//! behaves exactly like a reference model (HashMap + recency list)
//! under arbitrary get/put interleavings — same hit/miss answers, same
//! evictions, same surviving keys. With TinyLFU admission on, exact
//! eviction order depends on the sketch, so the properties weaken to
//! invariants: capacity is never exceeded, values are never corrupted,
//! and the accept/reject accounting balances.

use fw_serve::cache::{CacheConfig, CachedResponse, ShardedCache};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24).prop_map(Op::Get),
        ((0u8..24), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
    ]
}

/// Reference LRU: value map + recency vector (front = most recent).
struct ModelLru {
    map: HashMap<u8, u16>,
    recency: Vec<u8>,
    capacity: usize,
    evictions: u64,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            map: HashMap::new(),
            recency: Vec::new(),
            capacity,
            evictions: 0,
        }
    }

    fn touch(&mut self, k: u8) {
        self.recency.retain(|&x| x != k);
        self.recency.insert(0, k);
    }

    fn get(&mut self, k: u8) -> Option<u16> {
        let v = self.map.get(&k).copied()?;
        self.touch(k);
        Some(v)
    }

    fn put(&mut self, k: u8, v: u16) {
        if self.map.insert(k, v).is_some() {
            self.touch(k);
            return;
        }
        if self.map.len() > self.capacity {
            let lru = self.recency.pop().expect("map larger than capacity");
            self.map.remove(&lru);
            self.evictions += 1;
        }
        self.touch(k);
    }
}

fn resp(v: u16) -> Arc<CachedResponse> {
    Arc::new(CachedResponse::render(
        200,
        "application/json",
        &v.to_be_bytes(),
    ))
}

fn value_of(r: &CachedResponse) -> u16 {
    u16::from_be_bytes([r.body()[0], r.body()[1]])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_shard_matches_reference_model(
        capacity in 1usize..12,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity,
            admission: false,
        });
        let mut model = ModelLru::new(capacity);
        for op in &ops {
            match *op {
                Op::Get(k) => {
                    let got = cache.get(&k.to_string()).map(|r| value_of(&r));
                    prop_assert_eq!(got, model.get(k), "get({}) diverged", k);
                }
                Op::Put(k, v) => {
                    cache.put(&k.to_string(), resp(v));
                    model.put(k, v);
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, model.evictions, "eviction counts diverged");
        prop_assert_eq!(stats.entries as usize, model.map.len(), "entry counts diverged");
        prop_assert_eq!(stats.admit_reject, 0, "admission off must never reject");
        // Every key the model retains must still be readable with the
        // model's value; every key it dropped must miss.
        for k in 0u8..24 {
            let got = cache.get(&k.to_string()).map(|r| value_of(&r));
            prop_assert_eq!(got, model.map.get(&k).copied(), "final state diverged at {}", k);
        }
    }

    #[test]
    fn admission_preserves_core_invariants(
        capacity in 1usize..12,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // With TinyLFU on, which keys survive depends on the sketch —
        // but correctness invariants must hold regardless.
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity,
            admission: true,
        });
        // Last value written per key: a hit may serve any *admitted*
        // put, but refreshes always overwrite in place, so a resident
        // key must serve its latest value.
        let mut last: HashMap<u8, u16> = HashMap::new();
        let mut resident: std::collections::HashSet<u8> = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                Op::Get(k) => {
                    if let Some(r) = cache.get(&k.to_string()) {
                        prop_assert!(resident.contains(&k), "hit on never-admitted key {}", k);
                        prop_assert_eq!(value_of(&r), last[&k], "stale value for {}", k);
                    }
                }
                Op::Put(k, v) => {
                    let before = cache.stats();
                    cache.put(&k.to_string(), resp(v));
                    let after = cache.stats();
                    if resident.contains(&k) || after.admit_accept > before.admit_accept {
                        // Refresh, or admitted as new. (A concurrent
                        // displacement of some other key is invisible
                        // from stats alone; hits below only assert on
                        // keys that are actually served.)
                        last.insert(k, v);
                        resident.insert(k);
                    } else {
                        prop_assert_eq!(
                            after.admit_reject, before.admit_reject + 1,
                            "put must refresh, admit, or reject"
                        );
                    }
                }
            }
            let s = cache.stats();
            prop_assert!(s.entries as usize <= capacity, "capacity exceeded");
        }
        let s = cache.stats();
        // Accounting balances: every admitted key either still resides
        // or was evicted.
        prop_assert_eq!(s.admit_accept, s.entries + s.evictions, "admission ledger broken");
    }

    #[test]
    fn multi_shard_never_loses_a_hot_key(
        shards in 1usize..8,
        keys in proptest::collection::vec("[a-z]{1,12}", 1..32),
    ) {
        // With capacity >= distinct keys, nothing is ever evicted or
        // rejected no matter how keys spread across shards.
        let cache = ShardedCache::new(CacheConfig {
            shards,
            capacity: keys.len() * shards,
            ..CacheConfig::default()
        });
        for (i, k) in keys.iter().enumerate() {
            cache.put(k, resp(i as u16));
        }
        for (i, k) in keys.iter().enumerate() {
            // Later duplicate puts overwrite earlier ones.
            let last = keys.iter().rposition(|x| x == k).unwrap_or(i);
            prop_assert_eq!(
                cache.get(k).map(|r| value_of(&r)),
                Some(last as u16)
            );
        }
        prop_assert_eq!(cache.stats().evictions, 0);
        prop_assert_eq!(cache.stats().admit_reject, 0);
    }
}
