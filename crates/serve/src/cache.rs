//! Sharded in-memory LRU response cache with TinyLFU admission.
//!
//! Same spreading scheme as the PR-4 resolver cache: the request target
//! FNV-hashes to one of a fixed set of shards, each an independently
//! locked true-LRU map (hash map into a slab-backed doubly linked
//! recency list — O(1) get/put/evict, no scan on eviction). Entries are
//! whole pre-rendered **wire images** behind an `Arc`: status line,
//! headers and body exactly as `fw_http::parse::write_response` would
//! emit them, so a hit is one pointer clone plus one `write_all` of the
//! stored bytes — no header re-rendering, no body copy.
//!
//! Admission (TinyLFU, per shard): a 4-row count-min sketch of 4-bit
//! saturating frequency counters tracks how often each key *hash* is
//! looked up. When a full shard would evict its LRU tail to admit a new
//! key, the candidate is admitted only if its estimated frequency is at
//! least the tail's — one-hit wonders bounce off the sketch instead of
//! flushing the hot head of the recency list. Counters halve every
//! `8 × capacity` recorded touches so the sketch ages with the
//! workload. Admission only shifts *which* keys are cached, never the
//! bytes a key maps to, so run digests are unaffected.
//!
//! Counters: `fw.serve.cache.{hit,miss,evict}` and
//! `fw.serve.cache.{admit_accept,admit_reject}` mirror the cache's own
//! atomic stats into the telemetry registry when metrics are enabled.

use fw_obs::{counter_add, counter_inc};
use fw_types::fnv::{fnv1a, FnvBuildHasher};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached response: the full pre-rendered wire image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    pub status: u16,
    head_len: u32,
    wire: Vec<u8>,
}

impl CachedResponse {
    /// Render the wire image for a body-carrying response; bytes are
    /// identical to `write_response(&Response::with_body(status,
    /// content_type, body))` on the wire.
    pub fn render(status: u16, content_type: &str, body: &[u8]) -> CachedResponse {
        let mut wire = Vec::with_capacity(64 + content_type.len() + body.len());
        let head_len = fw_http::fast::render_response(&mut wire, status, content_type, body);
        CachedResponse {
            status,
            head_len: head_len as u32,
            wire,
        }
    }

    /// The full response byte stream (head + body).
    pub fn wire(&self) -> &[u8] {
        &self.wire
    }

    /// Just the body bytes.
    pub fn body(&self) -> &[u8] {
        &self.wire[self.head_len as usize..]
    }
}

/// Cache sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Shard count (locking granularity). The resolver uses 16; the
    /// serve cache defaults the same.
    pub shards: usize,
    /// Total entry capacity, split evenly across shards (each shard
    /// holds at least one entry).
    pub capacity: usize,
    /// TinyLFU admission on full shards. Off = plain LRU (every new
    /// key evicts the tail); the reference-model property tests pin
    /// this off to keep the model exact.
    pub admission: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: 65_536,
            admission: true,
        }
    }
}

/// Monotonic counters, readable without locking any shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: u64,
    /// New keys admitted (into free room, or displacing the LRU tail).
    pub admit_accept: u64,
    /// New keys the admission filter bounced off a full shard.
    pub admit_reject: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

/// 4-row count-min sketch of 4-bit saturating counters — the TinyLFU
/// frequency estimator. One per shard, sized to the shard's capacity,
/// halved every `HALVE_FACTOR × capacity` recorded touches.
struct FreqSketch {
    rows: Vec<u8>,
    mask: u64,
    width: usize,
    touches: u64,
    halve_at: u64,
}

const SKETCH_ROWS: usize = 4;
const SKETCH_SAT: u8 = 15;
const HALVE_FACTOR: u64 = 8;

/// Odd multipliers deriving four independent row indexes from one hash.
const ROW_SEEDS: [u64; SKETCH_ROWS] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0xff51_afd7_ed55_8ccd,
];

impl FreqSketch {
    fn new(capacity: usize) -> FreqSketch {
        let width = (capacity.max(16) * 2).next_power_of_two();
        FreqSketch {
            rows: vec![0u8; width * SKETCH_ROWS],
            mask: width as u64 - 1,
            width,
            touches: 0,
            halve_at: HALVE_FACTOR * capacity.max(1) as u64,
        }
    }

    fn slot(&self, row: usize, h: u64) -> usize {
        row * self.width + ((h.wrapping_mul(ROW_SEEDS[row]) >> 13) & self.mask) as usize
    }

    /// Record one touch of `h` (saturating), aging the sketch when due.
    fn record(&mut self, h: u64) {
        for row in 0..SKETCH_ROWS {
            let s = self.slot(row, h);
            if self.rows[s] < SKETCH_SAT {
                self.rows[s] += 1;
            }
        }
        self.touches += 1;
        if self.touches >= self.halve_at {
            self.touches = 0;
            for c in &mut self.rows {
                *c >>= 1;
            }
        }
    }

    /// Count-min estimate: the minimum over the four rows.
    fn estimate(&self, h: u64) -> u8 {
        (0..SKETCH_ROWS)
            .map(|row| self.rows[self.slot(row, h)])
            .min()
            .unwrap_or(0)
    }
}

struct Node {
    key: String,
    /// FNV hash of `key`, kept so victim-frequency lookups on eviction
    /// never rehash the string.
    hash: u64,
    value: Arc<CachedResponse>,
    prev: usize,
    next: usize,
}

/// One shard: map + slab-backed recency list (head = most recent) +
/// TinyLFU admission sketch.
struct LruShard {
    map: HashMap<String, usize, FnvBuildHasher>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    admission: bool,
    sketch: FreqSketch,
}

/// What a shard-level put did, for the stats mirror.
enum PutOutcome {
    Refreshed,
    Admitted,
    AdmittedEvicting,
    Rejected,
}

impl LruShard {
    fn new(capacity: usize, admission: bool) -> LruShard {
        LruShard {
            map: HashMap::with_capacity_and_hasher(capacity, FnvBuildHasher::default()),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            admission,
            sketch: FreqSketch::new(capacity),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.nodes[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &str, h: u64) -> Option<Arc<CachedResponse>> {
        // Every lookup — hit or miss — feeds the admission sketch, so a
        // key earns frequency before it is ever admitted.
        self.sketch.record(h);
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.nodes[idx].value))
    }

    /// Insert, refresh, or (on a full shard) run the admission filter.
    fn put(&mut self, key: &str, h: u64, value: Arc<CachedResponse>) -> PutOutcome {
        if let Some(&idx) = self.map.get(key) {
            self.nodes[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return PutOutcome::Refreshed;
        }
        let mut outcome = PutOutcome::Admitted;
        if self.map.len() >= self.capacity {
            // TinyLFU admission: the candidate must be at least as
            // frequent as the LRU victim to displace it.
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            if self.admission
                && self.sketch.estimate(h) < self.sketch.estimate(self.nodes[lru].hash)
            {
                return PutOutcome::Rejected;
            }
            self.unlink(lru);
            let old = std::mem::take(&mut self.nodes[lru].key);
            self.map.remove(&old);
            self.free.push(lru);
            outcome = PutOutcome::AdmittedEvicting;
        }
        let node = Node {
            key: key.to_string(),
            hash: h,
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key.to_string(), idx);
        outcome
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// FNV-addressed sharded LRU over pre-rendered responses.
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admit_accept: AtomicU64,
    admit_reject: AtomicU64,
}

impl ShardedCache {
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shards = config.shards.max(1);
        let per_shard = (config.capacity / shards).max(1);
        // Zero-register the admission counters so they exist in the
        // registry even before the first full-shard decision.
        counter_add!("fw.serve.cache.admit_accept", 0);
        counter_add!("fw.serve.cache.admit_reject", 0);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard, config.admission)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admit_accept: AtomicU64::new(0),
            admit_reject: AtomicU64::new(0),
        }
    }

    /// The key hash used for shard addressing and the admission sketch;
    /// callers that already hold it can use the `_h` entry points.
    pub fn hash_key(key: &str) -> u64 {
        fnv1a(key.as_bytes())
    }

    pub fn get(&self, key: &str) -> Option<Arc<CachedResponse>> {
        self.get_h(key, Self::hash_key(key))
    }

    /// `get` with the caller-supplied key hash (must be [`Self::hash_key`]).
    pub fn get_h(&self, key: &str, h: u64) -> Option<Arc<CachedResponse>> {
        let found = self.shards[(h as usize) % self.shards.len()]
            .lock()
            .get(key, h);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.hit");
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.miss");
            }
        }
        found
    }

    pub fn put(&self, key: &str, value: Arc<CachedResponse>) {
        self.put_h(key, Self::hash_key(key), value)
    }

    /// `put` with the caller-supplied key hash (must be [`Self::hash_key`]).
    pub fn put_h(&self, key: &str, h: u64, value: Arc<CachedResponse>) {
        let outcome = self.shards[(h as usize) % self.shards.len()]
            .lock()
            .put(key, h, value);
        match outcome {
            PutOutcome::Refreshed => {}
            PutOutcome::Admitted => {
                self.admit_accept.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.admit_accept");
            }
            PutOutcome::AdmittedEvicting => {
                self.admit_accept.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.admit_accept");
                counter_inc!("fw.serve.cache.evict");
            }
            PutOutcome::Rejected => {
                self.admit_reject.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.admit_reject");
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
            admit_accept: self.admit_accept.load(Ordering::Relaxed),
            admit_reject: self.admit_reject.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(n: u16) -> Arc<CachedResponse> {
        Arc::new(CachedResponse::render(
            200,
            "application/json",
            &n.to_be_bytes(),
        ))
    }

    fn single_shard(capacity: usize) -> ShardedCache {
        ShardedCache::new(CacheConfig {
            shards: 1,
            capacity,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn wire_image_matches_scalar_serializer() {
        use fw_http::parse::write_response;
        use fw_http::types::Response;
        use fw_net::{pipe_pair, Connection};
        let body = b"{\"verdict\": \"function\"}";
        let cached = CachedResponse::render(200, "application/json", body);
        let (mut a, mut b) = pipe_pair(
            "10.0.0.1:50000".parse().unwrap(),
            "203.0.113.1:80".parse().unwrap(),
        );
        write_response(
            &mut a,
            &Response::with_body(200, "application/json", body.to_vec()),
        )
        .unwrap();
        a.shutdown_write();
        let mut raw = Vec::new();
        let mut buf = [0u8; 512];
        loop {
            match b.read(&mut buf).unwrap() {
                0 => break,
                n => raw.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(cached.wire(), raw.as_slice());
        assert_eq!(cached.body(), body);
    }

    #[test]
    fn get_put_roundtrip_and_stats() {
        let c = single_shard(4);
        assert!(c.get("a").is_none());
        c.put("a", resp(1));
        assert_eq!(c.get("a").unwrap().body(), 1u16.to_be_bytes());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        assert_eq!((s.admit_accept, s.admit_reject), (1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_order() {
        let c = single_shard(2);
        c.put("a", resp(1));
        c.put("b", resp(2));
        // Touch "a" so "b" becomes the LRU entry, and touch "c" (a
        // miss) so its sketch frequency matches the victim's and the
        // admission filter lets it in.
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_none());
        c.put("c", resp(3));
        assert!(c.get("b").is_none(), "LRU entry should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn refresh_does_not_evict() {
        let c = single_shard(2);
        c.put("a", resp(1));
        c.put("b", resp(2));
        c.put("a", resp(9));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").unwrap().body(), 9u16.to_be_bytes());
        assert!(c.get("b").is_some());
    }

    #[test]
    fn admission_rejects_cold_keys_on_a_full_shard() {
        let c = single_shard(2);
        // Warm both residents with several touches each.
        c.put("hot1", resp(1));
        c.put("hot2", resp(2));
        for _ in 0..4 {
            assert!(c.get("hot1").is_some());
            assert!(c.get("hot2").is_some());
        }
        // A brand-new key with zero recorded touches must bounce.
        c.put("cold", resp(3));
        let s = c.stats();
        assert_eq!(s.admit_reject, 1);
        assert_eq!(s.evictions, 0);
        assert!(c.get("hot1").is_some());
        assert!(c.get("hot2").is_some());
        assert!(c.get("cold").is_none());
    }

    #[test]
    fn admission_lets_frequent_keys_displace_the_tail() {
        let c = single_shard(2);
        c.put("a", resp(1));
        c.put("b", resp(2));
        // "c" misses repeatedly — each miss records a sketch touch.
        for _ in 0..6 {
            assert!(c.get("c").is_none());
        }
        c.put("c", resp(3));
        let s = c.stats();
        assert_eq!(s.admit_reject, 0);
        assert_eq!(s.evictions, 1);
        assert!(c.get("c").is_some());
    }

    #[test]
    fn sketch_halving_ages_out_stale_frequency() {
        let mut sk = FreqSketch::new(16);
        for _ in 0..10 {
            sk.record(0xdead_beef);
        }
        assert!(sk.estimate(0xdead_beef) >= 8);
        // Drive enough touches of other keys to cross the halving
        // threshold (8 × 16 = 128 touches).
        for i in 0..200u64 {
            sk.record(i.wrapping_mul(0x1234_5678_9abc_def1));
        }
        assert!(sk.estimate(0xdead_beef) <= SKETCH_SAT / 2 + 1);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = ShardedCache::new(CacheConfig {
            shards: 8,
            capacity: 64,
            ..CacheConfig::default()
        });
        for i in 0..64 {
            c.put(&format!("key-{i}"), resp(i as u16));
        }
        for i in 0..64 {
            // Per-shard capacity is 8 and FNV does not spread 64 keys
            // perfectly evenly, so some keys may have been evicted or
            // rejected — but every surviving key must return its own
            // value.
            if let Some(v) = c.get(&format!("key-{i}")) {
                assert_eq!(v.body(), (i as u16).to_be_bytes());
            }
        }
        assert!(c.stats().entries <= 64);
    }
}
