//! Sharded in-memory LRU response cache.
//!
//! Same spreading scheme as the PR-4 resolver cache: the request target
//! FNV-hashes to one of a fixed set of shards, each an independently
//! locked true-LRU map (hash map into a slab-backed doubly linked
//! recency list — O(1) get/put/evict, no scan on eviction). Entries are
//! whole pre-rendered responses behind an `Arc`, so a hit clones a
//! pointer, not a body.
//!
//! Counters: `fw.serve.cache.{hit,miss,evict}` mirror the cache's own
//! atomic stats into the telemetry registry when metrics are enabled.

use fw_obs::counter_inc;
use fw_types::fnv::fnv1a;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached response: everything the router needs to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResponse {
    pub status: u16,
    pub body: Vec<u8>,
}

/// Cache sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Shard count (locking granularity). The resolver uses 16; the
    /// serve cache defaults the same.
    pub shards: usize,
    /// Total entry capacity, split evenly across shards (each shard
    /// holds at least one entry).
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: 32_768,
        }
    }
}

/// Monotonic counters, readable without locking any shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: String,
    value: Arc<CachedResponse>,
    prev: usize,
    next: usize,
}

/// One shard: map + slab-backed recency list (head = most recent).
struct LruShard {
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> LruShard {
        LruShard {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.nodes[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &str) -> Option<Arc<CachedResponse>> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.nodes[idx].value))
    }

    /// Insert or refresh; returns whether an entry was evicted.
    fn put(&mut self, key: &str, value: Arc<CachedResponse>) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.nodes[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = std::mem::take(&mut self.nodes[lru].key);
            self.map.remove(&old);
            self.free.push(lru);
            evicted = true;
        }
        let node = Node {
            key: key.to_string(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key.to_string(), idx);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// FNV-addressed sharded LRU over pre-rendered responses.
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shards = config.shards.max(1);
        let per_shard = (config.capacity / shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<LruShard> {
        &self.shards[(fnv1a(key.as_bytes()) as usize) % self.shards.len()]
    }

    pub fn get(&self, key: &str) -> Option<Arc<CachedResponse>> {
        let found = self.shard_of(key).lock().get(key);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.hit");
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                counter_inc!("fw.serve.cache.miss");
            }
        }
        found
    }

    pub fn put(&self, key: &str, value: Arc<CachedResponse>) {
        if self.shard_of(key).lock().put(key, value) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            counter_inc!("fw.serve.cache.evict");
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(n: u16) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            status: 200,
            body: n.to_be_bytes().to_vec(),
        })
    }

    fn single_shard(capacity: usize) -> ShardedCache {
        ShardedCache::new(CacheConfig {
            shards: 1,
            capacity,
        })
    }

    #[test]
    fn get_put_roundtrip_and_stats() {
        let c = single_shard(4);
        assert!(c.get("a").is_none());
        c.put("a", resp(1));
        assert_eq!(c.get("a").unwrap().body, 1u16.to_be_bytes());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_order() {
        let c = single_shard(2);
        c.put("a", resp(1));
        c.put("b", resp(2));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get("a").is_some());
        c.put("c", resp(3));
        assert!(c.get("b").is_none(), "LRU entry should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn refresh_does_not_evict() {
        let c = single_shard(2);
        c.put("a", resp(1));
        c.put("b", resp(2));
        c.put("a", resp(9));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").unwrap().body, 9u16.to_be_bytes());
        assert!(c.get("b").is_some());
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = ShardedCache::new(CacheConfig {
            shards: 8,
            capacity: 64,
        });
        for i in 0..64 {
            c.put(&format!("key-{i}"), resp(i as u16));
        }
        for i in 0..64 {
            // Per-shard capacity is 8 and FNV does not spread 64 keys
            // perfectly evenly, so some keys may have been evicted — but
            // every surviving key must return its own value.
            if let Some(v) = c.get(&format!("key-{i}")) {
                assert_eq!(v.body, (i as u16).to_be_bytes());
            }
        }
        assert!(c.stats().entries <= 64);
    }
}
