//! The serving layer (DESIGN.md §15): an HTTP/1.1 query API over any
//! [`fw_dns::pdns::PdnsBackend`], pointed *inward* at the measurement
//! state the pipeline produces.
//!
//! The pipeline's batch binaries answer one question per run; this
//! crate turns the same state into an always-up read path:
//!
//! * [`state::ServeState`] — the queryable snapshot, built by replaying
//!   the store's rows through the exact incremental components the
//!   sensing daemon uses (`IdentifyEngine`, `UsageState`,
//!   `CandidateScorer`), plus the pre-rendered figure documents;
//! * [`api::ServeApi`] — request routing over `fw-http`, fronted by a
//!   sharded in-memory LRU ([`cache::ShardedCache`]) keyed on the
//!   request target, with per-endpoint latency histograms and trace
//!   spans;
//! * [`load`] — a SimNet load harness driving millions of keep-alive
//!   virtual clients with deterministic per-client RNG streams, so a
//!   whole load run is byte-reproducible (every client's response byte
//!   stream is FNV-digested and the digests combine commutatively).
//!
//! `fw_serve_gate` ties the three together into the CI serving gate
//! (`BENCH_serve.json`).

pub mod api;
pub mod cache;
pub mod load;
pub mod state;

pub use api::{Endpoint, ServeApi};
pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use load::{LoadConfig, LoadPlan, LoadReport, MixWeights};
pub use state::ServeState;
