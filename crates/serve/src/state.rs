//! The queryable serving snapshot.
//!
//! [`ServeState::build`] replays a backend's rows — in the canonical
//! day order the streaming source uses — through the exact incremental
//! components the sensing daemon runs (`IdentifyEngine` for verdicts,
//! `UsageState` for the §4 tables, `CandidateScorer` for the abuse
//! front-of-funnel), then freezes the result behind point-lookup
//! indexes. Every response body is a pure function of this state, so
//! the cache in front of the router can never serve a stale or
//! divergent byte.

use fw_core::identify::{IdentificationReport, IdentifyEngine};
use fw_core::usage::{invocation_report, monthly_new_fqdns, IngressRow, MonthlySeries};
use fw_dns::pdns::PdnsBackend;
use fw_stream::{collect_rows, day_batches, CandidateScorer, Detection, ScoreConfig};
use fw_types::{Fqdn, Json, MonthStamp, ProviderId};
use std::collections::{BTreeMap, HashMap};

/// Immutable measurement state plus the backing store's read path.
pub struct ServeState<B: PdnsBackend> {
    backend: B,
    report: IdentificationReport,
    /// Candidate detections, fqdn-sorted for stable listing.
    detections: Vec<Detection>,
    by_fqdn: HashMap<Fqdn, usize>,
    store_rows: u64,
    /// Pre-rendered figure documents, keyed by endpoint name.
    figures: Vec<(&'static str, String)>,
}

impl<B: PdnsBackend> ServeState<B> {
    /// Build the snapshot by replaying `backend`'s rows through the
    /// daemon's incremental components on `workers` threads.
    pub fn build(backend: B, workers: usize) -> ServeState<B> {
        let _span = fw_obs::span("serve/build");
        let rows = collect_rows(&backend);
        let store_rows = rows.len() as u64;
        let mut engine = IdentifyEngine::with_workers(workers.max(1));
        let mut usage = fw_core::usage::UsageState::new();
        let mut scorer = CandidateScorer::new(ScoreConfig::default());
        for batch in day_batches(&rows, 1) {
            let changes = engine.apply_rows(&batch.rows);
            for row in &batch.rows {
                if let Some(provider) = engine.provider_of(&row.fqdn) {
                    usage.apply(provider, row.rdata.rtype(), &row.rdata, row.day, row.cnt);
                }
            }
            scorer.observe(&changes, batch.offset_us);
        }
        let report = engine.into_report();

        let figures = vec![
            (
                "monthly_new",
                series_json(&monthly_new_fqdns(&report)).render(),
            ),
            (
                "monthly_requests",
                series_json(&usage.monthly_series()).render(),
            ),
            (
                "ingress",
                ingress_json(&usage.ingress_rows(&report)).render(),
            ),
            (
                "invocation",
                invocation_json(&invocation_report(&report)).render(),
            ),
        ];

        let mut detections = scorer.into_detections();
        detections.sort_by(|a, b| a.fqdn.cmp(&b.fqdn));
        let by_fqdn = detections
            .iter()
            .enumerate()
            .map(|(i, d)| (d.fqdn.clone(), i))
            .collect();

        ServeState {
            backend,
            report,
            detections,
            by_fqdn,
            store_rows,
            figures,
        }
    }

    pub fn report(&self) -> &IdentificationReport {
        &self.report
    }

    pub fn backend(&self) -> &B {
        &self.backend
    }

    pub fn candidate_count(&self) -> usize {
        self.detections.len()
    }

    /// Identified function fqdns in report order — the load harness's
    /// key universe.
    pub fn function_fqdns(&self) -> Vec<String> {
        self.report
            .functions
            .iter()
            .map(|f| f.fqdn.to_string())
            .collect()
    }

    /// Status document body (counts only; the router appends live cache
    /// stats).
    pub fn status_json(&self) -> Json {
        Json::Obj(vec![
            ("functions".into(), num(self.report.functions.len() as f64)),
            ("unmatched".into(), num(self.report.unmatched as f64)),
            ("candidates".into(), num(self.detections.len() as f64)),
            (
                "total_requests".into(),
                num(self.report.total_requests as f64),
            ),
            ("store_fqdns".into(), num(self.backend.fqdn_count() as f64)),
            ("store_rows".into(), num(self.store_rows as f64)),
        ])
    }

    /// `GET /v1/verdict/{fqdn}` — identified / noise / unknown.
    pub fn verdict_body(&self, raw: &str) -> (u16, String) {
        let Ok(fqdn) = Fqdn::parse(raw) else {
            return error_body(400, "invalid fqdn");
        };
        if let Some(f) = self.report.find(&fqdn) {
            let mut obj = vec![
                ("fqdn".into(), Json::Str(raw.to_string())),
                ("verdict".into(), Json::Str("function".into())),
                ("provider".into(), Json::Str(f.provider.label().into())),
                (
                    "region".into(),
                    f.region
                        .as_ref()
                        .map_or(Json::Null, |r| Json::Str(r.clone())),
                ),
                ("first_seen_day".into(), num(f.agg.first_seen_all.0 as f64)),
                ("last_seen_day".into(), num(f.agg.last_seen_all.0 as f64)),
                ("days_active".into(), num(f.agg.days_count as f64)),
                ("total_requests".into(), num(f.agg.total_request_cnt as f64)),
                ("lifespan_days".into(), num(f.agg.lifespan_days() as f64)),
            ];
            obj.push((
                "activity_density".into(),
                num((f.agg.activity_density() * 1e6).round() / 1e6),
            ));
            return (200, Json::Obj(obj).render());
        }
        if self.backend.aggregate(&fqdn).is_some() {
            return (
                200,
                Json::Obj(vec![
                    ("fqdn".into(), Json::Str(raw.to_string())),
                    ("verdict".into(), Json::Str("noise".into())),
                ])
                .render(),
            );
        }
        error_body(404, "fqdn not observed")
    }

    /// `GET /v1/usage/{fqdn}` — the per-function read path: monthly
    /// request buckets and per-rtype totals swept from the backend on
    /// demand (this is the query the LRU cache earns its keep on).
    pub fn usage_body(&self, raw: &str) -> (u16, String) {
        let Ok(fqdn) = Fqdn::parse(raw) else {
            return error_body(400, "invalid fqdn");
        };
        if self.backend.aggregate(&fqdn).is_none() {
            return error_body(404, "fqdn not observed");
        }
        let mut months: BTreeMap<MonthStamp, u64> = BTreeMap::new();
        let mut by_rtype = [0u64; 3];
        let mut total = 0u64;
        self.backend
            .for_each_record_of(&fqdn, &mut |rtype, _rdata, day, cnt| {
                *months.entry(day.month()).or_insert(0) += cnt;
                by_rtype[rtype as usize] += cnt;
                total += cnt;
            });
        let provider = self
            .report
            .find(&fqdn)
            .map_or(Json::Null, |f| Json::Str(f.provider.label().into()));
        let body = Json::Obj(vec![
            ("fqdn".into(), Json::Str(raw.to_string())),
            ("provider".into(), provider),
            (
                "months".into(),
                Json::Arr(months.keys().map(|m| Json::Str(m.label())).collect()),
            ),
            (
                "requests".into(),
                Json::Arr(months.values().map(|&v| num(v as f64)).collect()),
            ),
            (
                "by_rtype".into(),
                Json::Obj(
                    ["A", "CNAME", "AAAA"]
                        .iter()
                        .zip(by_rtype)
                        .map(|(name, v)| (name.to_string(), num(v as f64)))
                        .collect(),
                ),
            ),
            ("total_requests".into(), num(total as f64)),
        ]);
        (200, body.render())
    }

    /// `GET /v1/abuse/{fqdn}` — candidate status from the scorer state.
    pub fn abuse_body(&self, raw: &str) -> (u16, String) {
        let Ok(fqdn) = Fqdn::parse(raw) else {
            return error_body(400, "invalid fqdn");
        };
        if let Some(&i) = self.by_fqdn.get(&fqdn) {
            return (200, detection_json(&self.detections[i]).render());
        }
        match self.report.find(&fqdn) {
            Some(f) => (
                200,
                Json::Obj(vec![
                    ("fqdn".into(), Json::Str(raw.to_string())),
                    ("candidate".into(), Json::Bool(false)),
                    ("days_active".into(), num(f.agg.days_count as f64)),
                    ("total_requests".into(), num(f.agg.total_request_cnt as f64)),
                ])
                .render(),
            ),
            None => error_body(404, "not an identified function"),
        }
    }

    /// `GET /v1/candidates?offset=&limit=` — paged candidate listing.
    pub fn candidates_body(&self, offset: usize, limit: usize) -> (u16, String) {
        let end = (offset + limit.clamp(1, 1000)).min(self.detections.len());
        let page = if offset < end {
            &self.detections[offset..end]
        } else {
            &[]
        };
        let body = Json::Obj(vec![
            ("count".into(), num(self.detections.len() as f64)),
            ("offset".into(), num(offset as f64)),
            (
                "candidates".into(),
                Json::Arr(page.iter().map(detection_json).collect()),
            ),
        ]);
        (200, body.render())
    }

    /// `GET /v1/figures/{name}` — pre-rendered figure documents.
    pub fn figure_body(&self, name: &str) -> (u16, String) {
        match self.figures.iter().find(|(n, _)| *n == name) {
            Some((_, body)) => (200, body.clone()),
            None => error_body(404, "unknown figure"),
        }
    }
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn error_body(status: u16, msg: &str) -> (u16, String) {
    (
        status,
        Json::Obj(vec![("error".into(), Json::Str(msg.into()))]).render(),
    )
}

fn detection_json(d: &Detection) -> Json {
    Json::Obj(vec![
        ("fqdn".into(), Json::Str(d.fqdn.to_string())),
        ("candidate".into(), Json::Bool(true)),
        ("provider".into(), Json::Str(d.provider.label().into())),
        ("first_seen_us".into(), num(d.first_seen_us as f64)),
        ("flagged_us".into(), num(d.flagged_us as f64)),
        ("latency_us".into(), num(d.latency_us() as f64)),
    ])
}

/// Figure 3/4 series as JSON. Providers render in `ProviderId::ALL`
/// order so the document is byte-stable (the series' own map is a
/// `HashMap`).
fn series_json(s: &MonthlySeries) -> Json {
    Json::Obj(vec![
        (
            "months".into(),
            Json::Arr(s.months.iter().map(|m| Json::Str(m.label())).collect()),
        ),
        (
            "total".into(),
            Json::Arr(s.total().iter().map(|&v| num(v as f64)).collect()),
        ),
        (
            "per_provider".into(),
            Json::Obj(
                ProviderId::ALL
                    .iter()
                    .filter_map(|&p| {
                        s.for_provider(p).map(|vals| {
                            (
                                p.label().to_string(),
                                Json::Arr(vals.iter().map(|&v| num(v as f64)).collect()),
                            )
                        })
                    })
                    .collect(),
            ),
        ),
    ])
}

fn triple(name: &str, (a, c, aaaa): (f64, f64, f64)) -> (String, Json) {
    (
        name.to_string(),
        Json::Arr(vec![num(round6(a)), num(round6(c)), num(round6(aaaa))]),
    )
}

fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

fn ingress_json(rows: &[IngressRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::Obj(vec![
                    ("provider".into(), Json::Str(r.provider.label().into())),
                    ("domains".into(), num(r.domains as f64)),
                    ("total_requests".into(), num(r.total_requests as f64)),
                    ("regions".into(), num(r.regions as f64)),
                    triple("rtype_share", r.rtype_share),
                    (
                        "rdata_cnt".into(),
                        Json::Arr(vec![
                            num(r.rdata_cnt.0 as f64),
                            num(r.rdata_cnt.1 as f64),
                            num(r.rdata_cnt.2 as f64),
                        ]),
                    ),
                    triple("top10", r.top10),
                    triple("entropy_bits", r.entropy_bits),
                ])
            })
            .collect(),
    )
}

fn invocation_json(r: &fw_core::usage::InvocationReport) -> Json {
    Json::Obj(vec![
        ("functions".into(), num(r.functions as f64)),
        ("frac_under_5".into(), num(round6(r.frac_under_5))),
        ("frac_over_100".into(), num(round6(r.frac_over_100))),
        ("frac_single_day".into(), num(round6(r.frac_single_day))),
        ("frac_under_5_days".into(), num(round6(r.frac_under_5_days))),
        (
            "mean_lifespan_days".into(),
            num(round6(r.mean_lifespan_days)),
        ),
        ("frac_density_one".into(), num(round6(r.frac_density_one))),
        (
            "full_window_functions".into(),
            num(r.full_window_functions as f64),
        ),
        (
            "histogram".into(),
            Json::Arr(
                r.log_histogram
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("lo".into(), num(round6(b.lo))),
                            ("hi".into(), num(round6(b.hi))),
                            ("count".into(), num(b.count as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Rdata};
    use std::net::Ipv4Addr;

    fn test_store() -> PdnsStore {
        let mut store = PdnsStore::new();
        let lambda = Fqdn::parse("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws").unwrap();
        let noise = Fqdn::parse("www.example.com").unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 7));
        // Three active days: crosses the min_active_days candidate gate.
        for d in [19_100, 19_101, 19_102] {
            store.observe_count(&lambda, &ip, DayStamp(d), 10);
        }
        store.observe_count(&noise, &ip, DayStamp(19_100), 99);
        store
    }

    #[test]
    fn verdict_distinguishes_function_noise_unknown() {
        let state = ServeState::build(test_store(), 1);
        let (code, body) = state.verdict_body("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        assert_eq!(code, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("function"));
        assert_eq!(doc.get("provider").and_then(Json::as_str), Some("AWS"));
        assert_eq!(doc.get("total_requests").and_then(Json::as_f64), Some(30.0));

        let (code, body) = state.verdict_body("www.example.com");
        assert_eq!(code, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("noise"));

        let (code, _) = state.verdict_body("never-seen.example.net");
        assert_eq!(code, 404);
        let (code, _) = state.verdict_body("");
        assert_eq!(code, 400);
    }

    #[test]
    fn usage_sweeps_monthly_buckets() {
        let state = ServeState::build(test_store(), 1);
        let (code, body) = state.usage_body("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        assert_eq!(code, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("total_requests").and_then(Json::as_f64), Some(30.0));
        let months = doc.get("months").and_then(Json::as_arr).unwrap();
        assert_eq!(months.len(), 1);
    }

    #[test]
    fn abuse_flags_the_sustained_function() {
        let state = ServeState::build(test_store(), 1);
        assert_eq!(state.candidate_count(), 1);
        let (code, body) = state.abuse_body("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        assert_eq!(code, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("candidate"), Some(&Json::Bool(true)));
        // Flagged on the third active day: 2 virtual days of latency.
        assert_eq!(
            doc.get("latency_us").and_then(Json::as_f64),
            Some(2.0 * fw_stream::DAY_US as f64)
        );
        let (_, body) = state.candidates_body(0, 10);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn figures_render_and_are_stable() {
        let state = ServeState::build(test_store(), 1);
        for name in ["monthly_new", "monthly_requests", "ingress", "invocation"] {
            let (code, body) = state.figure_body(name);
            assert_eq!(code, 200, "figure {name}");
            Json::parse(&body).unwrap_or_else(|e| panic!("figure {name} not JSON: {e}"));
        }
        let (code, _) = state.figure_body("nope");
        assert_eq!(code, 404);
    }
}
