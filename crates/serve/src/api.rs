//! Request routing over `fw-http`, fronted by the sharded LRU cache.
//!
//! Routing is a static match over the first path segments — no
//! allocation on the hot path until a cache miss forces a compute.
//! Every response except `/v1/status` is cacheable: bodies are pure
//! functions of the frozen [`ServeState`], so a cached byte stream is
//! always identical to a recomputed one (the load harness digests
//! responses to prove it). `/v1/status` stays uncached because it
//! reports the live cache counters themselves.
//!
//! Instrumentation: one latency histogram per endpoint
//! (`fw.serve.latency_us.<endpoint>`), `fw.serve.requests` /
//! `fw.serve.responses.<class>` counters, and a trace span per request
//! when the trace layer is armed.

use crate::cache::{CacheConfig, CacheStats, CachedResponse, ShardedCache};
use crate::state::ServeState;
use fw_dns::pdns::PdnsBackend;
use fw_http::parse::Limits;
use fw_http::server::serve_connection;
use fw_http::types::{Method, Request, Response};
use fw_net::SimNet;
use fw_obs::{counter_inc, Histogram};
use fw_types::Json;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Route classes, used for per-endpoint latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Status,
    Verdict,
    Usage,
    Abuse,
    Candidates,
    Figures,
    NotFound,
}

impl Endpoint {
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Status,
        Endpoint::Verdict,
        Endpoint::Usage,
        Endpoint::Abuse,
        Endpoint::Candidates,
        Endpoint::Figures,
        Endpoint::NotFound,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Status => "status",
            Endpoint::Verdict => "verdict",
            Endpoint::Usage => "usage",
            Endpoint::Abuse => "abuse",
            Endpoint::Candidates => "candidates",
            Endpoint::Figures => "figures",
            Endpoint::NotFound => "not_found",
        }
    }
}

/// The API: frozen state + response cache + instrumentation handles.
pub struct ServeApi<B: PdnsBackend> {
    state: ServeState<B>,
    cache: ShardedCache,
    latency: Vec<Arc<Histogram>>,
    seq: AtomicU64,
}

impl<B: PdnsBackend> ServeApi<B> {
    pub fn new(state: ServeState<B>, cache: CacheConfig) -> ServeApi<B> {
        let latency = Endpoint::ALL
            .iter()
            .map(|ep| fw_obs::registry().histogram(&format!("fw.serve.latency_us.{}", ep.label())))
            .collect();
        ServeApi {
            state,
            cache: ShardedCache::new(cache),
            latency,
            seq: AtomicU64::new(0),
        }
    }

    pub fn state(&self) -> &ServeState<B> {
        &self.state
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serve one request. The returned response is fully rendered; the
    /// caller (usually [`serve_connection`]) owns framing.
    pub fn handle(&self, req: &Request) -> Response {
        let t = Instant::now();
        let _span = fw_obs::trace_span_arg("serve/req", self.seq.fetch_add(1, Ordering::Relaxed));
        counter_inc!("fw.serve.requests");
        let (ep, resp) = self.route(req);
        if fw_obs::enabled() {
            self.latency[ep as usize].record(t.elapsed().as_micros() as u64);
            match resp.status {
                200..=299 => counter_inc!("fw.serve.responses.ok"),
                400..=499 => counter_inc!("fw.serve.responses.client_error"),
                _ => counter_inc!("fw.serve.responses.other"),
            }
        }
        resp
    }

    fn route(&self, req: &Request) -> (Endpoint, Response) {
        if req.method != Method::Get {
            return (
                Endpoint::NotFound,
                Response::json(405, "{\"error\": \"GET only\"}"),
            );
        }
        let path = req.path();
        let mut segs = path.trim_start_matches('/').splitn(4, '/');
        match (segs.next(), segs.next(), segs.next(), segs.next()) {
            (Some("v1"), Some("status"), None, None) => (Endpoint::Status, self.status()),
            (Some("v1"), Some("verdict"), Some(fqdn), None) => (
                Endpoint::Verdict,
                self.cached(&req.target, |s| s.verdict_body(fqdn)),
            ),
            (Some("v1"), Some("usage"), Some(fqdn), None) => (
                Endpoint::Usage,
                self.cached(&req.target, |s| s.usage_body(fqdn)),
            ),
            (Some("v1"), Some("abuse"), Some(fqdn), None) => (
                Endpoint::Abuse,
                self.cached(&req.target, |s| s.abuse_body(fqdn)),
            ),
            (Some("v1"), Some("candidates"), None, None) => {
                let (offset, limit) = paging(req.query());
                (
                    Endpoint::Candidates,
                    self.cached(&req.target, |s| s.candidates_body(offset, limit)),
                )
            }
            (Some("v1"), Some("figures"), Some(name), None) => (
                Endpoint::Figures,
                self.cached(&req.target, |s| s.figure_body(name)),
            ),
            _ => (
                Endpoint::NotFound,
                Response::json(404, "{\"error\": \"no such endpoint\"}"),
            ),
        }
    }

    fn status(&self) -> Response {
        let cache = self.cache.stats();
        let mut doc = match self.state.status_json() {
            Json::Obj(fields) => fields,
            other => vec![("state".to_string(), other)],
        };
        doc.push((
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(cache.hits as f64)),
                ("misses".to_string(), Json::Num(cache.misses as f64)),
                ("evictions".to_string(), Json::Num(cache.evictions as f64)),
                ("entries".to_string(), Json::Num(cache.entries as f64)),
            ]),
        ));
        Response::json(200, &Json::Obj(doc).render())
    }

    /// Cache-through: key on the full request target, compute on miss.
    fn cached(
        &self,
        target: &str,
        compute: impl FnOnce(&ServeState<B>) -> (u16, String),
    ) -> Response {
        if let Some(hit) = self.cache.get(target) {
            return Response::with_body(hit.status, "application/json", hit.body.clone());
        }
        let (status, body) = compute(&self.state);
        let body = body.into_bytes();
        self.cache.put(
            target,
            Arc::new(CachedResponse {
                status,
                body: body.clone(),
            }),
        );
        Response::with_body(status, "application/json", body)
    }

    /// Register this API as a SimNet listener: each accepted connection
    /// runs the standard keep-alive serve loop on its handler thread.
    pub fn serve_on(self: &Arc<Self>, net: &SimNet, addr: SocketAddr)
    where
        B: Send + Sync + 'static,
    {
        let api = Arc::clone(self);
        net.listen_fn(addr, move |mut conn| {
            let _ = conn.set_read_timeout(None);
            let api = Arc::clone(&api);
            serve_connection(&mut *conn, &Limits::default(), &move |req: &Request| {
                api.handle(req)
            });
        });
    }
}

/// Parse `offset=&limit=` out of a query string (defaults 0 / 50).
fn paging(query: Option<&str>) -> (usize, usize) {
    let (mut offset, mut limit) = (0usize, 50usize);
    for pair in query.unwrap_or("").split('&') {
        match pair.split_once('=') {
            Some(("offset", v)) => offset = v.parse().unwrap_or(0),
            Some(("limit", v)) => limit = v.parse().unwrap_or(50),
            _ => {}
        }
    }
    (offset, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_types::{DayStamp, Fqdn, Rdata};
    use std::net::Ipv4Addr;

    fn api() -> ServeApi<PdnsStore> {
        let mut store = PdnsStore::new();
        let f = Fqdn::parse("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws").unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 9));
        for d in [19_100, 19_101, 19_102] {
            store.observe_count(&f, &ip, DayStamp(d), 40);
        }
        ServeApi::new(ServeState::build(store, 1), CacheConfig::default())
    }

    #[test]
    fn routes_resolve_and_missing_paths_404() {
        let api = api();
        let ok = |target: &str| {
            let resp = api.handle(&Request::get(target, "api.sim"));
            assert_eq!(resp.status, 200, "{target}");
            Json::parse(&resp.body_text()).expect("json body");
        };
        ok("/v1/status");
        ok("/v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/usage/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/abuse/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/candidates?offset=0&limit=5");
        ok("/v1/figures/ingress");
        for target in ["/", "/v2/status", "/v1/nope", "/v1/status/extra"] {
            let resp = api.handle(&Request::get(target, "api.sim"));
            assert_eq!(resp.status, 404, "{target}");
        }
        let mut post = Request::get("/v1/status", "api.sim");
        post.method = Method::Post;
        assert_eq!(api.handle(&post).status, 405);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_bytes() {
        let api = api();
        let target = "/v1/usage/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws";
        let a = api.handle(&Request::get(target, "api.sim"));
        let stats = api.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let b = api.handle(&Request::get(target, "api.sim"));
        assert_eq!(api.cache_stats().hits, 1);
        assert_eq!(a.body, b.body);
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn status_reports_live_cache_counters() {
        let api = api();
        api.handle(&Request::get("/v1/figures/invocation", "api.sim"));
        api.handle(&Request::get("/v1/figures/invocation", "api.sim"));
        let resp = api.handle(&Request::get("/v1/status", "api.sim"));
        let doc = Json::parse(&resp.body_text()).unwrap();
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    }
}
