//! Request routing over `fw-http`, fronted by the sharded LRU cache.
//!
//! Routing is a static match over the first path segments — no
//! allocation on the hot path until a cache miss forces a compute.
//! Every response except `/v1/status` is cacheable: bodies are pure
//! functions of the frozen [`ServeState`], so a cached byte stream is
//! always identical to a recomputed one (the load harness digests
//! responses to prove it). `/v1/status` stays uncached because it
//! reports the live cache counters themselves.
//!
//! Two serve paths share the same router and cache:
//!
//! * the legacy [`ServeApi::handle`] closure (via
//!   [`serve_connection`]), which materializes a [`Request`] and a
//!   [`Response`] per exchange — kept for the HTTP client tests and as
//!   the executable spec;
//! * the zero-copy [`ServeApi::serve_fast`] loop, which parses in place
//!   with [`fw_http::fast`], answers cache hits by writing the stored
//!   wire image straight to the connection (one pointer clone + one
//!   `write_all`), and renders misses into a reusable scratch buffer.
//!   [`ServeApi::serve_pool`] runs it on a fixed pool of
//!   clock-registered accept workers with flow-steered connections.
//!
//! Both paths emit byte-identical responses — the fast renderers are
//! proptested against the scalar serializer — so the load harness
//! digest cannot tell them apart.
//!
//! Instrumentation: one latency histogram per endpoint
//! (`fw.serve.latency_us.<endpoint>`), `fw.serve.requests` /
//! `fw.serve.responses.<class>` counters, and a trace span per request
//! when the trace layer is armed.

use crate::cache::{CacheConfig, CacheStats, CachedResponse, ShardedCache};
use crate::state::ServeState;
use fw_dns::pdns::PdnsBackend;
use fw_http::fast::{read_request_fast, render_response, render_status, Scratch};
use fw_http::parse::{write_response, HttpError, Limits};
use fw_http::server::serve_connection;
use fw_http::types::{HeaderMap, Method, Request, Response};
use fw_net::{Connection, SimNet};
use fw_obs::{counter_inc, Histogram};
use fw_types::Json;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Route classes, used for per-endpoint latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Status,
    Verdict,
    Usage,
    Abuse,
    Candidates,
    Figures,
    NotFound,
}

impl Endpoint {
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Status,
        Endpoint::Verdict,
        Endpoint::Usage,
        Endpoint::Abuse,
        Endpoint::Candidates,
        Endpoint::Figures,
        Endpoint::NotFound,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Status => "status",
            Endpoint::Verdict => "verdict",
            Endpoint::Usage => "usage",
            Endpoint::Abuse => "abuse",
            Endpoint::Candidates => "candidates",
            Endpoint::Figures => "figures",
            Endpoint::NotFound => "not_found",
        }
    }
}

const BODY_404: &str = "{\"error\": \"no such endpoint\"}";
const BODY_405: &str = "{\"error\": \"GET only\"}";

/// The API: frozen state + response cache + instrumentation handles.
///
/// The state rides behind an `Arc` so several `ServeApi` instances (the
/// worker-scaling sweep builds one per worker count) can front the same
/// frozen snapshot without rebuilding it.
pub struct ServeApi<B: PdnsBackend> {
    state: Arc<ServeState<B>>,
    cache: ShardedCache,
    latency: Vec<Arc<Histogram>>,
    seq: AtomicU64,
    /// Pre-rendered wire images for the two constant error responses.
    wire_404: CachedResponse,
    wire_405: CachedResponse,
}

impl<B: PdnsBackend> ServeApi<B> {
    pub fn new(state: Arc<ServeState<B>>, cache: CacheConfig) -> ServeApi<B> {
        let latency = Endpoint::ALL
            .iter()
            .map(|ep| fw_obs::registry().histogram(&format!("fw.serve.latency_us.{}", ep.label())))
            .collect();
        ServeApi {
            state,
            cache: ShardedCache::new(cache),
            latency,
            seq: AtomicU64::new(0),
            wire_404: CachedResponse::render(404, "application/json", BODY_404.as_bytes()),
            wire_405: CachedResponse::render(405, "application/json", BODY_405.as_bytes()),
        }
    }

    pub fn state(&self) -> &ServeState<B> {
        &self.state
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Serve one request. The returned response is fully rendered; the
    /// caller (usually [`serve_connection`]) owns framing.
    pub fn handle(&self, req: &Request) -> Response {
        let t = Instant::now();
        let _span = fw_obs::trace_span_arg("serve/req", self.seq.fetch_add(1, Ordering::Relaxed));
        counter_inc!("fw.serve.requests");
        let (ep, resp) = self.route(req);
        if fw_obs::enabled() {
            self.latency[ep as usize].record(t.elapsed().as_micros() as u64);
            match resp.status {
                200..=299 => counter_inc!("fw.serve.responses.ok"),
                400..=499 => counter_inc!("fw.serve.responses.client_error"),
                _ => counter_inc!("fw.serve.responses.other"),
            }
        }
        resp
    }

    fn route(&self, req: &Request) -> (Endpoint, Response) {
        if req.method != Method::Get {
            return (Endpoint::NotFound, Response::json(405, BODY_405));
        }
        match self.route_target(&req.target) {
            (ep, Routed::Status) => (ep, Response::json(200, &self.status_body())),
            (ep, Routed::Cached(entry)) => (
                ep,
                Response::with_body(entry.status, "application/json", entry.body().to_vec()),
            ),
            (ep, Routed::NotFound) => (ep, Response::json(404, BODY_404)),
        }
    }

    /// Render the live status document (uncached by design: it reports
    /// the cache's own counters).
    fn status_body(&self) -> String {
        let cache = self.cache.stats();
        let mut doc = match self.state.status_json() {
            Json::Obj(fields) => fields,
            other => vec![("state".to_string(), other)],
        };
        doc.push((
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(cache.hits as f64)),
                ("misses".to_string(), Json::Num(cache.misses as f64)),
                ("evictions".to_string(), Json::Num(cache.evictions as f64)),
                ("entries".to_string(), Json::Num(cache.entries as f64)),
            ]),
        ));
        Json::Obj(doc).render()
    }

    /// Route a GET target to its endpoint class and response source.
    /// Shared by the legacy and fast serve paths so they cannot drift.
    fn route_target(&self, target: &str) -> (Endpoint, Routed) {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let mut segs = path.trim_start_matches('/').splitn(4, '/');
        match (segs.next(), segs.next(), segs.next(), segs.next()) {
            (Some("v1"), Some("status"), None, None) => (Endpoint::Status, Routed::Status),
            (Some("v1"), Some("verdict"), Some(fqdn), None) => (
                Endpoint::Verdict,
                Routed::Cached(self.cached(target, |s| s.verdict_body(fqdn))),
            ),
            (Some("v1"), Some("usage"), Some(fqdn), None) => (
                Endpoint::Usage,
                Routed::Cached(self.cached(target, |s| s.usage_body(fqdn))),
            ),
            (Some("v1"), Some("abuse"), Some(fqdn), None) => (
                Endpoint::Abuse,
                Routed::Cached(self.cached(target, |s| s.abuse_body(fqdn))),
            ),
            (Some("v1"), Some("candidates"), None, None) => {
                let (offset, limit) = paging(query);
                (
                    Endpoint::Candidates,
                    Routed::Cached(self.cached(target, |s| s.candidates_body(offset, limit))),
                )
            }
            (Some("v1"), Some("figures"), Some(name), None) => (
                Endpoint::Figures,
                Routed::Cached(self.cached(target, |s| s.figure_body(name))),
            ),
            _ => (Endpoint::NotFound, Routed::NotFound),
        }
    }

    /// Cache-through: key on the full request target, compute on miss.
    /// Returns the shared wire image — hits clone a pointer, nothing
    /// else.
    fn cached(
        &self,
        target: &str,
        compute: impl FnOnce(&ServeState<B>) -> (u16, String),
    ) -> Arc<CachedResponse> {
        let h = ShardedCache::hash_key(target);
        if let Some(hit) = self.cache.get_h(target, h) {
            return hit;
        }
        let (status, body) = compute(&self.state);
        let entry = Arc::new(CachedResponse::render(
            status,
            "application/json",
            body.as_bytes(),
        ));
        self.cache.put_h(target, h, Arc::clone(&entry));
        entry
    }

    /// The zero-copy serve loop: parse in place, write cache hits as
    /// stored wire images, render everything else into the reusable
    /// scratch buffer. Byte-for-byte equivalent to running
    /// [`serve_connection`] over [`ServeApi::handle`].
    pub fn serve_fast(&self, conn: &mut dyn Connection, scratch: &mut Scratch) {
        let limits = Limits::default();
        'serve: loop {
            let req = match read_request_fast(conn, scratch, &limits) {
                Ok(r) => r,
                Err(HttpError::Eof) | Err(HttpError::Io(_)) => break,
                Err(HttpError::Parse(_)) | Err(HttpError::TooLarge(_)) => {
                    scratch.out.clear();
                    render_status(&mut scratch.out, 400);
                    let _ = conn.write_all(&scratch.out);
                    break;
                }
            };
            if req.close {
                // Rare path (no harness client sends `Connection:
                // close`): replay through the legacy handler so the
                // close header lands exactly where serve_connection
                // puts it.
                let mut headers = HeaderMap::new();
                for (n, v) in scratch.headers(&req) {
                    headers.insert(n, v);
                }
                let request = Request {
                    method: req.method,
                    target: scratch.target(&req).to_string(),
                    headers,
                    body: scratch.body(&req).to_vec(),
                };
                let mut resp = self.handle(&request);
                resp.headers.set("Connection", "close");
                let _ = write_response(conn, &resp);
                break;
            }
            let t = Instant::now();
            let _span =
                fw_obs::trace_span_arg("serve/req", self.seq.fetch_add(1, Ordering::Relaxed));
            counter_inc!("fw.serve.requests");
            let (ep, status) = if req.method != Method::Get {
                if conn.write_all(self.wire_405.wire()).is_err() {
                    break 'serve;
                }
                (Endpoint::NotFound, 405)
            } else {
                match self.route_target(scratch.target(&req)) {
                    (ep, Routed::Status) => {
                        let body = self.status_body();
                        scratch.out.clear();
                        render_response(&mut scratch.out, 200, "application/json", body.as_bytes());
                        if conn.write_all(&scratch.out).is_err() {
                            break 'serve;
                        }
                        (ep, 200)
                    }
                    (ep, Routed::Cached(entry)) => {
                        if conn.write_all(entry.wire()).is_err() {
                            break 'serve;
                        }
                        (ep, entry.status)
                    }
                    (ep, Routed::NotFound) => {
                        if conn.write_all(self.wire_404.wire()).is_err() {
                            break 'serve;
                        }
                        (ep, 404)
                    }
                }
            };
            if fw_obs::enabled() {
                self.latency[ep as usize].record(t.elapsed().as_micros() as u64);
                match status {
                    200..=299 => counter_inc!("fw.serve.responses.ok"),
                    400..=499 => counter_inc!("fw.serve.responses.client_error"),
                    _ => counter_inc!("fw.serve.responses.other"),
                }
            }
        }
        conn.shutdown_write();
    }

    /// Register this API as a SimNet listener: each accepted connection
    /// runs the standard keep-alive serve loop on its handler thread.
    pub fn serve_on(self: &Arc<Self>, net: &SimNet, addr: SocketAddr)
    where
        B: Send + Sync + 'static,
    {
        let api = Arc::clone(self);
        net.listen_fn(addr, move |mut conn| {
            let _ = conn.set_read_timeout(None);
            let api = Arc::clone(&api);
            serve_connection(&mut *conn, &Limits::default(), &move |req: &Request| {
                api.handle(req)
            });
        });
    }

    /// Register this API as a pooled SimNet listener: `workers` accept
    /// loops, each owning one reusable [`Scratch`] and running
    /// [`ServeApi::serve_fast`] on every steered connection.
    pub fn serve_pool(self: &Arc<Self>, net: &SimNet, addr: SocketAddr, workers: usize)
    where
        B: Send + Sync + 'static,
    {
        let api = Arc::clone(self);
        net.listen_pool(addr, workers, move |_w| {
            let api = Arc::clone(&api);
            let mut scratch = Scratch::new();
            move |mut conn: Box<dyn Connection>| {
                let _ = conn.set_read_timeout(None);
                api.serve_fast(&mut *conn, &mut scratch);
            }
        });
    }
}

/// Where a routed response comes from.
enum Routed {
    /// Live status document (uncached).
    Status,
    /// Cache-through wire image.
    Cached(Arc<CachedResponse>),
    NotFound,
}

/// Parse `offset=&limit=` out of a query string (defaults 0 / 50).
fn paging(query: Option<&str>) -> (usize, usize) {
    let (mut offset, mut limit) = (0usize, 50usize);
    for pair in query.unwrap_or("").split('&') {
        match pair.split_once('=') {
            Some(("offset", v)) => offset = v.parse().unwrap_or(0),
            Some(("limit", v)) => limit = v.parse().unwrap_or(50),
            _ => {}
        }
    }
    (offset, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_dns::pdns::PdnsStore;
    use fw_net::pipe_pair;
    use fw_types::{DayStamp, Fqdn, Rdata};
    use std::net::Ipv4Addr;

    fn api() -> ServeApi<PdnsStore> {
        let mut store = PdnsStore::new();
        let f = Fqdn::parse("a1b2c3d4e5f6.lambda-url.us-east-1.on.aws").unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 9));
        for d in [19_100, 19_101, 19_102] {
            store.observe_count(&f, &ip, DayStamp(d), 40);
        }
        ServeApi::new(
            Arc::new(ServeState::build(store, 1)),
            CacheConfig::default(),
        )
    }

    #[test]
    fn routes_resolve_and_missing_paths_404() {
        let api = api();
        let ok = |target: &str| {
            let resp = api.handle(&Request::get(target, "api.sim"));
            assert_eq!(resp.status, 200, "{target}");
            Json::parse(&resp.body_text()).expect("json body");
        };
        ok("/v1/status");
        ok("/v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/usage/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/abuse/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws");
        ok("/v1/candidates?offset=0&limit=5");
        ok("/v1/figures/ingress");
        for target in ["/", "/v2/status", "/v1/nope", "/v1/status/extra"] {
            let resp = api.handle(&Request::get(target, "api.sim"));
            assert_eq!(resp.status, 404, "{target}");
        }
        let mut post = Request::get("/v1/status", "api.sim");
        post.method = Method::Post;
        assert_eq!(api.handle(&post).status, 405);
    }

    #[test]
    fn repeat_requests_hit_the_cache_with_identical_bytes() {
        let api = api();
        let target = "/v1/usage/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws";
        let a = api.handle(&Request::get(target, "api.sim"));
        let stats = api.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let b = api.handle(&Request::get(target, "api.sim"));
        assert_eq!(api.cache_stats().hits, 1);
        assert_eq!(a.body, b.body);
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn status_reports_live_cache_counters() {
        let api = api();
        api.handle(&Request::get("/v1/figures/invocation", "api.sim"));
        api.handle(&Request::get("/v1/figures/invocation", "api.sim"));
        let resp = api.handle(&Request::get("/v1/status", "api.sim"));
        let doc = Json::parse(&resp.body_text()).unwrap();
        let cache = doc.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    }

    /// Drive the same request sequence through `serve_connection` +
    /// `handle` and through `serve_fast`, and require byte-identical
    /// response streams.
    #[test]
    fn fast_path_emits_byte_identical_responses() {
        use fw_http::parse::write_request;
        let targets = [
            "/v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
            "/v1/usage/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
            "/v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
            "/v1/abuse/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws",
            "/v1/candidates?offset=20&limit=20",
            "/v1/figures/ingress",
            "/v1/verdict/miss-1234.not-observed.example",
            "/does/not/exist",
        ];
        // Raw-byte recorder around the client side; exchanges stay
        // strictly serial (request, then whole response), which is the
        // only traffic shape either serve loop supports — neither
        // carries read-ahead across `read_request` calls.
        #[derive(Debug)]
        struct Tap<'c> {
            inner: &'c mut dyn Connection,
            raw: &'c mut Vec<u8>,
        }
        impl fw_net::Connection for Tap<'_> {
            fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
                self.inner.write_all(buf)
            }
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.inner.read(buf)?;
                self.raw.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn set_read_timeout(
                &mut self,
                timeout: Option<std::time::Duration>,
            ) -> std::io::Result<()> {
                self.inner.set_read_timeout(timeout)
            }
            fn shutdown_write(&mut self) {
                self.inner.shutdown_write()
            }
            fn peer_addr(&self) -> std::net::SocketAddr {
                self.inner.peer_addr()
            }
        }
        let drive = |fast: bool| -> Vec<u8> {
            use fw_http::parse::read_response;
            let api = Arc::new(api());
            let (mut client, mut server) = pipe_pair(
                "10.0.0.1:50000".parse().unwrap(),
                "203.0.113.1:80".parse().unwrap(),
            );
            let srv = std::thread::spawn(move || {
                if fast {
                    let mut scratch = Scratch::new();
                    api.serve_fast(&mut server, &mut scratch);
                } else {
                    serve_connection(&mut server, &Limits::default(), &move |req: &Request| {
                        api.handle(req)
                    });
                }
            });
            let mut raw = Vec::new();
            for target in targets {
                write_request(&mut client, &Request::get(target, "api.sim")).unwrap();
                let mut tap = Tap {
                    inner: &mut client,
                    raw: &mut raw,
                };
                read_response(&mut tap, &Limits::default(), false).unwrap();
            }
            client.shutdown_write();
            drop(client);
            srv.join().unwrap();
            raw
        };
        let legacy = drive(false);
        let fast = drive(true);
        assert!(!legacy.is_empty());
        assert_eq!(legacy, fast);
    }

    /// `Connection: close` and malformed heads take the same exit paths
    /// on both serve loops.
    #[test]
    fn fast_path_close_and_bad_request_match_legacy() {
        use fw_http::parse::{read_response, write_request};
        let drive = |fast: bool, bytes: &[u8]| -> Vec<u8> {
            let api = Arc::new(api());
            let (mut client, mut server) = pipe_pair(
                "10.0.0.1:50000".parse().unwrap(),
                "203.0.113.1:80".parse().unwrap(),
            );
            let bytes = bytes.to_vec();
            let srv = std::thread::spawn(move || {
                if fast {
                    let mut scratch = Scratch::new();
                    api.serve_fast(&mut server, &mut scratch);
                } else {
                    serve_connection(&mut server, &Limits::default(), &move |req: &Request| {
                        api.handle(req)
                    });
                }
            });
            client.write_all(&bytes).unwrap();
            client.shutdown_write();
            let mut raw = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                match client.read(&mut buf).unwrap() {
                    0 => break,
                    n => raw.extend_from_slice(&buf[..n]),
                }
            }
            srv.join().unwrap();
            raw
        };
        let mut close_req = Vec::new();
        {
            let (mut a, mut b) = pipe_pair(
                "10.0.0.2:50000".parse().unwrap(),
                "203.0.113.1:80".parse().unwrap(),
            );
            let mut req = Request::get("/v1/status", "api.sim");
            req.headers.insert("Connection", "close");
            write_request(&mut a, &req).unwrap();
            a.shutdown_write();
            let mut buf = [0u8; 4096];
            loop {
                match b.read(&mut buf).unwrap() {
                    0 => break,
                    n => close_req.extend_from_slice(&buf[..n]),
                }
            }
        }
        // Status bodies report live counters, so compare framing not
        // bytes: both must parse as one response with Connection: close.
        for fast in [false, true] {
            let raw = drive(fast, &close_req);
            let (mut a, mut b) = pipe_pair(
                "10.0.0.3:50000".parse().unwrap(),
                "203.0.113.1:80".parse().unwrap(),
            );
            a.write_all(&raw).unwrap();
            a.shutdown_write();
            let resp = read_response(&mut b, &Limits::default(), false).unwrap();
            assert_eq!(resp.status, 200, "fast={fast}");
            assert_eq!(resp.headers.get("connection"), Some("close"), "fast={fast}");
        }
        let legacy = drive(false, b"GARBAGE REQUEST LINE\r\n\r\n");
        let fast = drive(true, b"GARBAGE REQUEST LINE\r\n\r\n");
        assert_eq!(legacy, fast);
        assert!(!legacy.is_empty());
    }

    /// The pooled fast listener answers over SimNet like the legacy
    /// listener does.
    #[test]
    fn serve_pool_answers_over_simnet() {
        use fw_http::parse::{read_response, write_request};
        let api = Arc::new(api());
        let net = SimNet::new(7);
        let addr: SocketAddr = "10.9.0.1:8080".parse().unwrap();
        api.serve_pool(&net, addr, 2);
        for flow in 0..4u64 {
            let mut conn = net.connect_flow_id(addr, flow).unwrap();
            conn.set_read_timeout(None).unwrap();
            let target = "/v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws";
            write_request(&mut conn, &Request::get(target, "api.sim")).unwrap();
            let resp = read_response(&mut conn, &Limits::default(), false).unwrap();
            assert_eq!(resp.status, 200);
            Json::parse(&resp.body_text()).expect("json body");
        }
        assert!(api.cache_stats().hits >= 3);
    }
}
