//! SimNet load harness: millions of keep-alive virtual clients.
//!
//! Topology and virtual-time model (DESIGN.md §15): the API runs as a
//! SimNet listener, so each accepted connection gets a clock-registered
//! handler thread running the keep-alive serve loop. The harness side
//! is a fixed pool of pre-registered worker threads; client ids are
//! partitioned round-robin (`id % workers`), and each worker plays its
//! clients one after another: sleep the *virtual* clock to the client's
//! arrival offset, connect, issue the client's keep-alive request
//! burst, disconnect. While any request is in flight both ends are
//! runnable and the clock is pinned, so request handling is
//! instantaneous in virtual time and wall time measures real server
//! cost; between arrivals every registered thread is blocked and the
//! clock jumps. One run compresses an hour of offered load into
//! wall-seconds without losing the arrival schedule.
//!
//! Determinism: everything a client does — arrival offset, burst
//! length, endpoint mix, target selection — comes from its own RNG
//! stream (`fnv::stream_seed(seed, client_id)`), so the multiset of
//! requests is independent of worker count and wall scheduling. Each
//! client's *response byte stream* is FNV-1a-digested as it is read off
//! the wire ([`TapConn`]), and per-client digests fold into the run
//! digest commutatively (wrapping add + xor of a mixed per-client
//! word) — two runs with the same seed are byte-identical iff their
//! digests match, at any worker count.

use fw_http::fast::{read_response_fast, render_get, Scratch};
use fw_http::parse::Limits;
use fw_net::{Connection, SimNet};
use fw_types::fnv::{fnv1a, stream_seed};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::fmt::Write as _;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Host header every client sends.
const HOST: &str = "api.faaswild.sim";

/// Request mix weights (relative, not normalized).
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    pub verdict: u32,
    pub usage: u32,
    pub abuse: u32,
    pub candidates: u32,
    pub figures: u32,
    pub status: u32,
    /// Lookups for fqdns nobody ever observed (the 404 path).
    pub unknown: u32,
}

impl Default for MixWeights {
    fn default() -> Self {
        MixWeights {
            verdict: 50,
            usage: 20,
            abuse: 10,
            candidates: 5,
            figures: 5,
            status: 2,
            unknown: 8,
        }
    }
}

impl MixWeights {
    fn total(&self) -> u32 {
        self.verdict
            + self.usage
            + self.abuse
            + self.candidates
            + self.figures
            + self.status
            + self.unknown
    }
}

/// Harness knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Distinct virtual clients (one connection each).
    pub clients: u64,
    /// Per-client request burst: uniform in `1..=max_requests_per_client`.
    pub max_requests_per_client: u32,
    /// Worker threads driving clients (1 = serial).
    pub workers: usize,
    pub seed: u64,
    /// Virtual window client arrivals spread over.
    pub window: Duration,
    pub mix: MixWeights,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 10_000,
            max_requests_per_client: 3,
            workers: 8,
            seed: 42,
            window: Duration::from_secs(3600),
            mix: MixWeights::default(),
        }
    }
}

/// The key universe clients draw targets from.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Identified function fqdns (report order).
    pub function_fqdns: Arc<Vec<String>>,
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub clients: u64,
    pub requests: u64,
    /// Status class counts: deterministic per (seed, state).
    pub status_ok: u64,
    pub status_not_found: u64,
    pub status_other: u64,
    /// Requests per endpoint class, [`crate::Endpoint::ALL`] order.
    pub endpoint_counts: [u64; 7],
    /// Commutative FNV fold over every client's response byte stream.
    pub digest: u64,
    pub response_bytes: u64,
    /// Virtual time at the end of the run (≈ the configured window).
    pub virtual_us: u64,
    /// Wall time of the whole run.
    pub wall_ms: f64,
    /// Per-request wall latencies in µs, sorted ascending.
    pub latencies_us: Vec<u32>,
}

impl LoadReport {
    /// Nearest-rank percentile over the sorted latencies, in µs.
    pub fn latency_percentile_us(&self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return f64::NAN;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1] as f64
    }

    /// Sustained wall-clock throughput (alias of
    /// [`LoadReport::achieved_qps_wall`], kept for callers that predate
    /// the offered/achieved split).
    pub fn qps(&self) -> f64 {
        self.achieved_qps_wall()
    }

    /// Achieved throughput: requests over the *wall* time the run took.
    /// This is the figure that measures real server cost.
    pub fn achieved_qps_wall(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }

    /// Offered load: requests over the *virtual* arrival window. This
    /// is a property of the schedule, not of server speed — two runs
    /// with the same seed offer the same virtual qps no matter how fast
    /// the server drains them.
    pub fn offered_qps_virtual(&self) -> f64 {
        if self.virtual_us == 0 {
            return 0.0;
        }
        self.requests as f64 / (self.virtual_us as f64 / 1e6)
    }
}

/// Connection wrapper that FNV-digests every byte read — the client's
/// view of the server's exact response byte stream, framing included.
/// `mute` pauses the fold for the one endpoint whose body is *meant* to
/// vary run-to-run (`/v1/status` reports live cache counters, which
/// depend on wall scheduling); everything else is a pure function of
/// the frozen state and must digest identically.
struct TapConn {
    inner: Box<dyn Connection>,
    digest: u64,
    bytes: u64,
    mute: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl TapConn {
    fn new(inner: Box<dyn Connection>) -> TapConn {
        TapConn {
            inner,
            digest: FNV_OFFSET,
            bytes: 0,
            mute: false,
        }
    }

    fn fold(&mut self, chunk: &[u8]) {
        if !self.mute {
            for &b in chunk {
                self.digest = (self.digest ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        self.bytes += chunk.len() as u64;
    }
}

impl std::fmt::Debug for TapConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TapConn({:?})", self.inner)
    }
}

impl Connection for TapConn {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.fold(&buf[..n]);
        Ok(n)
    }
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
    fn shutdown_write(&mut self) {
        self.inner.shutdown_write()
    }
    fn peer_addr(&self) -> SocketAddr {
        self.inner.peer_addr()
    }
}

/// splitmix64 finalizer — the same spread SimNet uses for flow seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Default)]
struct WorkerAcc {
    requests: u64,
    status_ok: u64,
    status_not_found: u64,
    status_other: u64,
    endpoint_counts: [u64; 7],
    digest_xor: u64,
    digest_sum: u64,
    response_bytes: u64,
    latencies_us: Vec<u32>,
}

/// Pick a target into the reused `out` buffer, skewed so a small head
/// of fqdns takes most traffic (cubing the uniform draw sends ~22% of
/// lookups to the top 1%). The RNG draw sequence is identical to the
/// historical allocating version, so seeds keep their digests.
fn gen_target(rng: &mut SmallRng, plan: &LoadPlan, mix: &MixWeights, out: &mut String) -> usize {
    out.clear();
    let pick_fqdn = |rng: &mut SmallRng| -> &str {
        let n = plan.function_fqdns.len();
        if n == 0 {
            return "empty.invalid";
        }
        let r = rng.gen::<f64>();
        &plan.function_fqdns[((r * r * r) * n as f64) as usize % n]
    };
    let mut w = rng.gen_range(0..mix.total());
    if w < mix.verdict {
        let _ = write!(out, "/v1/verdict/{}", pick_fqdn(rng));
        return 1;
    }
    w -= mix.verdict;
    if w < mix.usage {
        let _ = write!(out, "/v1/usage/{}", pick_fqdn(rng));
        return 2;
    }
    w -= mix.usage;
    if w < mix.abuse {
        let _ = write!(out, "/v1/abuse/{}", pick_fqdn(rng));
        return 3;
    }
    w -= mix.abuse;
    if w < mix.candidates {
        let offset = rng.gen_range(0u32..8) * 20;
        let _ = write!(out, "/v1/candidates?offset={offset}&limit=20");
        return 4;
    }
    w -= mix.candidates;
    if w < mix.figures {
        let name =
            ["monthly_new", "monthly_requests", "ingress", "invocation"][rng.gen_range(0usize..4)];
        let _ = write!(out, "/v1/figures/{name}");
        return 5;
    }
    w -= mix.figures;
    if w < mix.status {
        out.push_str("/v1/status");
        return 0;
    }
    let _ = write!(
        out,
        "/v1/verdict/miss-{}.not-observed.example",
        rng.gen_range(0u32..10_000)
    );
    6
}

/// Per-worker reusable buffers: one response-parse scratch, one target
/// string, one request wire buffer. Nothing here allocates per request
/// once warm.
struct ClientScratch {
    parse: Scratch,
    target: String,
    wire: Vec<u8>,
}

impl ClientScratch {
    fn new() -> ClientScratch {
        ClientScratch {
            parse: Scratch::new(),
            target: String::with_capacity(128),
            wire: Vec::with_capacity(256),
        }
    }
}

/// One client's whole session; returns its response-stream digest.
fn run_client(
    net: &SimNet,
    addr: SocketAddr,
    id: u64,
    config: &LoadConfig,
    plan: &LoadPlan,
    acc: &mut WorkerAcc,
    scratch: &mut ClientScratch,
) -> io::Result<u64> {
    let mut rng = SmallRng::seed_from_u64(stream_seed(config.seed, id));
    let window_us = config.window.as_micros() as u64;
    let offset_us = if window_us == 0 {
        0
    } else {
        rng.gen_range(0..window_us)
    };
    let clock = net.clock().clone();
    {
        use fw_net::ClockSource;
        let now = clock.now_us();
        if offset_us > now {
            clock.sleep(Duration::from_micros(offset_us - now));
        }
    }
    let mut conn = TapConn::new(net.connect_flow_id(addr, id)?);
    conn.set_read_timeout(None)?;
    let limits = Limits::default();
    let burst = rng.gen_range(1..=config.max_requests_per_client.max(1));
    for _ in 0..burst {
        let ep = gen_target(&mut rng, plan, &config.mix, &mut scratch.target);
        // The rendered request is byte-identical to
        // `write_request(&Request::get(target, HOST))`.
        scratch.wire.clear();
        render_get(&mut scratch.wire, &scratch.target, HOST);
        // Status bodies carry live cache counters — scheduling-dependent
        // by design — so they stay out of the determinism digest.
        conn.mute = ep == 0;
        let t = Instant::now();
        conn.write_all(&scratch.wire)?;
        let resp = read_response_fast(&mut conn, &mut scratch.parse, &limits).map_err(io_of)?;
        conn.mute = false;
        acc.latencies_us
            .push(t.elapsed().as_micros().min(u32::MAX as u128) as u32);
        acc.requests += 1;
        acc.endpoint_counts[ep] += 1;
        match resp.status {
            200..=299 => acc.status_ok += 1,
            404 => acc.status_not_found += 1,
            _ => acc.status_other += 1,
        }
    }
    acc.response_bytes += conn.bytes;
    Ok(conn.digest)
}

fn io_of(e: fw_http::parse::HttpError) -> io::Error {
    match e {
        fw_http::parse::HttpError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, format!("{other:?}")),
    }
}

/// Drive `config.clients` virtual clients against `addr` on `net`.
/// Panics if any client's exchange fails — the harness runs over a
/// fault-free SimNet, so a failure is a server bug, not weather.
pub fn run_load(
    net: &SimNet,
    addr: SocketAddr,
    config: &LoadConfig,
    plan: &LoadPlan,
) -> LoadReport {
    let _span = fw_obs::span("serve/load");
    let wall_start = Instant::now();
    let workers = config.workers.max(1);
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let registration = net.clock().register();
        let net = net.clone();
        let config = config.clone();
        let plan = plan.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("serve-load-{w}"))
                .spawn(move || {
                    let _active = registration.map(|r| r.activate());
                    let mut acc = WorkerAcc::default();
                    let mut scratch = ClientScratch::new();
                    let mut id = w as u64;
                    while id < config.clients {
                        let digest =
                            run_client(&net, addr, id, &config, &plan, &mut acc, &mut scratch)
                                .unwrap_or_else(|e| panic!("client {id} failed: {e}"));
                        let word = mix(digest ^ mix(id.wrapping_add(1)));
                        acc.digest_xor ^= word;
                        acc.digest_sum = acc.digest_sum.wrapping_add(word);
                        id += workers as u64;
                    }
                    acc
                })
                .expect("spawn load worker"),
        );
    }
    let mut total = WorkerAcc::default();
    for h in handles {
        let acc = h.join().expect("load worker panicked");
        total.requests += acc.requests;
        total.status_ok += acc.status_ok;
        total.status_not_found += acc.status_not_found;
        total.status_other += acc.status_other;
        for (t, c) in total.endpoint_counts.iter_mut().zip(acc.endpoint_counts) {
            *t += c;
        }
        total.digest_xor ^= acc.digest_xor;
        total.digest_sum = total.digest_sum.wrapping_add(acc.digest_sum);
        total.response_bytes += acc.response_bytes;
        total.latencies_us.extend_from_slice(&acc.latencies_us);
    }
    total.latencies_us.sort_unstable();
    let virtual_us = {
        use fw_net::ClockSource;
        net.clock().now_us()
    };
    LoadReport {
        clients: config.clients,
        requests: total.requests,
        status_ok: total.status_ok,
        status_not_found: total.status_not_found,
        status_other: total.status_other,
        endpoint_counts: total.endpoint_counts,
        digest: fnv1a(
            &[
                total.digest_xor.to_le_bytes(),
                total.digest_sum.to_le_bytes(),
            ]
            .concat(),
        ),
        response_bytes: total.response_bytes,
        virtual_us,
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
        latencies_us: total.latencies_us,
    }
}
