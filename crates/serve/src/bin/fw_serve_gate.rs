//! Serving gate: build the query API over a generated world, drive it
//! with the SimNet load harness, and emit latency/throughput benchmarks
//! to `BENCH_serve.json` (DESIGN.md §15/§17; CI runs this at 100k
//! clients and the committed baseline carries a 1M-client run).
//!
//! ```text
//! fw_serve_gate [--clients <n>] [--rpc-max <n>] [--workers <n>]
//!               [--serve-workers <n>] [--sweep] [--seed <u64>]
//!               [--world-scale <f64>] [--window-s <n>]
//!               [--cache-capacity <n>] [--out <path>] [--metrics]
//!               [--trace] [--trace-out <path>]
//! ```
//!
//! Defaults: 100k clients, bursts of 1..=3 requests, 8 serving workers,
//! load workers 0 (= serve workers), seed 42, world scale 0.1, a
//! one-hour virtual arrival window, JSON to `BENCH_serve.json`.
//!
//! Stages:
//!
//! 1. **generate** — the PDNS-only world whose store the API serves.
//! 2. **build** — freeze the store into a [`ServeState`] (identify +
//!    usage + candidate replay, figure documents pre-rendered).
//! 3. **serve** — the load run against the pooled zero-copy serve
//!    plane: every client connects once over SimNet (flow-steered onto
//!    a serving worker), issues its keep-alive burst, and digests the
//!    response bytes. Wall time here yields the sustained qps figure.
//! 4. **sweep** (with `--sweep`) — re-run the same load at serving
//!    worker counts {1,2,4,8} over the *same* frozen state, die if any
//!    digest differs from the main run (worker count must never change
//!    a byte), and record per-count qps/latency plus the
//!    `scale_eff` = qps(max)/qps(1) efficiency ratio.
//!
//! Pseudo-stages ride the `{"ms": ...}` stage shape so `bench_regress`
//! gates them like wall stages: `p50_us`/`p99_us` (microsecond
//! latencies, lower is better) and `qps`/`hit_rate`/`scale_eff`
//! (higher is better — the regress tool knows these names). Throughput
//! is reported both ways: `achieved_qps_wall` (requests over wall time,
//! the real server-cost figure) and `offered_qps_virtual` (requests
//! over the virtual arrival window, a property of the schedule alone).

use fw_serve::{CacheConfig, Endpoint, LoadConfig, LoadPlan, LoadReport, ServeApi, ServeState};
use fw_types::Json;
use fw_workload::{World, WorldConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn arg_num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

/// Peak resident set (VmHWM) in KiB; `None` off Linux or if unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Stage {
    name: &'static str,
    ms: f64,
    peak_rss_kb: Option<u64>,
}

/// How many runs the report's `history` array retains (newest last).
const HISTORY_CAP: usize = 50;

/// Previous runs recorded in an existing report at `out`, rendered as
/// compact JSON objects ready to splice into the rewritten file.
fn prior_history(out: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(out) else {
        return Vec::new();
    };
    let Ok(old) = Json::parse(&text) else {
        eprintln!(
            "[history] existing {} is not valid JSON; starting a fresh history",
            out.display()
        );
        return Vec::new();
    };
    match old.get("history").and_then(Json::as_arr) {
        Some(entries) => entries.iter().map(Json::render).collect(),
        None => Vec::new(),
    }
}

const ADDR: &str = "10.99.0.1:8080";

/// Serving worker counts the `--sweep` matrix exercises.
const SWEEP_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// One sweep row: the load run repeated at a given serving worker
/// count over the same frozen state.
struct SweepRow {
    serve_workers: usize,
    report: LoadReport,
    hit_rate: f64,
}

fn main() {
    let mut clients = 100_000u64;
    let mut rpc_max = 3u32;
    let mut workers = 0usize;
    let mut serve_workers = 8usize;
    let mut sweep = false;
    let mut seed = 42u64;
    let mut world_scale = 0.1f64;
    let mut window_s = 3600u64;
    let mut cache_capacity = 65_536usize;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => clients = arg_num(&mut args, "--clients"),
            "--rpc-max" => rpc_max = arg_num(&mut args, "--rpc-max"),
            "--workers" => workers = arg_num(&mut args, "--workers"),
            "--serve-workers" => serve_workers = arg_num(&mut args, "--serve-workers"),
            "--sweep" => sweep = true,
            "--seed" => seed = arg_num(&mut args, "--seed"),
            "--world-scale" => world_scale = arg_num(&mut args, "--world-scale"),
            "--window-s" => window_s = arg_num(&mut args, "--window-s"),
            "--cache-capacity" => cache_capacity = arg_num(&mut args, "--cache-capacity"),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--metrics" => fw_obs::set_enabled(true),
            "--trace" => fw_obs::set_trace_enabled(true),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fw_serve_gate [--clients <n>] [--rpc-max <n>] [--workers <n>] [--serve-workers <n>] [--sweep] [--seed <u64>] [--world-scale <f64>] [--window-s <n>] [--cache-capacity <n>] [--out <path>] [--metrics] [--trace] [--trace-out <path>]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if clients == 0 {
        die("--clients must be >= 1");
    }
    if rpc_max == 0 {
        die("--rpc-max must be >= 1");
    }
    if serve_workers == 0 {
        die("--serve-workers must be >= 1");
    }
    // Load drivers scale with the serving plane unless pinned.
    let workers = if workers == 0 { serve_workers } else { workers };
    // The report's headline scale: fraction of the paper-scale
    // million-client run, so `bench_regress --scale` matching works the
    // same way it does for the pipeline gate.
    let scale = clients as f64 / 1e6;

    let gate_span = fw_obs::span("gate/serve");
    let mut stages: Vec<Stage> = Vec::new();
    let total_start = Instant::now();

    // 1. Generate the world whose store the API will serve.
    eprintln!("[generate] world scale {world_scale} seed {seed}");
    let t = Instant::now();
    let world = {
        let _s = fw_obs::span("gate/generate");
        World::generate(WorldConfig::usage(seed, world_scale))
    };
    stages.push(Stage {
        name: "generate",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[generate] {:.1} ms: {} fqdns, {} rows",
        stages[0].ms,
        world.pdns.fqdn_count(),
        world.pdns.record_count()
    );

    // 2. Freeze the store into the queryable snapshot (shared by the
    // main run and every sweep run).
    let t = Instant::now();
    let state = {
        let _s = fw_obs::span("gate/build");
        Arc::new(ServeState::build(world.pdns, workers))
    };
    stages.push(Stage {
        name: "build",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[build] {:.1} ms: {} functions, {} candidates",
        stages[1].ms,
        state.report().functions.len(),
        state.candidate_count()
    );

    let plan = LoadPlan {
        function_fqdns: Arc::new(state.function_fqdns()),
    };
    let cache_config = CacheConfig {
        capacity: cache_capacity,
        ..CacheConfig::default()
    };
    let addr: SocketAddr = ADDR.parse().expect("static addr");

    // One full load run at `sw` serving workers over a fresh SimNet;
    // the frozen state (and its Arc'd figure bodies) is shared.
    let run_at = |sw: usize, load_workers: usize| -> (LoadReport, fw_serve::CacheStats) {
        let net = fw_net::SimNet::new(seed);
        let api = Arc::new(ServeApi::new(Arc::clone(&state), cache_config));
        api.serve_pool(&net, addr, sw);
        let config = LoadConfig {
            clients,
            max_requests_per_client: rpc_max,
            workers: load_workers,
            seed,
            window: Duration::from_secs(window_s),
            ..LoadConfig::default()
        };
        let report = fw_serve::load::run_load(&net, addr, &config, &plan);
        let cache = api.cache_stats();
        (report, cache)
    };

    // 3. The main load run.
    let t = Instant::now();
    let (report, cache) = run_at(serve_workers, workers);
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;
    stages.push(Stage {
        name: "serve",
        ms: serve_ms,
        peak_rss_kb: peak_rss_kb(),
    });
    let p50_us = report.latency_percentile_us(50.0);
    let p99_us = report.latency_percentile_us(99.0);
    let qps = report.achieved_qps_wall();
    let hit_rate = cache.hit_rate();
    eprintln!(
        "[serve] {serve_ms:.1} ms wall for {} requests from {} clients over {} workers ({qps:.0} qps achieved, {:.0} qps offered over {:.0} virtual s)",
        report.requests,
        report.clients,
        serve_workers,
        report.offered_qps_virtual(),
        report.virtual_us as f64 / 1e6
    );
    eprintln!(
        "[serve] latency p50 {p50_us:.0} us p99 {p99_us:.0} us; cache hit rate {hit_rate:.3} ({} hits / {} misses / {} evictions; admission {} accepted / {} rejected)",
        cache.hits, cache.misses, cache.evictions, cache.admit_accept, cache.admit_reject
    );
    eprintln!("[serve] digest {:016x}", report.digest);

    // 4. The worker-scaling sweep: same seed, same state, serving
    // worker counts {1,2,4,8}. Byte-level reproducibility across the
    // matrix is a hard invariant — any digest drift is a bug, not a
    // number to report.
    let mut sweep_rows: Vec<SweepRow> = Vec::new();
    let mut scale_eff = None;
    if sweep {
        let t = Instant::now();
        for sw in SWEEP_WORKERS {
            let (r, c) = run_at(sw, sw);
            eprintln!(
                "[sweep] {sw} workers: {:.0} qps, p50 {:.0} us, p99 {:.0} us, hit {:.3}, digest {:016x}",
                r.achieved_qps_wall(),
                r.latency_percentile_us(50.0),
                r.latency_percentile_us(99.0),
                c.hit_rate(),
                r.digest
            );
            if r.digest != report.digest || r.requests != report.requests {
                die(&format!(
                    "sweep at {sw} serving workers diverged: digest {:016x} ({} requests) vs main {:016x} ({} requests) — worker count must never change response bytes",
                    r.digest, r.requests, report.digest, report.requests
                ));
            }
            sweep_rows.push(SweepRow {
                serve_workers: sw,
                report: r,
                hit_rate: c.hit_rate(),
            });
        }
        let sweep_ms = t.elapsed().as_secs_f64() * 1e3;
        stages.push(Stage {
            name: "sweep",
            ms: sweep_ms,
            peak_rss_kb: peak_rss_kb(),
        });
        let qps_1 = sweep_rows
            .first()
            .map_or(0.0, |r| r.report.achieved_qps_wall());
        let qps_max = sweep_rows
            .last()
            .map_or(0.0, |r| r.report.achieved_qps_wall());
        if qps_1 > 0.0 {
            scale_eff = Some(qps_max / qps_1);
        }
        eprintln!(
            "[sweep] {sweep_ms:.1} ms; scale_eff (qps@{}w / qps@1w) = {:.3}",
            SWEEP_WORKERS[SWEEP_WORKERS.len() - 1],
            scale_eff.unwrap_or(f64::NAN)
        );
    }

    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let rss = peak_rss_kb();

    drop(gate_span);
    let tracing = fw_obs::trace_enabled();
    let trace_path = trace_out.unwrap_or_else(|| {
        let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        out.with_file_name(format!("{stem}.trace.jsonl"))
    });
    let dump = if tracing {
        Some(fw_obs::drain_trace())
    } else {
        None
    };

    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let rss_json = |kb: Option<u64>| kb.map_or("null".to_string(), |kb| kb.to_string());
    let num_or_null = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };

    let mut entry = format!(
        "{{\"unix_ms\": {unix_ms}, \"scale\": {scale}, \"clients\": {clients}, \"seed\": {seed}, \"workers\": {workers}, \"serve_workers\": {serve_workers}, \"rpc_max\": {rpc_max}, \"total_ms\": {total_ms:.3}"
    );
    for s in &stages {
        entry.push_str(&format!(", \"{}_ms\": {:.3}", s.name, s.ms));
    }
    entry.push_str(&format!(
        ", \"p50_us_ms\": {}, \"p99_us_ms\": {}, \"qps_ms\": {qps:.0}, \"hit_rate_ms\": {hit_rate:.4}",
        num_or_null(p50_us),
        num_or_null(p99_us)
    ));
    if let Some(eff) = scale_eff {
        entry.push_str(&format!(", \"scale_eff_ms\": {eff:.4}"));
    }
    entry.push_str(&format!(
        ", \"requests\": {}, \"qps\": {qps:.0}, \"hit_rate\": {hit_rate:.4}, \"peak_rss_kb\": {}}}",
        report.requests,
        rss_json(rss)
    ));
    let mut history = prior_history(&out);
    history.push(entry);
    if history.len() > HISTORY_CAP {
        let drop_n = history.len() - HISTORY_CAP;
        history.drain(..drop_n);
    }

    // Hand-rolled JSON, same layout conventions as BENCH_stream.json.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"clients\": {clients}, \"seed\": {seed}, \"workers\": {workers}, \"serve_workers\": {serve_workers}, \"rpc_max\": {rpc_max}, \"world_scale\": {world_scale}, \"window_s\": {window_s}, \"cache_capacity\": {cache_capacity}}},\n"
    ));
    json.push_str("  \"stages\": {\n");
    for s in stages.iter() {
        json.push_str(&format!(
            "    \"{}\": {{\"ms\": {:.3}, \"peak_rss_kb\": {}}},\n",
            s.name,
            s.ms,
            rss_json(s.peak_rss_kb)
        ));
    }
    // Pseudo-stages riding the {"ms": ...} stage shape so bench_regress
    // gates them: microsecond latencies (lower is better) and
    // throughput/ratio figures (higher is better — bench_regress keys
    // off these stage names).
    json.push_str(&format!(
        "    \"p50_us\": {{\"ms\": {}, \"peak_rss_kb\": null}},\n",
        num_or_null(p50_us)
    ));
    json.push_str(&format!(
        "    \"p99_us\": {{\"ms\": {}, \"peak_rss_kb\": null}},\n",
        num_or_null(p99_us)
    ));
    json.push_str(&format!(
        "    \"qps\": {{\"ms\": {qps:.0}, \"peak_rss_kb\": null}},\n"
    ));
    if let Some(eff) = scale_eff {
        json.push_str(&format!(
            "    \"scale_eff\": {{\"ms\": {eff:.4}, \"peak_rss_kb\": null}},\n"
        ));
    }
    json.push_str(&format!(
        "    \"hit_rate\": {{\"ms\": {hit_rate:.4}, \"peak_rss_kb\": null}}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_ms\": {total_ms:.3},\n"));
    json.push_str(&format!("  \"requests\": {},\n", report.requests));
    json.push_str(&format!("  \"clients\": {},\n", report.clients));
    json.push_str(&format!("  \"qps\": {qps:.0},\n"));
    json.push_str(&format!(
        "  \"achieved_qps_wall\": {:.0},\n",
        report.achieved_qps_wall()
    ));
    json.push_str(&format!(
        "  \"offered_qps_virtual\": {:.0},\n",
        report.offered_qps_virtual()
    ));
    json.push_str(&format!("  \"virtual_us\": {},\n", report.virtual_us));
    json.push_str(&format!("  \"digest\": \"{:016x}\",\n", report.digest));
    json.push_str(&format!(
        "  \"response_bytes\": {},\n",
        report.response_bytes
    ));
    json.push_str(&format!(
        "  \"status\": {{\"ok\": {}, \"not_found\": {}, \"other\": {}}},\n",
        report.status_ok, report.status_not_found, report.status_other
    ));
    json.push_str("  \"endpoints\": {");
    for (i, ep) in Endpoint::ALL.iter().enumerate() {
        let comma = if i + 1 == Endpoint::ALL.len() {
            ""
        } else {
            ", "
        };
        json.push_str(&format!(
            "\"{}\": {}{comma}",
            ep.label(),
            report.endpoint_counts[i]
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \"admit_accept\": {}, \"admit_reject\": {}, \"hit_rate\": {hit_rate:.4}}},\n",
        cache.hits, cache.misses, cache.evictions, cache.entries, cache.admit_accept, cache.admit_reject
    ));
    if !sweep_rows.is_empty() {
        json.push_str("  \"sweep\": [\n");
        for (i, row) in sweep_rows.iter().enumerate() {
            let comma = if i + 1 == sweep_rows.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"serve_workers\": {}, \"qps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"hit_rate\": {:.4}, \"digest\": \"{:016x}\", \"requests\": {}}}{comma}\n",
                row.serve_workers,
                row.report.achieved_qps_wall(),
                num_or_null(row.report.latency_percentile_us(50.0)),
                num_or_null(row.report.latency_percentile_us(99.0)),
                row.hit_rate,
                row.report.digest,
                row.report.requests
            ));
        }
        json.push_str("  ],\n");
        if let Some(eff) = scale_eff {
            json.push_str(&format!("  \"scale_eff\": {eff:.4},\n"));
        }
    }
    json.push_str(&format!("  \"peak_rss_kb\": {},\n", rss_json(rss)));
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 == history.len() { "" } else { "," };
        json.push_str(&format!("    {entry}{comma}\n"));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));

    println!(
        "serve gate: {clients} clients seed {seed} over {serve_workers} serving workers, total {total_ms:.0} ms (generate {:.0} / build {:.0} / serve {:.0}); {qps:.0} qps, p50 {p50_us:.0} us, p99 {p99_us:.0} us, hit rate {hit_rate:.3}, digest {:016x}; report -> {}",
        stages[0].ms,
        stages[1].ms,
        stages[2].ms,
        report.digest,
        out.display()
    );

    if let Some(dump) = &dump {
        if let Err(e) = std::fs::write(&trace_path, dump.to_jsonl()) {
            die(&format!("cannot write {}: {e}", trace_path.display()));
        }
        eprintln!(
            "[trace] {} events ({} dropped) -> {}",
            dump.events.len(),
            dump.dropped,
            trace_path.display()
        );
        match fw_obs::write_trace_reports(dump, &trace_path) {
            Ok(paths) => {
                eprintln!("[trace] chrome trace  -> {}", paths.chrome.display());
                eprintln!("[trace] folded stacks -> {}", paths.folded.display());
                eprintln!("[trace] critical path -> {}", paths.critpath_txt.display());
            }
            Err(e) => eprintln!("[trace] cannot write trace reports: {e}"),
        }
    }
    if fw_obs::enabled() {
        eprint!("{}", fw_obs::registry().render_text());
    }
}
