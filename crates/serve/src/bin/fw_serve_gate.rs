//! Serving gate: build the query API over a generated world, drive it
//! with the SimNet load harness, and emit latency/throughput benchmarks
//! to `BENCH_serve.json` (DESIGN.md §15; CI runs this at 100k clients
//! and the committed baseline carries a 1M-client run).
//!
//! ```text
//! fw_serve_gate [--clients <n>] [--rpc-max <n>] [--workers <n>]
//!               [--seed <u64>] [--world-scale <f64>] [--window-s <n>]
//!               [--cache-capacity <n>] [--out <path>] [--metrics]
//!               [--trace] [--trace-out <path>]
//! ```
//!
//! Defaults: 100k clients, bursts of 1..=3 requests, workers 0 (one per
//! core), seed 42, world scale 0.1, a one-hour virtual arrival window,
//! JSON to `BENCH_serve.json`.
//!
//! Stages:
//!
//! 1. **generate** — the PDNS-only world whose store the API serves.
//! 2. **build** — freeze the store into a [`ServeState`] (identify +
//!    usage + candidate replay, figure documents pre-rendered).
//! 3. **serve** — the load run: every client connects once over SimNet,
//!    issues its keep-alive burst, and digests the response bytes. Wall
//!    time here yields the sustained qps figure.
//!
//! The `p50_us` / `p99_us` pseudo-stages carry per-request wall
//! latencies (in **microseconds**, riding the `{"ms": ...}` stage
//! shape) through the `history` array, so `bench_regress` gates
//! serving-latency regressions exactly like wall-time regressions. The
//! run digest is printed and recorded: two same-seed runs must match it
//! byte-for-byte, which CI checks by diffing the deterministic fields
//! of two back-to-back runs.

use fw_serve::{CacheConfig, Endpoint, LoadConfig, LoadPlan, ServeApi, ServeState};
use fw_types::Json;
use fw_workload::{World, WorldConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn arg_num<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

/// Peak resident set (VmHWM) in KiB; `None` off Linux or if unreadable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Stage {
    name: &'static str,
    ms: f64,
    peak_rss_kb: Option<u64>,
}

/// How many runs the report's `history` array retains (newest last).
const HISTORY_CAP: usize = 50;

/// Previous runs recorded in an existing report at `out`, rendered as
/// compact JSON objects ready to splice into the rewritten file.
fn prior_history(out: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(out) else {
        return Vec::new();
    };
    let Ok(old) = Json::parse(&text) else {
        eprintln!(
            "[history] existing {} is not valid JSON; starting a fresh history",
            out.display()
        );
        return Vec::new();
    };
    match old.get("history").and_then(Json::as_arr) {
        Some(entries) => entries.iter().map(Json::render).collect(),
        None => Vec::new(),
    }
}

const ADDR: &str = "10.99.0.1:8080";

fn main() {
    let mut clients = 100_000u64;
    let mut rpc_max = 3u32;
    let mut workers = 0usize;
    let mut seed = 42u64;
    let mut world_scale = 0.1f64;
    let mut window_s = 3600u64;
    let mut cache_capacity = 32_768usize;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => clients = arg_num(&mut args, "--clients"),
            "--rpc-max" => rpc_max = arg_num(&mut args, "--rpc-max"),
            "--workers" => workers = arg_num(&mut args, "--workers"),
            "--seed" => seed = arg_num(&mut args, "--seed"),
            "--world-scale" => world_scale = arg_num(&mut args, "--world-scale"),
            "--window-s" => window_s = arg_num(&mut args, "--window-s"),
            "--cache-capacity" => cache_capacity = arg_num(&mut args, "--cache-capacity"),
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--metrics" => fw_obs::set_enabled(true),
            "--trace" => fw_obs::set_trace_enabled(true),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a path")),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fw_serve_gate [--clients <n>] [--rpc-max <n>] [--workers <n>] [--seed <u64>] [--world-scale <f64>] [--window-s <n>] [--cache-capacity <n>] [--out <path>] [--metrics] [--trace] [--trace-out <path>]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if clients == 0 {
        die("--clients must be >= 1");
    }
    if rpc_max == 0 {
        die("--rpc-max must be >= 1");
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if workers == 0 { cores } else { workers };
    // The report's headline scale: fraction of the paper-scale
    // million-client run, so `bench_regress --scale` matching works the
    // same way it does for the pipeline gate.
    let scale = clients as f64 / 1e6;

    let gate_span = fw_obs::span("gate/serve");
    let mut stages: Vec<Stage> = Vec::new();
    let total_start = Instant::now();

    // 1. Generate the world whose store the API will serve.
    eprintln!("[generate] world scale {world_scale} seed {seed}");
    let t = Instant::now();
    let world = {
        let _s = fw_obs::span("gate/generate");
        World::generate(WorldConfig::usage(seed, world_scale))
    };
    stages.push(Stage {
        name: "generate",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[generate] {:.1} ms: {} fqdns, {} rows",
        stages[0].ms,
        world.pdns.fqdn_count(),
        world.pdns.record_count()
    );

    // 2. Freeze the store into the queryable snapshot.
    let t = Instant::now();
    let state = {
        let _s = fw_obs::span("gate/build");
        ServeState::build(world.pdns, workers)
    };
    stages.push(Stage {
        name: "build",
        ms: t.elapsed().as_secs_f64() * 1e3,
        peak_rss_kb: peak_rss_kb(),
    });
    eprintln!(
        "[build] {:.1} ms: {} functions, {} candidates",
        stages[1].ms,
        state.report().functions.len(),
        state.candidate_count()
    );

    // 3. The load run, on a fresh SimNet so virtual time starts at 0.
    let plan = LoadPlan {
        function_fqdns: Arc::new(state.function_fqdns()),
    };
    let net = fw_net::SimNet::new(seed);
    let addr: SocketAddr = ADDR.parse().expect("static addr");
    let api = Arc::new(ServeApi::new(
        state,
        CacheConfig {
            capacity: cache_capacity,
            ..CacheConfig::default()
        },
    ));
    api.serve_on(&net, addr);
    let config = LoadConfig {
        clients,
        max_requests_per_client: rpc_max,
        workers,
        seed,
        window: Duration::from_secs(window_s),
        ..LoadConfig::default()
    };
    let t = Instant::now();
    let report = fw_serve::load::run_load(&net, addr, &config, &plan);
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;
    stages.push(Stage {
        name: "serve",
        ms: serve_ms,
        peak_rss_kb: peak_rss_kb(),
    });
    let cache = api.cache_stats();
    let p50_us = report.latency_percentile_us(50.0);
    let p99_us = report.latency_percentile_us(99.0);
    let qps = report.qps();
    eprintln!(
        "[serve] {serve_ms:.1} ms wall for {} requests from {} clients ({qps:.0} qps sustained, {:.0} qps offered over {:.0} virtual s)",
        report.requests,
        report.clients,
        report.offered_qps(),
        report.virtual_us as f64 / 1e6
    );
    eprintln!(
        "[serve] latency p50 {p50_us:.0} us p99 {p99_us:.0} us; cache hit rate {:.3} ({} hits / {} misses / {} evictions)",
        cache.hit_rate(),
        cache.hits,
        cache.misses,
        cache.evictions
    );
    eprintln!("[serve] digest {:016x}", report.digest);

    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    let rss = peak_rss_kb();

    drop(gate_span);
    let tracing = fw_obs::trace_enabled();
    let trace_path = trace_out.unwrap_or_else(|| {
        let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        out.with_file_name(format!("{stem}.trace.jsonl"))
    });
    let dump = if tracing {
        Some(fw_obs::drain_trace())
    } else {
        None
    };

    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let rss_json = |kb: Option<u64>| kb.map_or("null".to_string(), |kb| kb.to_string());
    let num_or_null = |v: f64| {
        if v.is_finite() {
            format!("{v:.3}")
        } else {
            "null".to_string()
        }
    };

    let mut entry = format!(
        "{{\"unix_ms\": {unix_ms}, \"scale\": {scale}, \"clients\": {clients}, \"seed\": {seed}, \"workers\": {workers}, \"rpc_max\": {rpc_max}, \"total_ms\": {total_ms:.3}"
    );
    for s in &stages {
        entry.push_str(&format!(", \"{}_ms\": {:.3}", s.name, s.ms));
    }
    entry.push_str(&format!(
        ", \"p50_us_ms\": {}, \"p99_us_ms\": {}",
        num_or_null(p50_us),
        num_or_null(p99_us)
    ));
    entry.push_str(&format!(
        ", \"requests\": {}, \"qps\": {qps:.0}, \"hit_rate\": {:.4}, \"peak_rss_kb\": {}}}",
        report.requests,
        cache.hit_rate(),
        rss_json(rss)
    ));
    let mut history = prior_history(&out);
    history.push(entry);
    if history.len() > HISTORY_CAP {
        let drop_n = history.len() - HISTORY_CAP;
        history.drain(..drop_n);
    }

    // Hand-rolled JSON, same layout conventions as BENCH_stream.json.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"clients\": {clients}, \"seed\": {seed}, \"workers\": {workers}, \"rpc_max\": {rpc_max}, \"world_scale\": {world_scale}, \"window_s\": {window_s}, \"cache_capacity\": {cache_capacity}}},\n"
    ));
    json.push_str("  \"stages\": {\n");
    for s in stages.iter() {
        json.push_str(&format!(
            "    \"{}\": {{\"ms\": {:.3}, \"peak_rss_kb\": {}}},\n",
            s.name,
            s.ms,
            rss_json(s.peak_rss_kb)
        ));
    }
    // Latency pseudo-stages: per-request wall percentiles in
    // MICROSECONDS riding the {"ms": ...} stage shape, so bench_regress
    // gates them with meaningful magnitudes against --abs-slack-ms.
    json.push_str(&format!(
        "    \"p50_us\": {{\"ms\": {}, \"peak_rss_kb\": null}},\n",
        num_or_null(p50_us)
    ));
    json.push_str(&format!(
        "    \"p99_us\": {{\"ms\": {}, \"peak_rss_kb\": null}}\n",
        num_or_null(p99_us)
    ));
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_ms\": {total_ms:.3},\n"));
    json.push_str(&format!("  \"requests\": {},\n", report.requests));
    json.push_str(&format!("  \"clients\": {},\n", report.clients));
    json.push_str(&format!("  \"qps\": {qps:.0},\n"));
    json.push_str(&format!(
        "  \"offered_qps\": {:.0},\n",
        report.offered_qps()
    ));
    json.push_str(&format!("  \"virtual_us\": {},\n", report.virtual_us));
    json.push_str(&format!("  \"digest\": \"{:016x}\",\n", report.digest));
    json.push_str(&format!(
        "  \"response_bytes\": {},\n",
        report.response_bytes
    ));
    json.push_str(&format!(
        "  \"status\": {{\"ok\": {}, \"not_found\": {}, \"other\": {}}},\n",
        report.status_ok, report.status_not_found, report.status_other
    ));
    json.push_str("  \"endpoints\": {");
    for (i, ep) in Endpoint::ALL.iter().enumerate() {
        let comma = if i + 1 == Endpoint::ALL.len() {
            ""
        } else {
            ", "
        };
        json.push_str(&format!(
            "\"{}\": {}{comma}",
            ep.label(),
            report.endpoint_counts[i]
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \"hit_rate\": {:.4}}},\n",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        cache.hit_rate()
    ));
    json.push_str(&format!("  \"peak_rss_kb\": {},\n", rss_json(rss)));
    json.push_str("  \"history\": [\n");
    for (i, entry) in history.iter().enumerate() {
        let comma = if i + 1 == history.len() { "" } else { "," };
        json.push_str(&format!("    {entry}{comma}\n"));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", out.display())));

    println!(
        "serve gate: {clients} clients seed {seed} total {total_ms:.0} ms (generate {:.0} / build {:.0} / serve {:.0}); {qps:.0} qps, p50 {p50_us:.0} us, p99 {p99_us:.0} us, hit rate {:.3}, digest {:016x}; report -> {}",
        stages[0].ms,
        stages[1].ms,
        stages[2].ms,
        cache.hit_rate(),
        report.digest,
        out.display()
    );

    if let Some(dump) = &dump {
        if let Err(e) = std::fs::write(&trace_path, dump.to_jsonl()) {
            die(&format!("cannot write {}: {e}", trace_path.display()));
        }
        eprintln!(
            "[trace] {} events ({} dropped) -> {}",
            dump.events.len(),
            dump.dropped,
            trace_path.display()
        );
        match fw_obs::write_trace_reports(dump, &trace_path) {
            Ok(paths) => {
                eprintln!("[trace] chrome trace  -> {}", paths.chrome.display());
                eprintln!("[trace] folded stacks -> {}", paths.folded.display());
                eprintln!("[trace] critical path -> {}", paths.critpath_txt.display());
            }
            Err(e) => eprintln!("[trace] cannot write trace reports: {e}"),
        }
    }
    if fw_obs::enabled() {
        eprint!("{}", fw_obs::registry().render_text());
    }
}
