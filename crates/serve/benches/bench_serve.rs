//! Microbenchmarks for the serving hot path: cache-hit replay vs
//! cold compute per endpoint class, raw sharded-cache churn under
//! TinyLFU admission, and a full client↔server round trip over a
//! wall-clock pipe through the zero-copy serve loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fw_dns::pdns::PdnsStore;
use fw_http::fast::{read_response_fast, render_get, Scratch};
use fw_http::parse::Limits;
use fw_http::types::Request;
use fw_net::{pipe_pair, Connection};
use fw_serve::cache::CachedResponse;
use fw_serve::{CacheConfig, ServeApi, ServeState};
use fw_types::{DayStamp, Fqdn, Rdata};
use std::net::Ipv4Addr;
use std::sync::Arc;

const FQDN: &str = "a1b2c3d4e5f6.lambda-url.us-east-1.on.aws";

/// A small store with a few identifiable functions plus noise.
fn api() -> ServeApi<PdnsStore> {
    let mut store = PdnsStore::new();
    for i in 0..32 {
        let f = Fqdn::parse(&format!("f{i:011x}.lambda-url.us-east-1.on.aws")).unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, (i % 250) as u8 + 1));
        for d in 0..5 {
            store.observe_count(&f, &ip, DayStamp(19_100 + d), 20 + i as u64);
        }
    }
    let f = Fqdn::parse(FQDN).unwrap();
    let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 251));
    for d in [19_100, 19_101, 19_102] {
        store.observe_count(&f, &ip, DayStamp(d), 40);
    }
    let noise = Fqdn::parse("www.example.com").unwrap();
    store.observe_count(&noise, &ip, DayStamp(19_100), 5);
    ServeApi::new(
        Arc::new(ServeState::build(store, 1)),
        CacheConfig::default(),
    )
}

fn bench_handle(c: &mut Criterion) {
    let api = api();
    let verdict = Request::get(&format!("/v1/verdict/{FQDN}"), "api.sim");
    let usage = Request::get(&format!("/v1/usage/{FQDN}"), "api.sim");
    let figures = Request::get("/v1/figures/ingress", "api.sim");

    let mut g = c.benchmark_group("serve_handle");
    g.throughput(Throughput::Elements(1));
    // Warm the cache, then measure the pure hit path.
    api.handle(&verdict);
    g.bench_function("verdict_hit", |b| {
        b.iter(|| black_box(api.handle(black_box(&verdict))))
    });
    g.bench_function("figures_hit", |b| {
        api.handle(&figures);
        b.iter(|| black_box(api.handle(black_box(&figures))))
    });
    // Cold compute: a fresh API per batch so every handle is a miss.
    g.bench_function("usage_miss", |b| {
        b.iter_batched(
            api_fresh,
            |fresh| black_box(fresh.handle(black_box(&usage))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn api_fresh() -> ServeApi<PdnsStore> {
    api()
}

fn bench_cache(c: &mut Criterion) {
    let body = Arc::new(CachedResponse::render(
        200,
        "application/json",
        &[b'x'; 256],
    ));
    let keys: Vec<String> = (0..2048).map(|i| format!("/v1/verdict/key-{i}")).collect();

    let mut g = c.benchmark_group("serve_cache");
    g.throughput(Throughput::Elements(1));

    // Pure hit path: capacity covers the whole keyspace.
    let hot = fw_serve::ShardedCache::new(CacheConfig {
        shards: 16,
        capacity: 4096,
        ..CacheConfig::default()
    });
    for k in &keys {
        hot.put(k, Arc::clone(&body));
    }
    let mut i = 0usize;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(hot.get(&keys[i]).is_some())
        })
    });

    // Churn under admission pressure: 2048 keys over 1024 slots keeps
    // every shard full, so each miss-then-put runs the TinyLFU filter.
    let churn = fw_serve::ShardedCache::new(CacheConfig {
        shards: 16,
        capacity: 1024,
        ..CacheConfig::default()
    });
    for k in &keys {
        churn.put(k, Arc::clone(&body));
    }
    let mut j = 0usize;
    g.bench_function("get_put_churn_admission", |b| {
        b.iter(|| {
            j = (j + 1) % keys.len();
            if churn.get(&keys[j]).is_none() {
                churn.put(&keys[j], Arc::clone(&body));
            }
        })
    });
    g.finish();
}

/// Full round trip over a wall-clock pipe: fast client renderer and
/// response parser on this thread, the zero-copy `serve_fast` loop on
/// a server thread. Measures the whole per-request path the load
/// harness exercises, minus SimNet scheduling.
fn bench_roundtrip(c: &mut Criterion) {
    let api = Arc::new(api());
    let (mut client, mut server) = pipe_pair(
        "10.0.0.1:50000".parse().unwrap(),
        "203.0.113.1:80".parse().unwrap(),
    );
    let srv_api = Arc::clone(&api);
    let srv = std::thread::spawn(move || {
        let mut scratch = Scratch::new();
        srv_api.serve_fast(&mut server, &mut scratch);
    });
    let target = format!("/v1/verdict/{FQDN}");
    let mut wire = Vec::with_capacity(256);
    let mut parse = Scratch::new();
    let limits = Limits::default();
    // Warm the cache so the steady state is the hit path.
    wire.clear();
    render_get(&mut wire, &target, "api.sim");
    client.write_all(&wire).unwrap();
    read_response_fast(&mut client, &mut parse, &limits).unwrap();

    let mut g = c.benchmark_group("serve_roundtrip");
    g.throughput(Throughput::Elements(1));
    g.bench_function("verdict_hit_e2e", |b| {
        b.iter(|| {
            wire.clear();
            render_get(&mut wire, &target, "api.sim");
            client.write_all(&wire).unwrap();
            let resp = read_response_fast(&mut client, &mut parse, &limits).unwrap();
            black_box(resp.status)
        })
    });
    g.finish();
    client.shutdown_write();
    drop(client);
    let _ = srv.join();
}

criterion_group!(benches, bench_handle, bench_cache, bench_roundtrip);
criterion_main!(benches);
