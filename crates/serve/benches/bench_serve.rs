//! Microbenchmarks for the serving hot path: cache-hit replay vs
//! cold compute per endpoint class, and raw sharded-cache churn.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fw_dns::pdns::PdnsStore;
use fw_http::types::Request;
use fw_serve::{CacheConfig, ServeApi, ServeState};
use fw_types::{DayStamp, Fqdn, Rdata};
use std::net::Ipv4Addr;
use std::sync::Arc;

const FQDN: &str = "a1b2c3d4e5f6.lambda-url.us-east-1.on.aws";

/// A small store with a few identifiable functions plus noise.
fn api() -> ServeApi<PdnsStore> {
    let mut store = PdnsStore::new();
    for i in 0..32 {
        let f = Fqdn::parse(&format!("f{i:011x}.lambda-url.us-east-1.on.aws")).unwrap();
        let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, (i % 250) as u8 + 1));
        for d in 0..5 {
            store.observe_count(&f, &ip, DayStamp(19_100 + d), 20 + i as u64);
        }
    }
    let f = Fqdn::parse(FQDN).unwrap();
    let ip = Rdata::V4(Ipv4Addr::new(203, 0, 113, 251));
    for d in [19_100, 19_101, 19_102] {
        store.observe_count(&f, &ip, DayStamp(d), 40);
    }
    let noise = Fqdn::parse("www.example.com").unwrap();
    store.observe_count(&noise, &ip, DayStamp(19_100), 5);
    ServeApi::new(ServeState::build(store, 1), CacheConfig::default())
}

fn bench_handle(c: &mut Criterion) {
    let api = api();
    let verdict = Request::get(&format!("/v1/verdict/{FQDN}"), "api.sim");
    let usage = Request::get(&format!("/v1/usage/{FQDN}"), "api.sim");
    let figures = Request::get("/v1/figures/ingress", "api.sim");

    let mut g = c.benchmark_group("serve_handle");
    g.throughput(Throughput::Elements(1));
    // Warm the cache, then measure the pure hit path.
    api.handle(&verdict);
    g.bench_function("verdict_hit", |b| {
        b.iter(|| black_box(api.handle(black_box(&verdict))))
    });
    g.bench_function("figures_hit", |b| {
        api.handle(&figures);
        b.iter(|| black_box(api.handle(black_box(&figures))))
    });
    // Cold compute: a fresh API per batch so every handle is a miss.
    g.bench_function("usage_miss", |b| {
        b.iter_batched(
            api_fresh,
            |fresh| black_box(fresh.handle(black_box(&usage))),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn api_fresh() -> ServeApi<PdnsStore> {
    api()
}

fn bench_cache(c: &mut Criterion) {
    let cache = fw_serve::ShardedCache::new(CacheConfig {
        shards: 16,
        capacity: 1024,
    });
    let body = Arc::new(fw_serve::cache::CachedResponse {
        status: 200,
        body: vec![b'x'; 256],
    });
    let keys: Vec<String> = (0..2048).map(|i| format!("/v1/verdict/key-{i}")).collect();
    for k in &keys {
        cache.put(k, Arc::clone(&body));
    }
    let mut g = c.benchmark_group("serve_cache");
    g.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    g.bench_function("get_put_churn", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            if cache.get(&keys[i]).is_none() {
                cache.put(&keys[i], Arc::clone(&body));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_handle, bench_cache);
criterion_main!(benches);
