//! Property tests for the pattern engine.
//!
//! Two core invariants:
//! 1. every string produced by the sampler matches its source pattern;
//! 2. matching never panics on arbitrary input, and `find` spans are
//!    well-formed (`start <= end <= len`, on char boundaries for ASCII).

use fw_pattern::{Pattern, Sampler, XorShiftRng};
use proptest::prelude::*;

const TABLE1_PATTERNS: &[&str] = &[
    r"^(.*)-(.*)-[a-z]{10}\.(.*)\.fcapp\.run$",
    r"^[a-z0-9]{13}\.cfc-execute\.(.*)\.baidubce\.com$",
    r"^[0-9]{10}-[a-z0-9]{10}-(.*)\.scf\.tencentcs\.com$",
    r"^(.*)-(eu-east-1|cn-beijing-6)\.ksyuncf\.com$",
    r"^(.*)\.lambda-url\.(.*)\.on\.aws$",
    r"^(asia|europe|us|australia|northamerica|southamerica)-(.*)-(.*)\.cloudfunctions\.net$",
    r"^(.*)-[a-z0-9]{10}-(.*)\.a\.run\.app$",
    r"^(us-south|us-east|eu-gb|eu-de|jp-tok|au-syd)\.functions\.appdomain\.cloud$",
    r"^[a-z0-9]{11}\.(.*)\.functions\.oci\.oraclecloud\.com$",
    r"^(.*)\.azurewebsites\.net$",
];

proptest! {
    #[test]
    fn sampled_strings_match(seed in any::<u64>(), idx in 0usize..10) {
        let pat = Pattern::compile(TABLE1_PATTERNS[idx]).unwrap();
        let mut rng = XorShiftRng::new(seed);
        let s = Sampler::new(&pat).sample(&mut rng);
        prop_assert!(pat.is_match(&s), "sample {:?} must match {}", s, TABLE1_PATTERNS[idx]);
    }

    #[test]
    fn matching_never_panics(input in "\\PC*", idx in 0usize..10) {
        let pat = Pattern::compile(TABLE1_PATTERNS[idx]).unwrap();
        let _ = pat.is_match(&input);
        if let Some((s, e)) = pat.find(&input) {
            prop_assert!(s <= e && e <= input.len());
        }
    }

    #[test]
    fn literal_patterns_agree_with_contains(hay in "[a-c]{0,20}", needle in "[a-c]{1,4}") {
        let pat = Pattern::compile(&needle).unwrap();
        prop_assert_eq!(pat.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn find_all_spans_are_sorted_and_disjoint(hay in "[ab]{0,30}") {
        let pat = Pattern::compile("a+").unwrap();
        let spans = pat.find_all(&hay);
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping spans {:?}", spans);
        }
        // Every span consists solely of 'a's and is maximal.
        for (s, e) in &spans {
            prop_assert!(hay[*s..*e].bytes().all(|b| b == b'a'));
            prop_assert!(*e - *s >= 1);
            if *e < hay.len() {
                prop_assert_ne!(hay.as_bytes()[*e], b'a');
            }
            if *s > 0 {
                prop_assert_ne!(hay.as_bytes()[*s - 1], b'a');
            }
        }
    }

    #[test]
    fn anchored_exact_class_rep(n in 1usize..30, input in "[a-z0-9]{0,35}") {
        let pat = Pattern::compile(&format!("^[a-z0-9]{{{n}}}$")).unwrap();
        prop_assert_eq!(pat.is_match(&input), input.len() == n);
    }
}

/// Captures of sampled Tencent domains always expose the region group.
#[test]
fn sampled_tencent_captures_region() {
    let pat = Pattern::compile(TABLE1_PATTERNS[2]).unwrap();
    let mut rng = XorShiftRng::new(7);
    for _ in 0..200 {
        let s = Sampler::new(&pat).sample(&mut rng);
        let caps = pat.captures(&s).expect("sample must match");
        let region = caps.get(1).expect("region group set");
        assert!(s.contains(region));
    }
}
