//! Random sample generation: produce strings that match a pattern.
//!
//! The workload generator mints provider-shaped function domains straight
//! from the Table 1 expressions, and the property tests cross-validate the
//! matcher (`sample ∈ L(pattern)` must always hold).
//!
//! The sampler is deliberately runtime-free: it consumes randomness through
//! the [`Rng`] trait below so `fw-pattern` does not depend on the `rand`
//! crate. `fw-workload` adapts its seeded RNG to this trait.

use crate::ast::{Ast, ClassItem};
use crate::Pattern;

/// Minimal source of randomness for sampling.
pub trait Rng {
    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    fn below(&mut self, bound: u32) -> u32;
}

/// A simple xorshift RNG for self-contained use in tests.
#[derive(Debug, Clone)]
pub struct XorShiftRng(u64);

impl XorShiftRng {
    pub fn new(seed: u64) -> Self {
        XorShiftRng(seed.max(1))
    }
}

impl Rng for XorShiftRng {
    fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x % u64::from(bound)) as u32
    }
}

/// Configuration for unconstrained constructs.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Maximum repetitions generated for `*`/`+`/`{n,}`.
    pub max_unbounded_reps: u32,
    /// Minimum repetitions for unbounded quantifiers (raise to 1 to keep
    /// `(.*)` components non-empty, e.g. when samples must be valid
    /// domain labels).
    pub min_unbounded_reps: u32,
    /// Bytes to choose from for `.` and for wildcard-ish `(.*)` content.
    pub any_alphabet: Vec<u8>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            max_unbounded_reps: 8,
            min_unbounded_reps: 0,
            // Domain-friendly alphabet: the Table 1 wildcards stand for
            // user-chosen labels, which are lowercase alphanumerics and '-'.
            any_alphabet: (b'a'..=b'z').chain(b'0'..=b'9').collect(),
        }
    }
}

impl SamplerConfig {
    /// A configuration whose samples are valid fqdn material: unbounded
    /// repetitions produce at least one byte.
    pub fn domain_friendly() -> SamplerConfig {
        SamplerConfig {
            min_unbounded_reps: 1,
            ..SamplerConfig::default()
        }
    }
}

/// Generates strings matching a [`Pattern`].
pub struct Sampler<'p> {
    pattern: &'p Pattern,
    config: SamplerConfig,
}

impl<'p> Sampler<'p> {
    pub fn new(pattern: &'p Pattern) -> Self {
        Sampler {
            pattern,
            config: SamplerConfig::default(),
        }
    }

    pub fn with_config(pattern: &'p Pattern, config: SamplerConfig) -> Self {
        Sampler { pattern, config }
    }

    /// Generate one matching string.
    pub fn sample(&self, rng: &mut dyn Rng) -> String {
        let mut out = Vec::new();
        self.node(self.pattern.ast(), rng, &mut out);
        // The alphabets used are always ASCII.
        String::from_utf8(out).expect("sampler produces ascii")
    }

    fn node(&self, ast: &Ast, rng: &mut dyn Rng, out: &mut Vec<u8>) {
        match ast {
            Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => {}
            Ast::Literal(b) => out.push(*b),
            Ast::AnyChar => {
                let a = &self.config.any_alphabet;
                out.push(a[rng.below(a.len() as u32) as usize]);
            }
            Ast::Class { items, negated } => {
                let candidates: Vec<u8> = if *negated {
                    (0x20..0x7f)
                        .filter(|b| !items.iter().any(|i| i.contains(*b)))
                        .collect()
                } else {
                    items
                        .iter()
                        .flat_map(|i| match *i {
                            ClassItem::Byte(b) => b..=b,
                            ClassItem::Range(lo, hi) => lo..=hi,
                        })
                        .collect()
                };
                assert!(!candidates.is_empty(), "unsatisfiable class in sampler");
                out.push(candidates[rng.below(candidates.len() as u32) as usize]);
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.node(p, rng, out);
                }
            }
            Ast::Alternation(branches) => {
                let pick = rng.below(branches.len() as u32) as usize;
                self.node(&branches[pick], rng, out);
            }
            Ast::Group { node, .. } => self.node(node, rng, out),
            Ast::Repeat { node, min, max, .. } => {
                let lo = if max.is_none() {
                    (*min).max(self.config.min_unbounded_reps)
                } else {
                    *min
                };
                let hi = max.unwrap_or(lo + self.config.max_unbounded_reps).max(lo);
                let count = if hi > lo {
                    lo + rng.below(hi - lo + 1)
                } else {
                    lo
                };
                for _ in 0..count {
                    self.node(node, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;

    const TABLE1: &[&str] = &[
        r"^(.*)-(.*)-[a-z]{10}\.(.*)\.fcapp\.run$",
        r"^[a-z0-9]{13}\.cfc-execute\.(.*)\.baidubce\.com$",
        r"^[0-9]{10}-[a-z0-9]{10}-(.*)\.scf\.tencentcs\.com$",
        r"^(.*)-(eu-east-1|cn-beijing-6)\.ksyuncf\.com$",
        r"^(.*)\.lambda-url\.(.*)\.on\.aws$",
        r"^(asia|europe|us|australia|northamerica|southamerica)-(.*)-(.*)\.cloudfunctions\.net$",
        r"^(.*)-[a-z0-9]{10}-(.*)\.a\.run\.app$",
        r"^(us-south|us-east|eu-gb|eu-de|jp-tok|au-syd)\.functions\.appdomain\.cloud$",
        r"^[a-z0-9]{11}\.(.*)\.functions\.oci\.oraclecloud\.com$",
        r"^(.*)\.azurewebsites\.net$",
    ];

    #[test]
    fn samples_match_their_pattern() {
        let mut rng = XorShiftRng::new(42);
        for pat in TABLE1 {
            let p = Pattern::compile(pat).unwrap();
            let sampler = Sampler::new(&p);
            for _ in 0..50 {
                let s = sampler.sample(&mut rng);
                assert!(p.is_match(&s), "sample {s:?} does not match {pat}");
            }
        }
    }

    #[test]
    fn bounded_rep_counts_respected() {
        let p = Pattern::compile("^a{3,5}$").unwrap();
        let sampler = Sampler::new(&p);
        let mut rng = XorShiftRng::new(7);
        for _ in 0..100 {
            let s = sampler.sample(&mut rng);
            assert!((3..=5).contains(&s.len()), "{s:?}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = Pattern::compile(r"^[a-z0-9]{13}\.example\.com$").unwrap();
        let a = Sampler::new(&p).sample(&mut XorShiftRng::new(99));
        let b = Sampler::new(&p).sample(&mut XorShiftRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn negated_class_sampling() {
        let p = Pattern::compile("^[^a-z]$").unwrap();
        let mut rng = XorShiftRng::new(3);
        let s = Sampler::new(&p).sample(&mut rng);
        assert!(p.is_match(&s));
    }
}
