//! Pattern parser: text → [`Ast`].
//!
//! A hand-written recursive-descent parser over ASCII bytes. The grammar:
//!
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom quantifier?
//! quantifier  := ('*' | '+' | '?' | '{' n (',' m?)? '}') '?'?
//! atom        := literal | '.' | class | '(' alternation ')' | '^' | '$' | escape
//! ```

use std::fmt;

/// One item inside a character class: a single byte or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    Byte(u8),
    Range(u8, u8),
}

impl ClassItem {
    pub fn contains(self, b: u8) -> bool {
        match self {
            ClassItem::Byte(x) => b == x,
            ClassItem::Range(lo, hi) => (lo..=hi).contains(&b),
        }
    }
}

/// Parsed pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal byte.
    Literal(u8),
    /// `.` — any byte except newline.
    AnyChar,
    /// `[...]` — set of items, possibly negated.
    Class {
        items: Vec<ClassItem>,
        negated: bool,
    },
    /// Sequence of nodes.
    Concat(Vec<Ast>),
    /// `a|b|c`.
    Alternation(Vec<Ast>),
    /// Quantified node. `max == None` means unbounded.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    },
    /// Capturing group; `index` is 1-based.
    Group { index: usize, node: Box<Ast> },
    /// `^`.
    StartAnchor,
    /// `$`.
    EndAnchor,
}

/// Pattern compilation error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    group_count: usize,
}

/// Parse a pattern, returning the AST and the number of capture groups.
pub fn parse(source: &str) -> Result<(Ast, usize), ParseError> {
    let mut p = Parser {
        src: source.as_bytes(),
        pos: 0,
        group_count: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.src.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok((ast, p.group_count))
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alternation(branches))
        }
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => {
                self.bump();
                let min = self.integer()?;
                let max = if self.peek() == Some(b',') {
                    self.bump();
                    if self.peek() == Some(b'}') {
                        None
                    } else {
                        Some(self.integer()?)
                    }
                } else {
                    Some(min)
                };
                if self.bump() != Some(b'}') {
                    return Err(self.err("expected '}' to close repetition"));
                }
                if let Some(max) = max {
                    if max < min {
                        return Err(self.err("repetition max is less than min"));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor | Ast::Empty) {
            return Err(self.err("quantifier applied to nothing"));
        }
        // A second quantifier directly after one means lazy ('?') or error.
        let greedy = if self.peek() == Some(b'?') {
            self.bump();
            false
        } else {
            true
        };
        if matches!(self.peek(), Some(b'*') | Some(b'+')) {
            return Err(self.err("double quantifier"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number in repetition"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are utf-8")
            .parse()
            .map_err(|_| self.err("repetition count too large"))
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                self.group_count += 1;
                let index = self.group_count;
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unbalanced '('"));
                }
                Ok(Ast::Group {
                    index,
                    node: Box::new(inner),
                })
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::AnyChar),
            Some(b'^') => Ok(Ast::StartAnchor),
            Some(b'$') => Ok(Ast::EndAnchor),
            Some(b'\\') => self.escape(),
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                Err(self.err(&format!("dangling quantifier '{}'", b as char)))
            }
            Some(b) => Ok(Ast::Literal(b)),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        let Some(b) = self.bump() else {
            return Err(self.err("trailing backslash"));
        };
        let class = |items: Vec<ClassItem>, negated: bool| Ast::Class { items, negated };
        Ok(match b {
            b'd' => class(vec![ClassItem::Range(b'0', b'9')], false),
            b'D' => class(vec![ClassItem::Range(b'0', b'9')], true),
            b'w' => class(word_items(), false),
            b'W' => class(word_items(), true),
            b's' => class(space_items(), false),
            b'S' => class(space_items(), true),
            b'n' => Ast::Literal(b'\n'),
            b'r' => Ast::Literal(b'\r'),
            b't' => Ast::Literal(b'\t'),
            b'.' | b'\\' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'|' | b'*' | b'+' | b'?'
            | b'^' | b'$' | b'-' | b'/' => Ast::Literal(b),
            other => {
                self.pos -= 1;
                return Err(self.err(&format!("unknown escape '\\{}'", other as char)));
            }
        })
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let Some(b) = self.bump() else {
                return Err(self.err("unterminated character class"));
            };
            match b {
                b']' if !items.is_empty() || negated => break,
                b']' => break, // empty class `[]` would be useless but accept-close
                b'\\' => {
                    let Some(e) = self.bump() else {
                        return Err(self.err("trailing backslash in class"));
                    };
                    let lit = match e {
                        b'd' => {
                            items.push(ClassItem::Range(b'0', b'9'));
                            continue;
                        }
                        b'w' => {
                            items.extend(word_items());
                            continue;
                        }
                        b's' => {
                            items.extend(space_items());
                            continue;
                        }
                        b'n' => b'\n',
                        b'r' => b'\r',
                        b't' => b'\t',
                        other => other,
                    };
                    items.push(self.maybe_range(lit)?);
                }
                b => items.push(self.maybe_range(b)?),
            }
        }
        Ok(Ast::Class { items, negated })
    }

    /// After seeing `lo` inside a class, check for a `-hi` range.
    fn maybe_range(&mut self, lo: u8) -> Result<ClassItem, ParseError> {
        if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
            self.bump(); // '-'
            let Some(hi) = self.bump() else {
                return Err(self.err("unterminated class range"));
            };
            let hi = if hi == b'\\' {
                self.bump().ok_or_else(|| self.err("trailing backslash"))?
            } else {
                hi
            };
            if hi < lo {
                return Err(self.err("inverted class range"));
            }
            Ok(ClassItem::Range(lo, hi))
        } else {
            Ok(ClassItem::Byte(lo))
        }
    }
}

fn word_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Range(b'a', b'z'),
        ClassItem::Range(b'A', b'Z'),
        ClassItem::Range(b'0', b'9'),
        ClassItem::Byte(b'_'),
    ]
}

fn space_items() -> Vec<ClassItem> {
    vec![
        ClassItem::Byte(b' '),
        ClassItem::Byte(b'\t'),
        ClassItem::Byte(b'\n'),
        ClassItem::Byte(b'\r'),
        ClassItem::Byte(0x0b),
        ClassItem::Byte(0x0c),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_concat() {
        let (ast, groups) = parse("ab").unwrap();
        assert_eq!(groups, 0);
        assert_eq!(
            ast,
            Ast::Concat(vec![Ast::Literal(b'a'), Ast::Literal(b'b')])
        );
    }

    #[test]
    fn counts_groups_left_to_right() {
        let (_, groups) = parse("(a(b))(c)").unwrap();
        assert_eq!(groups, 3);
    }

    #[test]
    fn class_with_range_and_literal_hyphen() {
        let (ast, _) = parse("[a-z-]").unwrap();
        match ast {
            Ast::Class { items, negated } => {
                assert!(!negated);
                assert_eq!(
                    items,
                    vec![ClassItem::Range(b'a', b'z'), ClassItem::Byte(b'-')]
                );
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn closing_bracket_first_is_literal() {
        // `[]a]` — leading `]` right after `[` closes an empty class in this
        // dialect; we keep it an error-free minimal behaviour: empty class.
        let (ast, _) = parse("[]").unwrap();
        assert_eq!(
            ast,
            Ast::Class {
                items: vec![],
                negated: false
            }
        );
    }

    #[test]
    fn bounded_rep_forms() {
        for (pat, min, max) in [
            ("a{3}", 3, Some(3)),
            ("a{2,5}", 2, Some(5)),
            ("a{4,}", 4, None),
        ] {
            let (ast, _) = parse(pat).unwrap();
            match ast {
                Ast::Repeat {
                    min: m,
                    max: x,
                    greedy,
                    ..
                } => {
                    assert_eq!((m, x), (min, max));
                    assert!(greedy);
                }
                other => panic!("unexpected ast {other:?}"),
            }
        }
    }

    #[test]
    fn lazy_flag() {
        let (ast, _) = parse("a+?").unwrap();
        assert!(matches!(ast, Ast::Repeat { greedy: false, .. }));
    }

    #[test]
    fn error_positions_are_set() {
        let e = parse("ab(").unwrap_err();
        assert_eq!(e.pos, 3);
    }
}
