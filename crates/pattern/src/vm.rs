//! Pike VM: NFA simulation with capture slots.
//!
//! Runs in `O(input × program)` time regardless of pattern shape. Threads
//! are kept in priority order (earlier = higher priority), which gives
//! leftmost-first match semantics with greedy/lazy quantifier behaviour
//! driven by `Split` operand order.
//!
//! Slot storage is generic so the hot paths stay allocation-free: plain
//! membership tests run with no slot tracking at all, and capture runs over
//! small programs (the Table 1 URL formats have ≤3 groups) use an inline
//! fixed-size array instead of cloning a heap `Vec` on every thread add.

use crate::compile::{Inst, Program};

type Slots = Vec<Option<usize>>;

/// Capture-slot storage strategy. All impls must behave identically for
/// control flow; they only differ in what (if anything) they record.
trait SlotTrack: Clone {
    fn new(count: usize) -> Self;
    fn get(&self, i: usize) -> Option<usize>;
    fn set(&mut self, i: usize, v: Option<usize>);
    fn into_vec(self, count: usize) -> Slots;
}

impl SlotTrack for Slots {
    fn new(count: usize) -> Self {
        vec![None; count]
    }
    fn get(&self, i: usize) -> Option<usize> {
        self[i]
    }
    fn set(&mut self, i: usize, v: Option<usize>) {
        self[i] = v;
    }
    fn into_vec(self, _count: usize) -> Slots {
        self
    }
}

/// Programs with at most this many slots (pattern groups ≤ 7) use the
/// inline representation; larger ones fall back to the heap `Vec`.
const INLINE_SLOTS: usize = 16;

/// `u32::MAX` is the `None` sentinel, so inline tracking also requires the
/// input to be shorter than `u32::MAX` bytes (checked at dispatch).
#[derive(Clone, Copy)]
struct InlineSlots {
    buf: [u32; INLINE_SLOTS],
}

impl SlotTrack for InlineSlots {
    fn new(_count: usize) -> Self {
        InlineSlots {
            buf: [u32::MAX; INLINE_SLOTS],
        }
    }
    fn get(&self, i: usize) -> Option<usize> {
        let v = self.buf[i];
        if v == u32::MAX {
            None
        } else {
            Some(v as usize)
        }
    }
    fn set(&mut self, i: usize, v: Option<usize>) {
        self.buf[i] = match v {
            Some(p) => p as u32,
            None => u32::MAX,
        };
    }
    fn into_vec(self, count: usize) -> Slots {
        (0..count).map(|i| self.get(i)).collect()
    }
}

/// Zero-cost tracker for pure membership tests (`is_match`).
#[derive(Clone, Copy)]
struct NoSlots;

impl SlotTrack for NoSlots {
    fn new(_count: usize) -> Self {
        NoSlots
    }
    fn get(&self, _i: usize) -> Option<usize> {
        None
    }
    fn set(&mut self, _i: usize, _v: Option<usize>) {}
    fn into_vec(self, count: usize) -> Slots {
        vec![None; count]
    }
}

struct ThreadList<S> {
    /// `(pc, slots)` in priority order.
    threads: Vec<(usize, S)>,
    /// Generation marker per pc to dedupe adds within one step.
    seen: Vec<u32>,
    gen: u32,
}

impl<S: SlotTrack> ThreadList<S> {
    fn new() -> Self {
        ThreadList {
            threads: Vec::new(),
            // `seen` starts at generation 0; the live generation starts at 1
            // so a fresh list has no instruction marked as seen.
            seen: Vec::new(),
            gen: 0,
        }
    }

    /// Ready the list for a fresh search over a program of `len`
    /// instructions: grow `seen` if needed and bump the generation so
    /// nothing reads as already-added. Buffers keep their capacity, so
    /// a reused list does no per-search allocation.
    fn prepare(&mut self, len: usize) {
        if self.seen.len() < len {
            self.seen.resize(len, 0);
        }
        self.clear();
    }

    fn clear(&mut self) {
        self.threads.clear();
        if self.gen == u32::MAX {
            // Generation wrap: stale marks from 4 billion clears ago
            // would read as current. Reset them (rare, amortized free).
            self.seen.iter_mut().for_each(|g| *g = 0);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }
}

/// Add a thread, following zero-width instructions.
fn add_thread<S: SlotTrack>(
    prog: &Program,
    list: &mut ThreadList<S>,
    pc: usize,
    pos: usize,
    input_len: usize,
    slots: &mut S,
) {
    if list.seen[pc] == list.gen {
        return;
    }
    list.seen[pc] = list.gen;
    match &prog.insts[pc] {
        Inst::Jump(t) => add_thread(prog, list, *t, pos, input_len, slots),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, pos, input_len, slots);
            add_thread(prog, list, *b, pos, input_len, slots);
        }
        Inst::Save(n) => {
            let old = slots.get(*n);
            slots.set(*n, Some(pos));
            add_thread(prog, list, pc + 1, pos, input_len, slots);
            slots.set(*n, old);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == input_len {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        _ => list.threads.push((pc, slots.clone())),
    }
}

/// Search the whole input for the leftmost match. Returns capture slots.
pub fn search(prog: &Program, input: &[u8]) -> Option<Slots> {
    search_at(prog, input, 0)
}

// Per-thread scratch lists, reused across searches. Classification
// calls `captures`/`is_match` millions of times on short inputs;
// without reuse every call pays two `seen` allocations and the thread
// vectors regrow from zero.
thread_local! {
    static INLINE_SCRATCH: std::cell::RefCell<(ThreadList<InlineSlots>, ThreadList<InlineSlots>)> =
        std::cell::RefCell::new((ThreadList::new(), ThreadList::new()));
    static NOSLOT_SCRATCH: std::cell::RefCell<(ThreadList<NoSlots>, ThreadList<NoSlots>)> =
        std::cell::RefCell::new((ThreadList::new(), ThreadList::new()));
}

/// Search starting at byte offset `start`.
pub fn search_at(prog: &Program, input: &[u8], start: usize) -> Option<Slots> {
    if prog.slot_count <= INLINE_SLOTS && input.len() < u32::MAX as usize {
        INLINE_SCRATCH
            .with(|s| {
                let (clist, nlist) = &mut *s.borrow_mut();
                search_impl::<InlineSlots>(prog, input, start, clist, nlist)
            })
            .map(|s| s.into_vec(prog.slot_count))
    } else {
        let (mut clist, mut nlist) = (ThreadList::new(), ThreadList::new());
        search_impl::<Slots>(prog, input, start, &mut clist, &mut nlist)
    }
}

/// Membership test without slot tracking: same thread scheduling, no
/// captures, no allocation per thread add.
pub fn is_match(prog: &Program, input: &[u8]) -> bool {
    NOSLOT_SCRATCH
        .with(|s| {
            let (clist, nlist) = &mut *s.borrow_mut();
            search_impl::<NoSlots>(prog, input, 0, clist, nlist)
        })
        .is_some()
}

fn search_impl<S: SlotTrack>(
    prog: &Program,
    input: &[u8],
    start: usize,
    clist: &mut ThreadList<S>,
    nlist: &mut ThreadList<S>,
) -> Option<S> {
    let n = prog.insts.len();
    clist.prepare(n);
    nlist.prepare(n);
    let mut matched: Option<S> = None;
    let anchored = prog.anchored_start();

    // One iteration per input position, inclusive of the end-of-input step
    // (pos == input.len()) where `$`/Match threads fire with byte == None.
    for pos in start..=input.len() {
        // Seed a fresh start thread at the lowest priority, unless a match
        // was already found (leftmost wins) or the pattern is start-anchored
        // and this is past the only legal start position.
        if matched.is_none() && (!anchored || pos == start) {
            let mut slots = S::new(prog.slot_count);
            add_thread(prog, clist, 0, pos, input.len(), &mut slots);
        }
        if clist.threads.is_empty() {
            if matched.is_some() || anchored {
                break;
            }
            continue;
        }

        let byte = input.get(pos).copied();
        nlist.clear();
        // Drain (not take): the vector keeps its capacity for the next
        // position, and a `Match` break drops the lower-priority tail.
        for (pc, slots) in clist.threads.drain(..) {
            match &prog.insts[pc] {
                Inst::Byte(b) => {
                    if byte == Some(*b) {
                        let mut s = slots;
                        add_thread(prog, nlist, pc + 1, pos + 1, input.len(), &mut s);
                    }
                }
                Inst::Any => {
                    if matches!(byte, Some(b) if b != b'\n') {
                        let mut s = slots;
                        add_thread(prog, nlist, pc + 1, pos + 1, input.len(), &mut s);
                    }
                }
                Inst::Class { items, negated } => {
                    if let Some(b) = byte {
                        let inside = items.iter().any(|i| i.contains(b));
                        if inside != *negated {
                            let mut s = slots;
                            add_thread(prog, nlist, pc + 1, pos + 1, input.len(), &mut s);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority thread reaching Match at this step
                    // wins; lower-priority threads are discarded. Threads
                    // already moved to nlist have higher priority and may
                    // still produce a better (earlier-starting, longer)
                    // match on later steps, overriding this one.
                    matched = Some(slots);
                    break;
                }
                // Zero-width instructions never appear in thread lists.
                _ => unreachable!("zero-width inst in thread list"),
            }
        }
        std::mem::swap(clist, nlist);
    }
    matched
}

#[cfg(test)]
mod tests {
    use crate::Pattern;

    #[test]
    fn empty_pattern_matches_empty_input() {
        let p = Pattern::compile("").unwrap();
        assert!(p.is_match(""));
        assert!(p.is_match("abc")); // matches empty prefix
        assert_eq!(p.find("abc"), Some((0, 0)));
    }

    #[test]
    fn anchored_end_only() {
        let p = Pattern::compile("abc$").unwrap();
        assert!(p.is_match("xxabc"));
        assert!(!p.is_match("abcx"));
    }

    #[test]
    fn match_at_exact_end_of_input() {
        let p = Pattern::compile("^a+$").unwrap();
        assert!(p.is_match("a"));
        assert!(p.is_match("aaaa"));
        assert!(!p.is_match(""));
    }

    #[test]
    fn leftmost_priority_over_longer_later() {
        let p = Pattern::compile("a|aa").unwrap();
        assert_eq!(p.find("aa"), Some((0, 1)));
    }

    #[test]
    fn unanchored_long_scan() {
        let hay = format!("{}{}", "x".repeat(10_000), "needle");
        let p = Pattern::compile("needle$").unwrap();
        assert_eq!(p.find(&hay), Some((10_000, 10_006)));
    }

    #[test]
    fn is_match_agrees_with_search_across_shapes() {
        // The slotless fast path must schedule threads identically to the
        // capturing path; spot-check shapes that stress priority order.
        let cases = [
            ("^(a|ab)(c?)$", vec!["ac", "abc", "ab", "a", "abcc"]),
            ("(x+)(y*)z", vec!["xyz", "xz", "yz", "xxyyz", ""]),
            (
                "^[a-z]{3}-[0-9]+$",
                vec!["abc-123", "ab-1", "abc-", "abc-0"],
            ),
        ];
        for (pat, inputs) in cases {
            let p = Pattern::compile(pat).unwrap();
            for input in inputs {
                assert_eq!(
                    p.is_match(input),
                    p.captures(input).is_some(),
                    "divergence for {pat:?} on {input:?}"
                );
            }
        }
    }

    #[test]
    fn many_groups_fall_back_to_heap_slots() {
        // 8 groups → 18 slots, past the inline capacity.
        let p = Pattern::compile("^(a)(b)(c)(d)(e)(f)(g)(h)$").unwrap();
        let caps = p.captures("abcdefgh").unwrap();
        for (i, s) in ["a", "b", "c", "d", "e", "f", "g", "h"].iter().enumerate() {
            assert_eq!(caps.get(i + 1), Some(*s));
        }
    }
}
