//! Pike VM: NFA simulation with capture slots.
//!
//! Runs in `O(input × program)` time regardless of pattern shape. Threads
//! are kept in priority order (earlier = higher priority), which gives
//! leftmost-first match semantics with greedy/lazy quantifier behaviour
//! driven by `Split` operand order.

use crate::compile::{Inst, Program};

type Slots = Vec<Option<usize>>;

struct ThreadList {
    /// `(pc, slots)` in priority order.
    threads: Vec<(usize, Slots)>,
    /// Generation marker per pc to dedupe adds within one step.
    seen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(len: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            // `seen` starts at generation 0; the live generation starts at 1
            // so a fresh list has no instruction marked as seen.
            seen: vec![0; len],
            gen: 1,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }
}

/// Add a thread, following zero-width instructions.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    pos: usize,
    input_len: usize,
    slots: &mut Slots,
) {
    if list.seen[pc] == list.gen {
        return;
    }
    list.seen[pc] = list.gen;
    match &prog.insts[pc] {
        Inst::Jump(t) => add_thread(prog, list, *t, pos, input_len, slots),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, pos, input_len, slots);
            add_thread(prog, list, *b, pos, input_len, slots);
        }
        Inst::Save(n) => {
            let old = slots[*n];
            slots[*n] = Some(pos);
            add_thread(prog, list, pc + 1, pos, input_len, slots);
            slots[*n] = old;
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == input_len {
                add_thread(prog, list, pc + 1, pos, input_len, slots);
            }
        }
        _ => list.threads.push((pc, slots.clone())),
    }
}

/// Search the whole input for the leftmost match. Returns capture slots.
pub fn search(prog: &Program, input: &[u8]) -> Option<Slots> {
    search_at(prog, input, 0)
}

/// Search starting at byte offset `start`.
pub fn search_at(prog: &Program, input: &[u8], start: usize) -> Option<Slots> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let mut matched: Option<Slots> = None;
    let anchored = prog.anchored_start();

    // One iteration per input position, inclusive of the end-of-input step
    // (pos == input.len()) where `$`/Match threads fire with byte == None.
    for pos in start..=input.len() {
        // Seed a fresh start thread at the lowest priority, unless a match
        // was already found (leftmost wins) or the pattern is start-anchored
        // and this is past the only legal start position.
        if matched.is_none() && (!anchored || pos == start) {
            let mut slots: Slots = vec![None; prog.slot_count];
            add_thread(prog, &mut clist, 0, pos, input.len(), &mut slots);
        }
        if clist.threads.is_empty() {
            if matched.is_some() || anchored {
                break;
            }
            continue;
        }

        let byte = input.get(pos).copied();
        nlist.clear();
        let threads = std::mem::take(&mut clist.threads);
        for (pc, slots) in threads {
            match &prog.insts[pc] {
                Inst::Byte(b) => {
                    if byte == Some(*b) {
                        let mut s = slots;
                        add_thread(prog, &mut nlist, pc + 1, pos + 1, input.len(), &mut s);
                    }
                }
                Inst::Any => {
                    if matches!(byte, Some(b) if b != b'\n') {
                        let mut s = slots;
                        add_thread(prog, &mut nlist, pc + 1, pos + 1, input.len(), &mut s);
                    }
                }
                Inst::Class { items, negated } => {
                    if let Some(b) = byte {
                        let inside = items.iter().any(|i| i.contains(b));
                        if inside != *negated {
                            let mut s = slots;
                            add_thread(prog, &mut nlist, pc + 1, pos + 1, input.len(), &mut s);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority thread reaching Match at this step
                    // wins; lower-priority threads are discarded. Threads
                    // already moved to nlist have higher priority and may
                    // still produce a better (earlier-starting, longer)
                    // match on later steps, overriding this one.
                    matched = Some(slots);
                    break;
                }
                // Zero-width instructions never appear in thread lists.
                _ => unreachable!("zero-width inst in thread list"),
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
    }
    matched
}

#[cfg(test)]
mod tests {
    use crate::Pattern;

    #[test]
    fn empty_pattern_matches_empty_input() {
        let p = Pattern::compile("").unwrap();
        assert!(p.is_match(""));
        assert!(p.is_match("abc")); // matches empty prefix
        assert_eq!(p.find("abc"), Some((0, 0)));
    }

    #[test]
    fn anchored_end_only() {
        let p = Pattern::compile("abc$").unwrap();
        assert!(p.is_match("xxabc"));
        assert!(!p.is_match("abcx"));
    }

    #[test]
    fn match_at_exact_end_of_input() {
        let p = Pattern::compile("^a+$").unwrap();
        assert!(p.is_match("a"));
        assert!(p.is_match("aaaa"));
        assert!(!p.is_match(""));
    }

    #[test]
    fn leftmost_priority_over_longer_later() {
        let p = Pattern::compile("a|aa").unwrap();
        assert_eq!(p.find("aa"), Some((0, 1)));
    }

    #[test]
    fn unanchored_long_scan() {
        let hay = format!("{}{}", "x".repeat(10_000), "needle");
        let p = Pattern::compile("needle$").unwrap();
        assert_eq!(p.find(&hay), Some((10_000, 10_006)));
    }
}
