//! # fw-pattern
//!
//! A from-scratch regular-expression engine sized for the paper's needs.
//!
//! Paper §3.2 converts each provider's function-URL format into a domain
//! regular expression (Table 1) and filters billions of PDNS records through
//! them. This crate implements exactly the construct set those expressions
//! (and the sensitive-data detectors in `fw-abuse`) require:
//!
//! * anchors `^` `$`
//! * literals, escaped metacharacters (`\.`), escape classes
//!   (`\d \D \w \W \s \S`)
//! * the any-char dot `.`
//! * character classes `[a-z0-9]`, ranges, negation `[^...]`
//! * groups `(...)` with alternation `a|b|c`; groups capture
//! * quantifiers `*` `+` `?` and bounded repetition `{n}` `{m,n}` `{m,}`,
//!   each with a lazy variant (`*?` ...)
//!
//! Matching uses a Pike VM (Thompson NFA simulation with capture slots), so
//! it runs in `O(len(input) × len(program))` — no catastrophic backtracking,
//! which matters when scanning PDNS-scale fqdn streams. A companion
//! [`Sampler`] generates random strings that match a pattern; the workload
//! generator uses it to mint provider-shaped domains, and the property tests
//! use it to cross-validate the matcher.
//!
//! ```
//! use fw_pattern::Pattern;
//! let p = Pattern::compile(r"^[0-9]{10}-[a-z0-9]{10}-(.*)\.scf\.tencentcs\.com$").unwrap();
//! let caps = p.captures("1257890123-a1b2c3d4e5-gz.scf.tencentcs.com").unwrap();
//! assert_eq!(caps.get(1), Some("gz"));
//! assert!(!p.is_match("a.scf.tencentcs.com"));
//! ```

mod ast;
mod compile;
mod sample;
mod vm;

pub use ast::{Ast, ClassItem, ParseError};
pub use sample::{Rng, Sampler, SamplerConfig, XorShiftRng};

use compile::Program;

/// A compiled pattern, ready for matching.
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    ast: Ast,
    program: Program,
    group_count: usize,
}

impl Pattern {
    /// Parse and compile a pattern.
    pub fn compile(source: &str) -> Result<Pattern, ParseError> {
        let (ast, group_count) = ast::parse(source)?;
        let program = compile::compile(&ast, group_count);
        Ok(Pattern {
            source: source.to_string(),
            ast,
            program,
            group_count,
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of capture groups (excluding the implicit whole-match group 0).
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Does the pattern match anywhere in `input`?
    /// (Anchors inside the pattern still apply.)
    pub fn is_match(&self, input: &str) -> bool {
        vm::is_match(&self.program, input.as_bytes())
    }

    /// Leftmost match with capture groups, or `None`.
    pub fn captures<'i>(&self, input: &'i str) -> Option<Captures<'i>> {
        let slots = vm::search(&self.program, input.as_bytes())?;
        Some(Captures { input, slots })
    }

    /// Leftmost match span `(start, end)` in byte offsets, or `None`.
    pub fn find(&self, input: &str) -> Option<(usize, usize)> {
        let slots = vm::search(&self.program, input.as_bytes())?;
        match (slots[0], slots[1]) {
            (Some(s), Some(e)) => Some((s, e)),
            _ => None,
        }
    }

    /// All non-overlapping match spans, leftmost-first.
    pub fn find_all(&self, input: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let bytes = input.as_bytes();
        let mut at = 0;
        while at <= bytes.len() {
            match vm::search_at(&self.program, bytes, at) {
                Some(slots) => {
                    let (s, e) = (slots[0].unwrap(), slots[1].unwrap());
                    out.push((s, e));
                    // Empty matches must still advance the cursor.
                    at = if e > at { e } else { at + 1 };
                }
                None => break,
            }
        }
        out
    }

    /// The parsed AST (used by [`Sampler`] and tests).
    pub fn ast(&self) -> &Ast {
        &self.ast
    }
}

/// Capture groups for one match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'i> {
    input: &'i str,
    slots: Vec<Option<usize>>,
}

impl<'i> Captures<'i> {
    /// Text of group `idx`, if the group participated in the match.
    pub fn get(&self, idx: usize) -> Option<&'i str> {
        let s = *self.slots.get(idx * 2)?;
        let e = *self.slots.get(idx * 2 + 1)?;
        match (s, e) {
            (Some(s), Some(e)) => self.input.get(s..e),
            _ => None,
        }
    }

    /// Number of groups including group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(pat: &str, input: &str) -> bool {
        Pattern::compile(pat).unwrap().is_match(input)
    }

    #[test]
    fn literals_and_anchors() {
        assert!(ok("^abc$", "abc"));
        assert!(!ok("^abc$", "abcd"));
        assert!(!ok("^abc$", "zabc"));
        assert!(ok("abc", "zabcd")); // unanchored search
        assert!(!ok("abc", "ab"));
    }

    #[test]
    fn dot_and_escape() {
        assert!(ok(r"^a.c$", "abc"));
        assert!(ok(r"^a.c$", "a-c"));
        assert!(!ok(r"^a\.c$", "abc"));
        assert!(ok(r"^a\.c$", "a.c"));
    }

    #[test]
    fn classes() {
        assert!(ok(r"^[a-z0-9]$", "q"));
        assert!(ok(r"^[a-z0-9]$", "7"));
        assert!(!ok(r"^[a-z0-9]$", "Q"));
        assert!(ok(r"^[^a-z]$", "Q"));
        assert!(!ok(r"^[^a-z]$", "q"));
        assert!(ok(r"^[-a]$", "-")); // leading hyphen is literal
        assert!(ok(r"^[a\]]$", "]")); // escaped bracket
    }

    #[test]
    fn escape_classes() {
        assert!(ok(r"^\d+$", "0198"));
        assert!(!ok(r"^\d+$", "01a8"));
        assert!(ok(r"^\w+$", "a_9Z"));
        assert!(ok(r"^\s$", " "));
        assert!(ok(r"^\S$", "x"));
        assert!(ok(r"^\D$", "x"));
        assert!(!ok(r"^\D$", "5"));
    }

    #[test]
    fn quantifiers() {
        assert!(ok("^ab*c$", "ac"));
        assert!(ok("^ab*c$", "abbbc"));
        assert!(ok("^ab+c$", "abc"));
        assert!(!ok("^ab+c$", "ac"));
        assert!(ok("^ab?c$", "ac"));
        assert!(ok("^ab?c$", "abc"));
        assert!(!ok("^ab?c$", "abbc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(ok(r"^[a-z]{10}$", "abcdefghij"));
        assert!(!ok(r"^[a-z]{10}$", "abcdefghi"));
        assert!(!ok(r"^[a-z]{10}$", "abcdefghijk"));
        assert!(ok(r"^a{2,4}$", "aa"));
        assert!(ok(r"^a{2,4}$", "aaaa"));
        assert!(!ok(r"^a{2,4}$", "a"));
        assert!(!ok(r"^a{2,4}$", "aaaaa"));
        assert!(ok(r"^a{2,}$", "aaaaaaa"));
        assert!(!ok(r"^a{2,}$", "a"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(ok("^(foo|bar)$", "foo"));
        assert!(ok("^(foo|bar)$", "bar"));
        assert!(!ok("^(foo|bar)$", "baz"));
        assert!(ok("^(a|b)(c|d)$", "ad"));
    }

    #[test]
    fn captures_basic() {
        let p = Pattern::compile(r"^(\d+)-([a-z]+)$").unwrap();
        let c = p.captures("123-abc").unwrap();
        assert_eq!(c.get(0), Some("123-abc"));
        assert_eq!(c.get(1), Some("123"));
        assert_eq!(c.get(2), Some("abc"));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn greedy_vs_lazy() {
        let g = Pattern::compile(r"^(a*)(a*)$").unwrap();
        let c = g.captures("aaa").unwrap();
        assert_eq!(c.get(1), Some("aaa"));
        assert_eq!(c.get(2), Some(""));

        let l = Pattern::compile(r"^(a*?)(a*)$").unwrap();
        let c = l.captures("aaa").unwrap();
        assert_eq!(c.get(1), Some(""));
        assert_eq!(c.get(2), Some("aaa"));
    }

    #[test]
    fn leftmost_match_and_find() {
        let p = Pattern::compile("b+").unwrap();
        assert_eq!(p.find("aabbbabb"), Some((2, 5)));
        assert_eq!(p.find_all("aabbbabb"), vec![(2, 5), (6, 8)]);
    }

    #[test]
    fn find_all_with_empty_matches_terminates() {
        let p = Pattern::compile("a*").unwrap();
        let spans = p.find_all("ba");
        // Must not loop forever; empty match at 0, then "a" at 1.
        assert!(spans.contains(&(1, 2)));
    }

    #[test]
    fn table1_tencent_pattern() {
        let p = Pattern::compile(r"^[0-9]{10}-[a-z0-9]{10}-(.*)\.scf\.tencentcs\.com$").unwrap();
        assert!(p.is_match("1300000001-abcde01234-ap-guangzhou.scf.tencentcs.com"));
        assert!(!p.is_match("130000001-abcde01234-gz.scf.tencentcs.com")); // 9-digit uid
        assert!(!p.is_match("1300000001-abcde01234-gz.scf.tencentcs.org"));
        let c = p
            .captures("1300000001-abcde01234-ap-guangzhou.scf.tencentcs.com")
            .unwrap();
        assert_eq!(c.get(1), Some("ap-guangzhou"));
    }

    #[test]
    fn table1_google_pattern() {
        let p = Pattern::compile(
            r"^(asia|europe|us|australia|northamerica|southamerica)-(.*)-(.*)\.cloudfunctions\.net$",
        )
        .unwrap();
        let c = p.captures("us-central1-myproj.cloudfunctions.net").unwrap();
        assert_eq!(c.get(1), Some("us"));
        assert!(!p.is_match("africa-south1-x.cloudfunctions.net"));
    }

    #[test]
    fn no_pathological_blowup() {
        // The classic (a|a)* trap: a Pike VM handles this in linear time.
        let p = Pattern::compile("^(a|a)*b$").unwrap();
        let input = "a".repeat(200); // no trailing b => no match
        assert!(!p.is_match(&input));
    }

    #[test]
    fn parse_errors() {
        for bad in ["(", ")", "a{", "a{2", "[a", r"\q", "a**", "*a", "a{4,2}"] {
            assert!(Pattern::compile(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_alternation_branch() {
        let p = Pattern::compile("^a(b|)c$").unwrap();
        assert!(p.is_match("abc"));
        assert!(p.is_match("ac"));
    }
}
