//! AST → NFA program (Thompson construction).
//!
//! The program is a flat instruction list executed by the Pike VM in
//! `vm.rs`. Bounded repetitions are expanded at compile time (the Table 1
//! expressions use small counts like `{10}`/`{13}`), keeping the VM free of
//! counters.

use crate::ast::{Ast, ClassItem};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume exactly this byte.
    Byte(u8),
    /// Consume any byte except `\n`.
    Any,
    /// Consume one byte matched by the class.
    Class {
        items: Vec<ClassItem>,
        negated: bool,
    },
    /// Try `a` first (higher priority), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Record the current input position into capture slot `n`.
    Save(usize),
    /// Zero-width assertion: at input start.
    AssertStart,
    /// Zero-width assertion: at input end.
    AssertEnd,
    /// Successful match.
    Match,
}

/// A compiled NFA program.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    /// Capture slots: `2 * (group_count + 1)`.
    pub slot_count: usize,
}

impl Program {
    /// True when the pattern can only match at input start (leading `^`),
    /// letting the VM skip seeding threads at later offsets.
    pub fn anchored_start(&self) -> bool {
        // Save(0) is always first; check the instruction after it.
        matches!(self.insts.get(1), Some(Inst::AssertStart))
    }
}

/// Compile an AST into a program.
pub fn compile(ast: &Ast, group_count: usize) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.push(Inst::Save(0));
    c.node(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program {
        insts: c.insts,
        slot_count: 2 * (group_count + 1),
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch_split_second(&mut self, at: usize, to: usize) {
        if let Inst::Split(_, b) = &mut self.insts[at] {
            *b = to;
        } else {
            unreachable!("patch target is not a split");
        }
    }

    fn patch_jump(&mut self, at: usize, to: usize) {
        if let Inst::Jump(t) = &mut self.insts[at] {
            *t = to;
        } else {
            unreachable!("patch target is not a jump");
        }
    }

    fn node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(b) => {
                self.push(Inst::Byte(*b));
            }
            Ast::AnyChar => {
                self.push(Inst::Any);
            }
            Ast::Class { items, negated } => {
                self.push(Inst::Class {
                    items: items.clone(),
                    negated: *negated,
                });
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.node(p);
                }
            }
            Ast::Alternation(branches) => {
                // split b1, split b2, ... with jumps to a common end.
                let mut jump_ends = Vec::new();
                let mut pending_split: Option<usize> = None;
                for (i, br) in branches.iter().enumerate() {
                    if let Some(sp) = pending_split.take() {
                        let here = self.here();
                        self.patch_split_second(sp, here);
                    }
                    let last = i + 1 == branches.len();
                    if !last {
                        let sp = self.push(Inst::Split(0, 0));
                        let body = self.here();
                        if let Inst::Split(a, _) = &mut self.insts[sp] {
                            *a = body;
                        }
                        self.node(br);
                        jump_ends.push(self.push(Inst::Jump(0)));
                        pending_split = Some(sp);
                    } else {
                        self.node(br);
                    }
                }
                let end = self.here();
                for j in jump_ends {
                    self.patch_jump(j, end);
                }
            }
            Ast::Group { index, node } => {
                self.push(Inst::Save(2 * index));
                self.node(node);
                self.push(Inst::Save(2 * index + 1));
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.repeat(node, *min, *max, *greedy),
            Ast::StartAnchor => {
                self.push(Inst::AssertStart);
            }
            Ast::EndAnchor => {
                self.push(Inst::AssertEnd);
            }
        }
    }

    fn repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory copies.
        for _ in 0..min {
            self.node(node);
        }
        match max {
            None => {
                // Star over one more copy: L: split(body, out); body; jump L
                let sp = self.push(Inst::Split(0, 0));
                let body = self.here();
                self.node(node);
                self.push(Inst::Jump(sp));
                let out = self.here();
                if greedy {
                    if let Inst::Split(a, b) = &mut self.insts[sp] {
                        *a = body;
                        *b = out;
                    }
                } else if let Inst::Split(a, b) = &mut self.insts[sp] {
                    *a = out;
                    *b = body;
                }
            }
            Some(max) => {
                // (max - min) optional copies, each splitting to the common
                // end, so matching can stop after any prefix of the copies.
                let mut splits = Vec::new();
                for _ in min..max {
                    let sp = self.push(Inst::Split(0, 0));
                    let body = self.here();
                    if let Inst::Split(a, _) = &mut self.insts[sp] {
                        *a = body; // will fix for lazy below
                    }
                    splits.push(sp);
                    self.node(node);
                }
                let end = self.here();
                for sp in splits {
                    if let Inst::Split(a, b) = &mut self.insts[sp] {
                        if greedy {
                            *b = end;
                        } else {
                            *b = *a; // body becomes second priority
                            *a = end;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(pat: &str) -> Program {
        let (ast, groups) = parse(pat).unwrap();
        compile(&ast, groups)
    }

    #[test]
    fn anchored_start_detection() {
        assert!(prog("^abc").anchored_start());
        assert!(!prog("abc").anchored_start());
    }

    #[test]
    fn slot_count_includes_group_zero() {
        assert_eq!(prog("a").slot_count, 2);
        assert_eq!(prog("(a)(b)").slot_count, 6);
    }

    #[test]
    fn bounded_repeat_expands() {
        // `a{3}` should contain three Byte instructions.
        let p = prog("a{3}");
        let bytes = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Byte(b'a')))
            .count();
        assert_eq!(bytes, 3);
    }

    #[test]
    fn program_always_ends_with_match() {
        for pat in ["a", "(a|b)*", "^x{2,5}$"] {
            let p = prog(pat);
            assert!(matches!(p.insts.last(), Some(Inst::Match)));
        }
    }
}
