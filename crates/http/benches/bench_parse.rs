//! Request-parse microbenchmarks: the scalar incremental parser vs the
//! SWAR in-place fast parser, over identical wire bytes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fw_http::fast::{read_request_fast, Scratch};
use fw_http::parse::{read_request, Limits};
use fw_net::Connection;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// Endless connection replaying one serialized request, handing out at
/// most one request's bytes per `read` call (mirrors request/response
/// pacing, where a server never sees the next request early).
#[derive(Debug)]
struct LoopConn {
    msg: Vec<u8>,
    pos: usize,
}

impl LoopConn {
    fn new(msg: Vec<u8>) -> LoopConn {
        LoopConn { msg, pos: 0 }
    }
}

impl Connection for LoopConn {
    fn write_all(&mut self, _buf: &[u8]) -> io::Result<()> {
        Ok(())
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (self.msg.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.msg[self.pos..self.pos + n]);
        self.pos += n;
        if self.pos == self.msg.len() {
            self.pos = 0;
        }
        Ok(n)
    }
    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
    fn shutdown_write(&mut self) {}
    fn peer_addr(&self) -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }
}

fn wire_get() -> Vec<u8> {
    b"GET /v1/verdict/a1b2c3d4e5f6.lambda-url.us-east-1.on.aws HTTP/1.1\r\nHost: api.faaswild.sim\r\n\r\n".to_vec()
}

fn wire_headers() -> Vec<u8> {
    b"GET /v1/candidates?offset=20&limit=20 HTTP/1.1\r\nHost: api.faaswild.sim\r\nUser-Agent: fw-bench/1.0\r\nAccept: application/json\r\nAccept-Encoding: identity\r\nX-Request-Id: 0123456789abcdef\r\n\r\n"
        .to_vec()
}

fn wire_post() -> Vec<u8> {
    let body = vec![b'x'; 256];
    let mut w = format!(
        "POST /ingest HTTP/1.1\r\nHost: api.faaswild.sim\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    w.extend_from_slice(&body);
    w
}

fn wire_chunked() -> Vec<u8> {
    let mut w =
        b"POST /ingest HTTP/1.1\r\nHost: api.faaswild.sim\r\nTransfer-Encoding: chunked\r\n\r\n"
            .to_vec();
    for chunk in [&b"hello "[..], &b"chunked "[..], &b"world"[..]] {
        w.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        w.extend_from_slice(chunk);
        w.extend_from_slice(b"\r\n");
    }
    w.extend_from_slice(b"0\r\n\r\n");
    w
}

fn bench_parse(c: &mut Criterion) {
    let limits = Limits::default();
    let cases = [
        ("get_small", wire_get()),
        ("get_headers", wire_headers()),
        ("post_body", wire_post()),
        ("post_chunked", wire_chunked()),
    ];
    for (name, wire) in cases {
        let group_name = format!("http_parse/{name}");
        let mut g = c.benchmark_group(&group_name);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        let mut scalar_conn = LoopConn::new(wire.clone());
        g.bench_function("scalar", |b| {
            b.iter(|| {
                let req = read_request(&mut scalar_conn, &limits).unwrap();
                black_box(req.target.len())
            })
        });
        let mut fast_conn = LoopConn::new(wire.clone());
        let mut scratch = Scratch::new();
        g.bench_function("swar", |b| {
            b.iter(|| {
                let req = read_request_fast(&mut fast_conn, &mut scratch, &limits).unwrap();
                black_box(scratch.target(&req).len())
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
