//! Server-side serve loop.
//!
//! [`serve_connection`] reads requests off one connection and answers them
//! with a handler until the peer closes, an error occurs, or the exchange
//! negotiates `Connection: close`. The simulated cloud ingress uses this
//! (fronted by simulated TLS on :443); `examples/live_probe.rs` runs it on
//! a real `TcpListener`.
//!
//! Note: requests are parsed one at a time from the connection without
//! carrying read-ahead between them, so HTTP pipelining is not supported —
//! fine for the probe workload, which is strictly request/response.

use crate::parse::{read_request, write_response, HttpError, Limits};
use crate::types::{Request, Response};
use fw_net::Connection;

/// Per-request handler.
pub type RequestHandler = dyn Fn(&Request) -> Response + Send + Sync;

/// Statistics for one connection's serve loop.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    pub requests: u64,
    pub parse_errors: u64,
}

/// Serve requests on `conn` until close. Returns per-connection stats.
pub fn serve_connection(
    conn: &mut dyn Connection,
    limits: &Limits,
    handler: &RequestHandler,
) -> ServeStats {
    let mut stats = ServeStats::default();
    loop {
        let req = match read_request(conn, limits) {
            Ok(r) => r,
            Err(HttpError::Eof) => break,
            Err(HttpError::Parse(_)) | Err(HttpError::TooLarge(_)) => {
                stats.parse_errors += 1;
                let _ = write_response(conn, &Response::new(400));
                break;
            }
            Err(HttpError::Io(_)) => break,
        };
        stats.requests += 1;
        let close = req.headers.contains_token("connection", "close");
        let mut resp = handler(&req);
        if close {
            resp.headers.set("Connection", "close");
        }
        if write_response(conn, &resp).is_err() {
            break;
        }
        if close {
            break;
        }
    }
    conn.shutdown_write();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{read_response, write_request};
    use crate::types::{Method, Request};
    use fw_net::pipe_pair;

    fn pair() -> (fw_net::PipeConn, fw_net::PipeConn) {
        pipe_pair(
            "10.0.0.1:50000".parse().unwrap(),
            "203.0.113.1:80".parse().unwrap(),
        )
    }

    fn echo_path_handler(req: &Request) -> Response {
        Response::text(200, req.path())
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let (mut client, mut server) = pair();
        let srv = std::thread::spawn(move || {
            serve_connection(&mut server, &Limits::default(), &echo_path_handler)
        });
        for path in ["/one", "/two", "/three"] {
            let req = Request::get(path, "h.example");
            write_request(&mut client, &req).unwrap();
            let resp = read_response(&mut client, &Limits::default(), false).unwrap();
            assert_eq!(resp.body_text(), path);
        }
        drop(client);
        let stats = srv.join().unwrap();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.parse_errors, 0);
    }

    #[test]
    fn connection_close_ends_loop() {
        let (mut client, mut server) = pair();
        let srv = std::thread::spawn(move || {
            serve_connection(&mut server, &Limits::default(), &echo_path_handler)
        });
        let mut req = Request::get("/only", "h.example");
        req.headers.insert("Connection", "close");
        write_request(&mut client, &req).unwrap();
        let resp = read_response(&mut client, &Limits::default(), false).unwrap();
        assert_eq!(resp.body_text(), "/only");
        assert_eq!(resp.headers.get("connection"), Some("close"));
        let stats = srv.join().unwrap();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let (mut client, mut server) = pair();
        let srv = std::thread::spawn(move || {
            serve_connection(&mut server, &Limits::default(), &echo_path_handler)
        });
        client.write_all(b"GARBAGE REQUEST LINE\r\n\r\n").unwrap();
        let resp = read_response(&mut client, &Limits::default(), false).unwrap();
        assert_eq!(resp.status, 400);
        let stats = srv.join().unwrap();
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn post_body_reaches_handler() {
        let (mut client, mut server) = pair();
        let srv = std::thread::spawn(move || {
            serve_connection(&mut server, &Limits::default(), &|req: &Request| {
                Response::text(200, &format!("got {} bytes", req.body.len()))
            })
        });
        let mut req = Request::get("/upload", "h.example");
        req.method = Method::Post;
        req.body = vec![b'x'; 512];
        req.headers.insert("Connection", "close");
        write_request(&mut client, &req).unwrap();
        let resp = read_response(&mut client, &Limits::default(), false).unwrap();
        assert_eq!(resp.body_text(), "got 512 bytes");
        srv.join().unwrap();
    }
}
