//! HTTP/1.1 wire parsing and serialization.
//!
//! Reads operate directly on a [`Connection`] through a small buffered
//! reader. Limits are explicit ([`Limits`]) and every malformed-input path
//! returns a typed [`HttpError`] — the parser is exercised with random and
//! mutated inputs in the property tests.

use crate::types::{HeaderMap, Method, Request, Response};
use bytes::{BufMut, BytesMut};
use fw_net::Connection;
use std::io;

/// Parser limits (defensive caps).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request/status line plus headers.
    pub max_head: usize,
    /// Maximum body bytes (content-length, chunked total, or EOF-read).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// Protocol-level failure.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (includes timeouts as `ErrorKind::TimedOut`).
    Io(io::Error),
    /// Malformed message.
    Parse(&'static str),
    /// A size limit was exceeded.
    TooLarge(&'static str),
    /// Clean EOF before any bytes of a message (keep-alive close).
    Eof,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http io error: {e}"),
            HttpError::Parse(m) => write!(f, "http parse error: {m}"),
            HttpError::TooLarge(what) => write!(f, "http limit exceeded: {what}"),
            HttpError::Eof => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl HttpError {
    /// Was this a read timeout?
    pub fn is_timeout(&self) -> bool {
        matches!(self, HttpError::Io(e) if e.kind() == io::ErrorKind::TimedOut)
    }
}

/// Buffered reader over a connection.
pub struct BufConn<'c> {
    conn: &'c mut dyn Connection,
    buf: BytesMut,
}

impl<'c> BufConn<'c> {
    pub fn new(conn: &'c mut dyn Connection) -> BufConn<'c> {
        BufConn {
            conn,
            buf: BytesMut::with_capacity(8 * 1024),
        }
    }

    /// Fill the buffer with at least one more byte. `Ok(false)` on EOF.
    fn fill(&mut self) -> Result<bool, HttpError> {
        let mut chunk = [0u8; 8 * 1024];
        let n = self.conn.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.put_slice(&chunk[..n]);
        Ok(true)
    }

    /// Read bytes until the head terminator `\r\n\r\n` (inclusive).
    fn read_head(&mut self, max_head: usize) -> Result<Vec<u8>, HttpError> {
        loop {
            if let Some(pos) = find_subsequence(&self.buf, b"\r\n\r\n") {
                if pos + 4 > max_head {
                    return Err(HttpError::TooLarge("head"));
                }
                let head = self.buf.split_to(pos + 4);
                return Ok(head.to_vec());
            }
            if self.buf.len() > max_head {
                return Err(HttpError::TooLarge("head"));
            }
            if !self.fill()? {
                if self.buf.is_empty() {
                    return Err(HttpError::Eof);
                }
                return Err(HttpError::Parse("eof inside head"));
            }
        }
    }

    /// Read exactly `n` body bytes.
    fn read_body_exact(&mut self, n: usize, max_body: usize) -> Result<Vec<u8>, HttpError> {
        if n > max_body {
            return Err(HttpError::TooLarge("body"));
        }
        while self.buf.len() < n {
            if !self.fill()? {
                return Err(HttpError::Parse("eof inside body"));
            }
        }
        Ok(self.buf.split_to(n).to_vec())
    }

    /// Read until EOF (response without a length).
    fn read_body_to_eof(&mut self, max_body: usize) -> Result<Vec<u8>, HttpError> {
        loop {
            if self.buf.len() > max_body {
                return Err(HttpError::TooLarge("body"));
            }
            match self.fill() {
                Ok(true) => continue,
                Ok(false) => break,
                // A reset after data counts as truncation; surface what we
                // have if the error is a clean-ish close, otherwise error.
                Err(e) => return Err(e),
            }
        }
        Ok(self.buf.split_to(self.buf.len()).to_vec())
    }

    /// Decode a chunked body.
    fn read_body_chunked(&mut self, max_body: usize) -> Result<Vec<u8>, HttpError> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line(128)?;
            let size_str = line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_str, 16)
                .map_err(|_| HttpError::Parse("bad chunk size"))?;
            if out.len() + size > max_body {
                return Err(HttpError::TooLarge("chunked body"));
            }
            if size == 0 {
                // Trailer section: read lines until the empty line.
                loop {
                    let t = self.read_line(1024)?;
                    if t.is_empty() {
                        return Ok(out);
                    }
                }
            }
            let data = self.read_body_exact(size, max_body)?;
            out.extend_from_slice(&data);
            let crlf = self.read_line(2)?;
            if !crlf.is_empty() {
                return Err(HttpError::Parse("missing chunk crlf"));
            }
        }
    }

    /// Read one CRLF-terminated line (without the terminator).
    fn read_line(&mut self, max: usize) -> Result<String, HttpError> {
        loop {
            if let Some(pos) = find_subsequence(&self.buf, b"\r\n") {
                let line = self.buf.split_to(pos + 2);
                let s = std::str::from_utf8(&line[..pos])
                    .map_err(|_| HttpError::Parse("non-utf8 line"))?;
                return Ok(s.to_string());
            }
            if self.buf.len() > max + 2 {
                return Err(HttpError::TooLarge("line"));
            }
            if !self.fill()? {
                return Err(HttpError::Parse("eof inside line"));
            }
        }
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn parse_headers(lines: &mut std::str::Lines<'_>) -> Result<HeaderMap, HttpError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Parse("header missing colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Parse("bad header name"));
        }
        headers.insert(name.trim().to_string(), value.trim().to_string());
    }
    Ok(headers)
}

fn body_length(headers: &HeaderMap) -> Result<Option<usize>, HttpError> {
    match headers.get("content-length") {
        Some(v) => {
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| HttpError::Parse("bad content-length"))?;
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

fn is_chunked(headers: &HeaderMap) -> bool {
    headers.contains_token("transfer-encoding", "chunked")
}

/// Read one request from the connection (server side).
pub fn read_request(conn: &mut dyn Connection, limits: &Limits) -> Result<Request, HttpError> {
    let mut buf = BufConn::new(conn);
    let head = buf.read_head(limits.max_head)?;
    let head_str = std::str::from_utf8(&head).map_err(|_| HttpError::Parse("non-utf8 head"))?;
    let mut lines = head_str.lines();
    let request_line = lines.next().ok_or(HttpError::Parse("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(HttpError::Parse("bad method"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/') || *t == "*")
        .ok_or(HttpError::Parse("bad target"))?
        .to_string();
    let version = parts.next().ok_or(HttpError::Parse("missing version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Parse("unsupported version"));
    }
    let headers = parse_headers(&mut lines)?;
    let body = if is_chunked(&headers) {
        buf.read_body_chunked(limits.max_body)?
    } else {
        match body_length(&headers)? {
            Some(n) => buf.read_body_exact(n, limits.max_body)?,
            None => Vec::new(),
        }
    };
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Read one response from the connection (client side).
///
/// `head_request` suppresses body reading for HEAD responses.
pub fn read_response(
    conn: &mut dyn Connection,
    limits: &Limits,
    head_request: bool,
) -> Result<Response, HttpError> {
    let mut buf = BufConn::new(conn);
    let head = buf.read_head(limits.max_head)?;
    let head_str = std::str::from_utf8(&head).map_err(|_| HttpError::Parse("non-utf8 head"))?;
    let mut lines = head_str.lines();
    let status_line = lines.next().ok_or(HttpError::Parse("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Parse("bad status version"));
    }
    let status: u16 = parts
        .next()
        .ok_or(HttpError::Parse("missing status code"))?
        .parse()
        .map_err(|_| HttpError::Parse("bad status code"))?;
    if !(100..600).contains(&status) {
        return Err(HttpError::Parse("status code out of range"));
    }
    let reason = parts.next().unwrap_or("").to_string();
    let headers = parse_headers(&mut lines)?;
    let body = if head_request || status == 204 || status == 304 {
        Vec::new()
    } else if is_chunked(&headers) {
        buf.read_body_chunked(limits.max_body)?
    } else {
        match body_length(&headers)? {
            Some(n) => buf.read_body_exact(n, limits.max_body)?,
            None => buf.read_body_to_eof(limits.max_body)?,
        }
    };
    Ok(Response {
        status,
        reason,
        headers,
        body,
    })
}

/// Serialize a request (adds `Content-Length` when a body is present).
pub fn write_request(conn: &mut dyn Connection, req: &Request) -> Result<(), HttpError> {
    let mut out = Vec::with_capacity(256 + req.body.len());
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    let mut wrote_len = false;
    for (n, v) in req.headers.iter() {
        out.extend_from_slice(n.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
        if n.eq_ignore_ascii_case("content-length") {
            wrote_len = true;
        }
    }
    if !req.body.is_empty() && !wrote_len {
        out.extend_from_slice(format!("Content-Length: {}\r\n", req.body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    conn.write_all(&out)?;
    Ok(())
}

/// Serialize a response with `Content-Length` framing.
pub fn write_response(conn: &mut dyn Connection, resp: &Response) -> Result<(), HttpError> {
    let mut out = Vec::with_capacity(256 + resp.body.len());
    out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason).as_bytes());
    let mut wrote_len = false;
    for (n, v) in resp.headers.iter() {
        if n.eq_ignore_ascii_case("content-length") {
            wrote_len = true;
        }
        out.extend_from_slice(n.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if !wrote_len {
        out.extend_from_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    conn.write_all(&out)?;
    Ok(())
}

/// Serialize a response body with chunked transfer encoding (used by a few
/// simulated handlers to exercise the chunked decoder).
pub fn write_response_chunked(
    conn: &mut dyn Connection,
    resp: &Response,
    chunk_size: usize,
) -> Result<(), HttpError> {
    let mut out = Vec::with_capacity(256 + resp.body.len());
    out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason).as_bytes());
    for (n, v) in resp.headers.iter() {
        if n.eq_ignore_ascii_case("content-length") {
            continue;
        }
        out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
    for chunk in resp.body.chunks(chunk_size.max(1)) {
        out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.extend_from_slice(chunk);
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"0\r\n\r\n");
    conn.write_all(&out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fw_net::pipe_pair;

    fn pair() -> (fw_net::PipeConn, fw_net::PipeConn) {
        pipe_pair(
            "10.0.0.1:50000".parse().unwrap(),
            "203.0.113.1:80".parse().unwrap(),
        )
    }

    #[test]
    fn request_roundtrip() {
        let (mut a, mut b) = pair();
        let req = Request::get("/fn?probe=1", "fn.on.aws");
        write_request(&mut a, &req).unwrap();
        a.shutdown_write();
        let got = read_request(&mut b, &Limits::default()).unwrap();
        assert_eq!(got.method, Method::Get);
        assert_eq!(got.target, "/fn?probe=1");
        assert_eq!(got.host(), Some("fn.on.aws"));
    }

    #[test]
    fn request_with_body_roundtrip() {
        let (mut a, mut b) = pair();
        let mut req = Request::get("/", "h.example");
        req.method = Method::Post;
        req.body = b"payload".to_vec();
        write_request(&mut a, &req).unwrap();
        let got = read_request(&mut b, &Limits::default()).unwrap();
        assert_eq!(got.body, b"payload");
    }

    #[test]
    fn response_roundtrip_with_content_length() {
        let (mut a, mut b) = pair();
        let resp = Response::html(200, "<html>hi</html>");
        write_response(&mut a, &resp).unwrap();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.body_text(), "<html>hi</html>");
        assert_eq!(
            got.headers.get("content-type"),
            Some("text/html; charset=utf-8")
        );
    }

    #[test]
    fn response_body_to_eof() {
        let (mut a, mut b) = pair();
        a.write_all(b"HTTP/1.1 200 OK\r\nX-No-Length: 1\r\n\r\nstreamed until close")
            .unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        assert_eq!(got.body_text(), "streamed until close");
    }

    #[test]
    fn chunked_response_roundtrip() {
        let (mut a, mut b) = pair();
        let resp = Response::text(200, "a somewhat longer body split into chunks");
        write_response_chunked(&mut a, &resp, 7).unwrap();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        assert_eq!(got.body_text(), "a somewhat longer body split into chunks");
        assert!(got.headers.contains_token("transfer-encoding", "chunked"));
    }

    #[test]
    fn head_response_has_no_body() {
        let (mut a, mut b) = pair();
        a.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n")
            .unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), true).unwrap();
        assert!(got.body.is_empty());
    }

    #[test]
    fn oversized_head_rejected() {
        let (mut a, mut b) = pair();
        let limits = Limits {
            max_head: 128,
            max_body: 1024,
        };
        let writer = std::thread::spawn(move || {
            let _ = a.write_all(b"GET / HTTP/1.1\r\n");
            for _ in 0..64 {
                if a.write_all(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n")
                    .is_err()
                {
                    return;
                }
            }
            let _ = a.write_all(b"\r\n");
        });
        let err = read_request(&mut b, &limits).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge("head")), "{err:?}");
        drop(b);
        let _ = writer.join();
    }

    #[test]
    fn oversized_body_rejected() {
        let (mut a, mut b) = pair();
        let limits = Limits {
            max_head: 1024,
            max_body: 10,
        };
        a.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n0123456789X")
            .unwrap();
        let err = read_response(&mut b, &limits, false).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge("body")));
    }

    #[test]
    fn malformed_inputs_are_parse_errors() {
        let cases: &[&[u8]] = &[
            b"NOTAMETHOD / HTTP/1.1\r\n\r\n",
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET / HTTP/2.9\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        ];
        for case in cases {
            let (mut a, mut b) = pair();
            a.write_all(case).unwrap();
            a.shutdown_write();
            let err = read_request(&mut b, &Limits::default()).unwrap_err();
            assert!(matches!(err, HttpError::Parse(_)), "{case:?} → {err:?}");
        }
    }

    #[test]
    fn clean_eof_before_any_bytes_is_eof() {
        let (a, mut b) = pair();
        drop(a);
        let err = read_request(&mut b, &Limits::default()).unwrap_err();
        assert!(matches!(err, HttpError::Eof));
    }

    #[test]
    fn bad_status_codes_rejected() {
        for line in [
            "HTTP/1.1 99 Low\r\n\r\n",
            "HTTP/1.1 999 High\r\n\r\n",
            "HTTP/1.1 abc X\r\n\r\n",
        ] {
            let (mut a, mut b) = pair();
            a.write_all(line.as_bytes()).unwrap();
            a.shutdown_write();
            assert!(matches!(
                read_response(&mut b, &Limits::default(), false),
                Err(HttpError::Parse(_))
            ));
        }
    }

    #[test]
    fn chunked_with_extension_and_trailer() {
        let (mut a, mut b) = pair();
        a.write_all(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-Trailer: t\r\n\r\n",
        )
        .unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        assert_eq!(got.body_text(), "hello");
    }
}
