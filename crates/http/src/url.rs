//! Minimal URL parsing for `http`/`https` endpoints.
//!
//! The prober builds URLs from PDNS-observed domains
//! (`https://<fqdn>/`), and the abuse analysis extracts redirect targets
//! from response bodies; both only need scheme/host/port/path/query.

use std::fmt;

/// URL parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    MissingScheme,
    UnsupportedScheme(String),
    EmptyHost,
    BadPort(String),
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::MissingScheme => write!(f, "missing '://' scheme separator"),
            UrlError::UnsupportedScheme(s) => write!(f, "unsupported scheme {s:?}"),
            UrlError::EmptyHost => write!(f, "empty host"),
            UrlError::BadPort(p) => write!(f, "invalid port {p:?}"),
        }
    }
}

impl std::error::Error for UrlError {}

/// A parsed `http`/`https` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    pub https: bool,
    pub host: String,
    pub port: u16,
    /// Path, always starting with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
}

impl Url {
    /// Parse an absolute URL.
    pub fn parse(raw: &str) -> Result<Url, UrlError> {
        let raw = raw.trim();
        let (scheme, rest) = raw.split_once("://").ok_or(UrlError::MissingScheme)?;
        let https = match scheme.to_ascii_lowercase().as_str() {
            "http" => false,
            "https" => true,
            other => return Err(UrlError::UnsupportedScheme(other.to_string())),
        };
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                let port: u16 = p.parse().map_err(|_| UrlError::BadPort(p.to_string()))?;
                (h, port)
            }
            Some((_, p)) if p.bytes().any(|b| !b.is_ascii_digit()) => {
                return Err(UrlError::BadPort(p.to_string()))
            }
            _ => (authority, if https { 443 } else { 80 }),
        };
        if host.is_empty() {
            return Err(UrlError::EmptyHost);
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path_query.to_string(), None),
        };
        Ok(Url {
            https,
            host: host.to_ascii_lowercase(),
            port,
            path,
            query,
        })
    }

    /// Build the probe URL for a bare domain: `https://<host>/` or the
    /// HTTP fallback.
    pub fn for_domain(host: &str, https: bool) -> Url {
        Url {
            https,
            host: host.to_ascii_lowercase(),
            port: if https { 443 } else { 80 },
            path: "/".to_string(),
            query: None,
        }
    }

    /// Origin-form request target (`/path?query`).
    pub fn target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Is the port the scheme default?
    pub fn default_port(&self) -> bool {
        (self.https && self.port == 443) || (!self.https && self.port == 80)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}",
            if self.https { "https" } else { "http" },
            self.host
        )?;
        if !self.default_port() {
            write!(f, ":{}", self.port)?;
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://fn.lambda-url.us-east-1.on.aws:8443/a/b?x=1").unwrap();
        assert!(u.https);
        assert_eq!(u.host, "fn.lambda-url.us-east-1.on.aws");
        assert_eq!(u.port, 8443);
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.query.as_deref(), Some("x=1"));
        assert_eq!(u.target(), "/a/b?x=1");
    }

    #[test]
    fn default_ports() {
        assert_eq!(Url::parse("http://h.example").unwrap().port, 80);
        assert_eq!(Url::parse("https://h.example").unwrap().port, 443);
        assert_eq!(Url::parse("https://h.example").unwrap().path, "/");
    }

    #[test]
    fn roundtrip_display() {
        for s in [
            "https://a.example/",
            "http://a.example:8080/x?q=1",
            "https://b.example/path",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn errors() {
        assert_eq!(
            Url::parse("ftp://x/").unwrap_err(),
            UrlError::UnsupportedScheme("ftp".into())
        );
        assert_eq!(Url::parse("no-scheme"), Err(UrlError::MissingScheme));
        assert_eq!(Url::parse("https:///p"), Err(UrlError::EmptyHost));
        assert!(matches!(
            Url::parse("http://h:99999/"),
            Err(UrlError::BadPort(_))
        ));
        assert!(matches!(
            Url::parse("http://h:8a/"),
            Err(UrlError::BadPort(_))
        ));
    }

    #[test]
    fn host_lowercased() {
        assert_eq!(Url::parse("https://FN.On.AWS/").unwrap().host, "fn.on.aws");
    }

    #[test]
    fn for_domain_builder() {
        let u = Url::for_domain("x.scf.tencentcs.com", true);
        assert_eq!(u.to_string(), "https://x.scf.tencentcs.com/");
        let u = Url::for_domain("x.scf.tencentcs.com", false);
        assert_eq!(u.port, 80);
    }
}
