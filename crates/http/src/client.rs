//! Blocking HTTP client over pluggable transports.
//!
//! The [`Dialer`] trait abstracts how a socket to `(address, SNI)` is
//! opened: [`SimDialer`] goes through the simulated internet (with
//! simulated TLS on port 443), [`TcpDialer`] opens real TCP sockets. The
//! prober composes this client with DNS resolution and its ethics policy.

use crate::parse::{read_response, write_request, HttpError, Limits};
use crate::types::{Method, Request, Response};
use crate::url::Url;
use fw_net::tcp::TcpConn;
use fw_net::{Connection, SimNet, TlsClient, TlsError};
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// Client configuration. The 60-second default timeout follows the paper
/// (§3.3, "a uniform timeout of 60 seconds was applied").
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub read_timeout: Duration,
    pub limits: Limits,
    pub user_agent: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(60),
            limits: Limits::default(),
            user_agent: "faaswild-probe/0.1 (research; opt-out: see probe host)".to_string(),
        }
    }
}

/// Opens transport connections for the client.
pub trait Dialer: Send + Sync {
    /// Open a connection to `addr` for `host` (the server name being
    /// contacted — simulated transports key deterministic fault
    /// injection on it). When `tls` is set, negotiate TLS with `host` as
    /// the SNI. `timeout` bounds the handshake reads — on a lossy
    /// network a dropped hello must not hang the dial forever.
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError>;
}

/// Why a dial failed — the prober distinguishes these (Figure 6's
/// unreachable bucket vs. TLS fallback).
#[derive(Debug)]
pub enum DialError {
    /// TCP-level failure (refused, timeout...).
    Connect(io::Error),
    /// TLS handshake failed; HTTP fallback may succeed.
    Tls(TlsError),
}

impl std::fmt::Display for DialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DialError::Connect(e) => write!(f, "connect failed: {e}"),
            DialError::Tls(e) => write!(f, "tls failed: {e}"),
        }
    }
}

impl std::error::Error for DialError {}

/// Dialer over the simulated internet.
#[derive(Clone)]
pub struct SimDialer {
    net: SimNet,
}

impl SimDialer {
    pub fn new(net: SimNet) -> SimDialer {
        SimDialer { net }
    }
}

impl Dialer for SimDialer {
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError> {
        let mut conn = self
            .net
            .connect_for(addr, host)
            .map_err(DialError::Connect)?;
        conn.set_read_timeout(Some(timeout))
            .map_err(DialError::Connect)?;
        if tls {
            TlsClient::handshake(conn, host).map_err(DialError::Tls)
        } else {
            Ok(conn)
        }
    }
}

/// Dialer over real TCP (loopback examples). TLS-over-TCP uses the same
/// simulated TLS framing, so a `fw-http` server must be on the other end.
pub struct TcpDialer {
    pub connect_timeout: Duration,
}

impl Default for TcpDialer {
    fn default() -> Self {
        TcpDialer {
            connect_timeout: Duration::from_secs(10),
        }
    }
}

impl Dialer for TcpDialer {
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError> {
        let mut conn = TcpConn::connect(addr, self.connect_timeout).map_err(DialError::Connect)?;
        conn.set_read_timeout(Some(timeout))
            .map_err(DialError::Connect)?;
        let boxed: Box<dyn Connection> = Box::new(conn);
        if tls {
            TlsClient::handshake(boxed, host).map_err(DialError::Tls)
        } else {
            Ok(boxed)
        }
    }
}

/// Outcome of one HTTP exchange.
#[derive(Debug)]
pub enum FetchError {
    Dial(DialError),
    Http(HttpError),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Dial(e) => write!(f, "{e}"),
            FetchError::Http(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// The blocking HTTP client.
pub struct HttpClient<D: Dialer> {
    dialer: D,
    config: ClientConfig,
}

impl<D: Dialer> HttpClient<D> {
    pub fn new(dialer: D, config: ClientConfig) -> HttpClient<D> {
        HttpClient { dialer, config }
    }

    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Issue `req` to `addr` (resolved separately — the prober owns
    /// DNS). `host` names the server being contacted; `tls` switches TLS
    /// (with `host` as SNI) on.
    pub fn send(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        req: &Request,
    ) -> Result<Response, FetchError> {
        let mut conn = self
            .dialer
            .dial(addr, host, tls, self.config.read_timeout)
            .map_err(FetchError::Dial)?;
        conn.set_read_timeout(Some(self.config.read_timeout))
            .map_err(|e| FetchError::Http(HttpError::Io(e)))?;
        write_request(conn.as_mut(), req).map_err(FetchError::Http)?;
        let head = req.method == Method::Head;
        read_response(conn.as_mut(), &self.config.limits, head).map_err(FetchError::Http)
    }

    /// Parameter-free GET of a URL against a resolved address — the §3.3
    /// probe shape: `User-Agent` identifies the research probe.
    pub fn get_url(&self, addr: SocketAddr, url: &Url) -> Result<Response, FetchError> {
        let mut req = Request::get(&url.target(), &url.host);
        req.headers
            .insert("User-Agent", self.config.user_agent.clone());
        req.headers.insert("Accept", "*/*");
        req.headers.insert("Connection", "close");
        self.send(
            SocketAddr::new(addr.ip(), url.port),
            &url.host,
            url.https,
            &req,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::write_response;
    use crate::types::Response;
    use fw_net::{ClockSource as _, TlsServer};
    use std::sync::Arc;

    fn sim_with_server(tls_cert: Option<&'static str>) -> (SimNet, SocketAddr) {
        let net = SimNet::new(1);
        let addr: SocketAddr = "203.0.113.10:443".parse().unwrap();
        net.listen(
            addr,
            Arc::new(move |conn: Box<dyn Connection>| {
                let mut conn = match tls_cert {
                    Some(cert) => match TlsServer::accept(conn, cert) {
                        Ok((c, _sni)) => c,
                        Err(_) => return,
                    },
                    None => conn,
                };
                let req = match crate::parse::read_request(conn.as_mut(), &Limits::default()) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                let resp = Response::json(200, &format!(r#"{{"path":"{}"}}"#, req.path()));
                let _ = write_response(conn.as_mut(), &resp);
            }),
        );
        (net, addr)
    }

    #[test]
    fn get_over_simulated_tls() {
        let (net, addr) = sim_with_server(Some("*.on.aws"));
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("https://fn.lambda-url.us-east-1.on.aws/").unwrap();
        let resp = client.get_url(addr, &url).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), r#"{"path":"/"}"#);
    }

    #[test]
    fn plain_http_when_url_is_http() {
        let net = SimNet::new(2);
        let addr: SocketAddr = "203.0.113.11:80".parse().unwrap();
        net.listen_fn(addr, |mut conn| {
            let _ = crate::parse::read_request(conn.as_mut(), &Limits::default());
            let _ = write_response(conn.as_mut(), &Response::text(200, "plain"));
        });
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("http://fn.lambda-url.us-east-1.on.aws/").unwrap();
        let resp = client.get_url(addr, &url).unwrap();
        assert_eq!(resp.body_text(), "plain");
    }

    #[test]
    fn tls_cert_mismatch_is_a_dial_error() {
        let (net, addr) = sim_with_server(Some("*.fcapp.run"));
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("https://fn.lambda-url.us-east-1.on.aws/").unwrap();
        match client.get_url(addr, &url) {
            Err(FetchError::Dial(DialError::Tls(TlsError::CertMismatch { .. }))) => {}
            other => panic!("expected cert mismatch, got {other:?}"),
        }
    }

    #[test]
    fn connection_refused_is_a_dial_error() {
        let net = SimNet::new(3);
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("http://nobody.on.aws/").unwrap();
        match client.get_url("203.0.113.99:80".parse().unwrap(), &url) {
            Err(FetchError::Dial(DialError::Connect(e))) => {
                assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
            }
            other => panic!("expected refused, got {other:?}"),
        }
    }

    #[test]
    fn timeout_on_silent_server() {
        let net = SimNet::new(4);
        let addr: SocketAddr = "203.0.113.12:80".parse().unwrap();
        let handler_clock = net.clock().clone();
        net.listen_fn(addr, move |mut conn| {
            // Read the request but never answer: park on the (virtual)
            // clock well past the client's timeout before hanging up.
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            handler_clock.sleep(Duration::from_millis(300));
        });
        let client = HttpClient::new(
            SimDialer::new(net),
            ClientConfig {
                read_timeout: Duration::from_millis(50),
                ..ClientConfig::default()
            },
        );
        let url = Url::parse("http://silent.on.aws/").unwrap();
        match client.get_url(addr, &url) {
            Err(FetchError::Http(e)) => assert!(e.is_timeout(), "{e:?}"),
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
