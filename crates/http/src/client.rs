//! Blocking HTTP client over pluggable transports.
//!
//! The [`Dialer`] trait abstracts how a socket to `(address, SNI)` is
//! opened: [`SimDialer`] goes through the simulated internet (with
//! simulated TLS on port 443), [`TcpDialer`] opens real TCP sockets. The
//! prober composes this client with DNS resolution and its ethics policy.

use crate::parse::{read_response, write_request, HttpError, Limits};
use crate::types::{Method, Request, Response};
use crate::url::Url;
use fw_net::tcp::TcpConn;
use fw_net::{Connection, SimNet, TlsClient, TlsError};
use std::io;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

/// Client configuration. The 60-second default timeout follows the paper
/// (§3.3, "a uniform timeout of 60 seconds was applied").
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub read_timeout: Duration,
    pub limits: Limits,
    pub user_agent: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(60),
            limits: Limits::default(),
            user_agent: "faaswild-probe/0.1 (research; opt-out: see probe host)".to_string(),
        }
    }
}

/// Opens transport connections for the client.
pub trait Dialer: Send + Sync {
    /// Open a connection to `addr` for `host` (the server name being
    /// contacted — simulated transports key deterministic fault
    /// injection on it). When `tls` is set, negotiate TLS with `host` as
    /// the SNI. `timeout` bounds the handshake reads — on a lossy
    /// network a dropped hello must not hang the dial forever.
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError>;
}

/// Why a dial failed — the prober distinguishes these (Figure 6's
/// unreachable bucket vs. TLS fallback).
#[derive(Debug)]
pub enum DialError {
    /// TCP-level failure (refused, timeout...).
    Connect(io::Error),
    /// TLS handshake failed; HTTP fallback may succeed.
    Tls(TlsError),
}

impl std::fmt::Display for DialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DialError::Connect(e) => write!(f, "connect failed: {e}"),
            DialError::Tls(e) => write!(f, "tls failed: {e}"),
        }
    }
}

impl std::error::Error for DialError {}

/// Dialer over the simulated internet.
#[derive(Clone)]
pub struct SimDialer {
    net: SimNet,
}

impl SimDialer {
    pub fn new(net: SimNet) -> SimDialer {
        SimDialer { net }
    }
}

impl Dialer for SimDialer {
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError> {
        let mut conn = self
            .net
            .connect_for(addr, host)
            .map_err(DialError::Connect)?;
        conn.set_read_timeout(Some(timeout))
            .map_err(DialError::Connect)?;
        if tls {
            TlsClient::handshake(conn, host).map_err(DialError::Tls)
        } else {
            Ok(conn)
        }
    }
}

/// Dialer over real TCP (loopback examples). TLS-over-TCP uses the same
/// simulated TLS framing, so a `fw-http` server must be on the other end.
pub struct TcpDialer {
    pub connect_timeout: Duration,
}

impl Default for TcpDialer {
    fn default() -> Self {
        TcpDialer {
            connect_timeout: Duration::from_secs(10),
        }
    }
}

impl Dialer for TcpDialer {
    fn dial(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, DialError> {
        let mut conn = TcpConn::connect(addr, self.connect_timeout).map_err(DialError::Connect)?;
        conn.set_read_timeout(Some(timeout))
            .map_err(DialError::Connect)?;
        let boxed: Box<dyn Connection> = Box::new(conn);
        if tls {
            TlsClient::handshake(boxed, host).map_err(DialError::Tls)
        } else {
            Ok(boxed)
        }
    }
}

/// Outcome of one HTTP exchange.
#[derive(Debug)]
pub enum FetchError {
    Dial(DialError),
    Http(HttpError),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Dial(e) => write!(f, "{e}"),
            FetchError::Http(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Identity of a pooled connection: same target, same server name, same
/// transport security. A request may only reuse a connection whose key
/// matches exactly.
type ConnKey = (SocketAddr, String, bool);

/// The blocking HTTP client.
///
/// Holds one keep-alive slot: after a `send` whose request *and*
/// response both permit reuse (no `Connection: close`, self-delimiting
/// body framing), the connection is parked and the next `send` to the
/// same `(addr, host, tls)` replays over it instead of dialing. A
/// server-initiated close or any mid-exchange error on a reused
/// connection falls back to exactly one fresh dial.
pub struct HttpClient<D: Dialer> {
    dialer: D,
    config: ClientConfig,
    slot: Mutex<Option<(ConnKey, Box<dyn Connection>)>>,
}

/// Does the request opt out of keep-alive?
fn request_wants_close(req: &Request) -> bool {
    req.headers
        .get("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// May the connection be reused after this exchange? True only when the
/// response body was self-delimiting (Content-Length, chunked, or
/// bodiless status) — a read-to-EOF body consumes the connection — and
/// the server did not ask to close.
fn response_permits_reuse(head: bool, resp: &Response) -> bool {
    if resp
        .headers
        .get("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    {
        return false;
    }
    head || resp.status == 204
        || resp.status == 304
        || resp.headers.get("content-length").is_some()
        || resp
            .headers
            .get("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
}

impl<D: Dialer> HttpClient<D> {
    pub fn new(dialer: D, config: ClientConfig) -> HttpClient<D> {
        HttpClient {
            dialer,
            config,
            slot: Mutex::new(None),
        }
    }

    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Take the pooled connection if its key matches.
    fn take_pooled(&self, key: &ConnKey) -> Option<Box<dyn Connection>> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        match slot.take() {
            Some((k, conn)) if &k == key => Some(conn),
            other => {
                *slot = other; // wrong key: leave it parked
                None
            }
        }
    }

    /// Park `conn` for the next same-key request.
    fn park(&self, key: ConnKey, conn: Box<dyn Connection>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some((key, conn));
    }

    /// One request/response exchange over an open connection.
    fn exchange(&self, conn: &mut dyn Connection, req: &Request) -> Result<Response, HttpError> {
        write_request(conn, req)?;
        let head = req.method == Method::Head;
        read_response(conn, &self.config.limits, head)
    }

    /// Issue `req` to `addr` (resolved separately — the prober owns
    /// DNS). `host` names the server being contacted; `tls` switches TLS
    /// (with `host` as SNI) on.
    ///
    /// Transparent keep-alive: unless the request carries
    /// `Connection: close`, the client first tries the parked connection
    /// for this `(addr, host, tls)`; if the server has since closed it
    /// (or the exchange errors mid-stream) it falls back to one fresh
    /// dial, so callers observe at most the errors a fresh-dial-per-send
    /// client would.
    pub fn send(
        &self,
        addr: SocketAddr,
        host: &str,
        tls: bool,
        req: &Request,
    ) -> Result<Response, FetchError> {
        let key: ConnKey = (addr, host.to_string(), tls);
        let pooling = !request_wants_close(req);
        let head = req.method == Method::Head;

        if pooling {
            if let Some(mut conn) = self.take_pooled(&key) {
                match self.exchange(conn.as_mut(), req) {
                    Ok(resp) => {
                        fw_obs::counter_inc!("fw.http.conn.reused");
                        if response_permits_reuse(head, &resp) {
                            self.park(key, conn);
                        }
                        return Ok(resp);
                    }
                    Err(_) => {
                        // Server closed the parked connection (or the
                        // exchange died mid-stream): drop it and fall
                        // back to a fresh dial below.
                        fw_obs::counter_inc!("fw.http.conn.reuse_failed");
                    }
                }
            }
        }

        let mut conn = self
            .dialer
            .dial(addr, host, tls, self.config.read_timeout)
            .map_err(FetchError::Dial)?;
        fw_obs::counter_inc!("fw.http.conn.dialed");
        conn.set_read_timeout(Some(self.config.read_timeout))
            .map_err(|e| FetchError::Http(HttpError::Io(e)))?;
        let resp = self
            .exchange(conn.as_mut(), req)
            .map_err(FetchError::Http)?;
        if pooling && response_permits_reuse(head, &resp) {
            self.park(key, conn);
        }
        Ok(resp)
    }

    /// Parameter-free GET of a URL against a resolved address — the §3.3
    /// probe shape: `User-Agent` identifies the research probe.
    pub fn get_url(&self, addr: SocketAddr, url: &Url) -> Result<Response, FetchError> {
        let mut req = Request::get(&url.target(), &url.host);
        req.headers
            .insert("User-Agent", self.config.user_agent.clone());
        req.headers.insert("Accept", "*/*");
        req.headers.insert("Connection", "close");
        self.send(
            SocketAddr::new(addr.ip(), url.port),
            &url.host,
            url.https,
            &req,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::write_response;
    use crate::types::Response;
    use fw_net::{ClockSource as _, TlsServer};
    use std::sync::Arc;

    fn sim_with_server(tls_cert: Option<&'static str>) -> (SimNet, SocketAddr) {
        let net = SimNet::new(1);
        let addr: SocketAddr = "203.0.113.10:443".parse().unwrap();
        net.listen(
            addr,
            Arc::new(move |conn: Box<dyn Connection>| {
                let mut conn = match tls_cert {
                    Some(cert) => match TlsServer::accept(conn, cert) {
                        Ok((c, _sni)) => c,
                        Err(_) => return,
                    },
                    None => conn,
                };
                let req = match crate::parse::read_request(conn.as_mut(), &Limits::default()) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                let resp = Response::json(200, &format!(r#"{{"path":"{}"}}"#, req.path()));
                let _ = write_response(conn.as_mut(), &resp);
            }),
        );
        (net, addr)
    }

    #[test]
    fn get_over_simulated_tls() {
        let (net, addr) = sim_with_server(Some("*.on.aws"));
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("https://fn.lambda-url.us-east-1.on.aws/").unwrap();
        let resp = client.get_url(addr, &url).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), r#"{"path":"/"}"#);
    }

    #[test]
    fn plain_http_when_url_is_http() {
        let net = SimNet::new(2);
        let addr: SocketAddr = "203.0.113.11:80".parse().unwrap();
        net.listen_fn(addr, |mut conn| {
            let _ = crate::parse::read_request(conn.as_mut(), &Limits::default());
            let _ = write_response(conn.as_mut(), &Response::text(200, "plain"));
        });
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("http://fn.lambda-url.us-east-1.on.aws/").unwrap();
        let resp = client.get_url(addr, &url).unwrap();
        assert_eq!(resp.body_text(), "plain");
    }

    #[test]
    fn tls_cert_mismatch_is_a_dial_error() {
        let (net, addr) = sim_with_server(Some("*.fcapp.run"));
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("https://fn.lambda-url.us-east-1.on.aws/").unwrap();
        match client.get_url(addr, &url) {
            Err(FetchError::Dial(DialError::Tls(TlsError::CertMismatch { .. }))) => {}
            other => panic!("expected cert mismatch, got {other:?}"),
        }
    }

    #[test]
    fn connection_refused_is_a_dial_error() {
        let net = SimNet::new(3);
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let url = Url::parse("http://nobody.on.aws/").unwrap();
        match client.get_url("203.0.113.99:80".parse().unwrap(), &url) {
            Err(FetchError::Dial(DialError::Connect(e))) => {
                assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
            }
            other => panic!("expected refused, got {other:?}"),
        }
    }

    #[test]
    fn keep_alive_reuses_connection_across_sends() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = SimNet::new(5);
        let addr: SocketAddr = "203.0.113.20:80".parse().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts_srv = accepts.clone();
        net.listen(
            addr,
            Arc::new(move |mut conn: Box<dyn Connection>| {
                accepts_srv.fetch_add(1, Ordering::SeqCst);
                // Keep-alive server: answer requests until the peer goes
                // away. write_response always emits Content-Length, so
                // every response is reuse-safe.
                while let Ok(req) = crate::parse::read_request(conn.as_mut(), &Limits::default()) {
                    let resp = Response::text(200, &format!("path={}", req.path()));
                    if write_response(conn.as_mut(), &resp).is_err() {
                        break;
                    }
                }
            }),
        );
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        for i in 0..5 {
            let req = Request::get(&format!("/probe/{i}"), "relay.on.aws");
            let resp = client.send(addr, "relay.on.aws", false, &req).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body_text(), format!("path=/probe/{i}"));
        }
        assert_eq!(accepts.load(Ordering::SeqCst), 1, "one dial for 5 sends");
    }

    #[test]
    fn connection_close_request_bypasses_the_pool() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = SimNet::new(6);
        let addr: SocketAddr = "203.0.113.21:80".parse().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts_srv = accepts.clone();
        net.listen(
            addr,
            Arc::new(move |mut conn: Box<dyn Connection>| {
                accepts_srv.fetch_add(1, Ordering::SeqCst);
                while let Ok(_req) = crate::parse::read_request(conn.as_mut(), &Limits::default()) {
                    if write_response(conn.as_mut(), &Response::text(200, "ok")).is_err() {
                        break;
                    }
                }
            }),
        );
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        for _ in 0..3 {
            let mut req = Request::get("/", "fn.on.aws");
            req.headers.insert("Connection", "close");
            assert_eq!(
                client.send(addr, "fn.on.aws", false, &req).unwrap().status,
                200
            );
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            3,
            "close ⇒ fresh dial each time"
        );
    }

    #[test]
    fn server_initiated_close_falls_back_to_fresh_dial() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = SimNet::new(7);
        let addr: SocketAddr = "203.0.113.22:80".parse().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts_srv = accepts.clone();
        // One-shot server: answers a single request, then hangs up — the
        // parked connection is dead by the time the client reuses it.
        net.listen(
            addr,
            Arc::new(move |mut conn: Box<dyn Connection>| {
                accepts_srv.fetch_add(1, Ordering::SeqCst);
                if let Ok(_req) = crate::parse::read_request(conn.as_mut(), &Limits::default()) {
                    let _ = write_response(conn.as_mut(), &Response::text(200, "once"));
                }
            }),
        );
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        for _ in 0..3 {
            let req = Request::get("/", "oneshot.on.aws");
            let resp = client.send(addr, "oneshot.on.aws", false, &req).unwrap();
            assert_eq!(resp.body_text(), "once");
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            3,
            "every reuse attempt must fall back to a fresh dial"
        );
    }

    #[test]
    fn mid_stream_error_on_reused_connection_falls_back() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = SimNet::new(8);
        let addr: SocketAddr = "203.0.113.23:80".parse().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts_srv = accepts.clone();
        net.listen(
            addr,
            Arc::new(move |mut conn: Box<dyn Connection>| {
                let nth = accepts_srv.fetch_add(1, Ordering::SeqCst);
                if nth == 0 {
                    // First connection: answer one request cleanly, then
                    // die mid-response on the next — a truncated status
                    // line the client cannot parse.
                    if crate::parse::read_request(conn.as_mut(), &Limits::default()).is_ok() {
                        let _ = write_response(conn.as_mut(), &Response::text(200, "first"));
                    }
                    if crate::parse::read_request(conn.as_mut(), &Limits::default()).is_ok() {
                        let _ = conn.write_all(b"HTTP/1.1 2");
                    }
                } else {
                    // Replacement connection behaves.
                    while let Ok(_req) =
                        crate::parse::read_request(conn.as_mut(), &Limits::default())
                    {
                        if write_response(conn.as_mut(), &Response::text(200, "recovered")).is_err()
                        {
                            break;
                        }
                    }
                }
            }),
        );
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let req = Request::get("/", "flaky.on.aws");
        assert_eq!(
            client
                .send(addr, "flaky.on.aws", false, &req)
                .unwrap()
                .body_text(),
            "first"
        );
        let resp = client.send(addr, "flaky.on.aws", false, &req).unwrap();
        assert_eq!(
            resp.body_text(),
            "recovered",
            "mid-stream error ⇒ fresh dial"
        );
        assert_eq!(accepts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn pool_is_keyed_on_addr_host_and_tls() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let net = SimNet::new(9);
        let addr_a: SocketAddr = "203.0.113.24:80".parse().unwrap();
        let addr_b: SocketAddr = "203.0.113.25:80".parse().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        for addr in [addr_a, addr_b] {
            let accepts_srv = accepts.clone();
            net.listen(
                addr,
                Arc::new(move |mut conn: Box<dyn Connection>| {
                    accepts_srv.fetch_add(1, Ordering::SeqCst);
                    while let Ok(_req) =
                        crate::parse::read_request(conn.as_mut(), &Limits::default())
                    {
                        if write_response(conn.as_mut(), &Response::text(200, "ok")).is_err() {
                            break;
                        }
                    }
                }),
            );
        }
        let client = HttpClient::new(SimDialer::new(net), ClientConfig::default());
        let req = Request::get("/", "a.on.aws");
        client.send(addr_a, "a.on.aws", false, &req).unwrap();
        // Different address: parked conn must not be used.
        client.send(addr_b, "a.on.aws", false, &req).unwrap();
        // Back to A: A's conn was displaced by B's, so this dials again.
        client.send(addr_a, "a.on.aws", false, &req).unwrap();
        assert_eq!(accepts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn timeout_on_silent_server() {
        let net = SimNet::new(4);
        let addr: SocketAddr = "203.0.113.12:80".parse().unwrap();
        let handler_clock = net.clock().clone();
        net.listen_fn(addr, move |mut conn| {
            // Read the request but never answer: park on the (virtual)
            // clock well past the client's timeout before hanging up.
            let mut buf = [0u8; 1024];
            let _ = conn.read(&mut buf);
            handler_clock.sleep(Duration::from_millis(300));
        });
        let client = HttpClient::new(
            SimDialer::new(net),
            ClientConfig {
                read_timeout: Duration::from_millis(50),
                ..ClientConfig::default()
            },
        );
        let url = Url::parse("http://silent.on.aws/").unwrap();
        match client.get_url(addr, &url) {
            Err(FetchError::Http(e)) => assert!(e.is_timeout(), "{e:?}"),
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
