//! # fw-http
//!
//! A from-scratch blocking HTTP/1.1 implementation over the byte-stream
//! [`fw_net::Connection`] abstraction — the protocol layer both the active
//! prober (paper §3.3) and the simulated cloud ingress speak.
//!
//! * [`types`] — methods, status codes, case-insensitive header map,
//!   request/response representations.
//! * [`url`] — `http(s)://host[:port]/path?query` parsing.
//! * [`parse`] — incremental head parsing with size limits, body framing
//!   via `Content-Length`, `Transfer-Encoding: chunked`, or read-to-EOF.
//! * [`fast`] — the allocation-free in-place parser + renderer used by
//!   the fw-serve hot path, proptested equivalent to [`parse`].
//! * [`client`] — request serialization + response reading with deadlines,
//!   over any [`Dialer`] (simulated network or real TCP).
//! * [`server`] — a per-connection serve loop with keep-alive semantics,
//!   used by the cloud ingress nodes.
//!
//! The parser is defensive: header/body size caps, typed errors, no panics
//! on malformed input (property-tested in `tests/`).

pub mod client;
pub mod fast;
pub mod parse;
pub mod server;
pub mod types;
pub mod url;

pub use client::{ClientConfig, Dialer, HttpClient, SimDialer, TcpDialer};
pub use fast::{FastRequest, FastResponse, Scratch};
pub use parse::HttpError;
pub use types::{HeaderMap, Method, Request, Response};
pub use url::Url;
