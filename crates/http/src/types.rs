//! HTTP message types.

use std::fmt;

/// Request method. The prober only ever issues parameter-free GETs (ethics
/// policy, §3.3), but the server side handles the usual verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Head,
    Post,
    Put,
    Delete,
    Options,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
        }
    }

    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Canonical reason phrase for the status codes the simulator emits
/// (Figure 6 distribution and friends).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        307 => "Temporary Redirect",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        418 => "I'm a teapot",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Case-insensitive, order-preserving header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Append a header (duplicates allowed, like the wire format).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value for `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Remove all values for `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Replace any existing values with a single one.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.insert(name.to_string(), value);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Case-insensitive token scan of a comma-separated header (e.g.
    /// `Connection: keep-alive, close`).
    pub fn contains_token(&self, name: &str, token: &str) -> bool {
        self.get_all(name)
            .flat_map(|v| v.split(','))
            .any(|t| t.trim().eq_ignore_ascii_case(token))
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: Method,
    /// Origin-form target: path plus optional query (`/a/b?x=1`).
    pub target: String,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
}

impl Request {
    /// A parameter-free GET for `target` with a `Host` header — exactly the
    /// probe request shape from §3.3.
    pub fn get(target: &str, host: &str) -> Request {
        let mut headers = HeaderMap::new();
        headers.insert("Host", host);
        Request {
            method: Method::Get,
            target: target.to_string(),
            headers,
            body: Vec::new(),
        }
    }

    /// Host header, if present.
    pub fn host(&self) -> Option<&str> {
        self.headers.get("host")
    }

    /// Path without the query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("/")
    }

    /// Query string (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub reason: String,
    pub headers: HeaderMap,
    pub body: Vec<u8>,
}

impl Response {
    /// Build a response with the canonical reason phrase.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            reason: reason_phrase(status).to_string(),
            headers: HeaderMap::new(),
            body: Vec::new(),
        }
    }

    /// Response with a body and content type.
    pub fn with_body(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        let mut r = Response::new(status);
        r.headers.insert("Content-Type", content_type);
        r.body = body.into();
        r
    }

    /// Plain-text convenience.
    pub fn text(status: u16, body: &str) -> Response {
        Response::with_body(
            status,
            "text/plain; charset=utf-8",
            body.as_bytes().to_vec(),
        )
    }

    /// JSON convenience.
    pub fn json(status: u16, body: &str) -> Response {
        Response::with_body(status, "application/json", body.as_bytes().to_vec())
    }

    /// HTML convenience.
    pub fn html(status: u16, body: &str) -> Response {
        Response::with_body(status, "text/html; charset=utf-8", body.as_bytes().to_vec())
    }

    /// A 301/302 redirect to `location`.
    pub fn redirect(status: u16, location: &str) -> Response {
        debug_assert!(matches!(status, 301 | 302 | 307));
        let mut r = Response::new(status);
        r.headers.insert("Location", location);
        r
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }

    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_map_is_case_insensitive() {
        let mut h = HeaderMap::new();
        h.insert("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert_eq!(h.get("missing"), None);
    }

    #[test]
    fn header_set_replaces_duplicates() {
        let mut h = HeaderMap::new();
        h.insert("X-A", "1");
        h.insert("x-a", "2");
        assert_eq!(h.get_all("X-A").count(), 2);
        h.set("X-A", "3");
        assert_eq!(h.get_all("X-A").count(), 1);
        assert_eq!(h.get("x-a"), Some("3"));
    }

    #[test]
    fn connection_token_scan() {
        let mut h = HeaderMap::new();
        h.insert("Connection", "keep-alive, Close");
        assert!(h.contains_token("connection", "close"));
        assert!(h.contains_token("connection", "keep-alive"));
        assert!(!h.contains_token("connection", "upgrade"));
    }

    #[test]
    fn request_helpers() {
        let r = Request::get("/path?x=1&y=2", "fn.on.aws");
        assert_eq!(r.host(), Some("fn.on.aws"));
        assert_eq!(r.path(), "/path");
        assert_eq!(r.query(), Some("x=1&y=2"));
        let bare = Request::get("/", "h");
        assert_eq!(bare.query(), None);
    }

    #[test]
    fn response_constructors() {
        let r = Response::json(200, r#"{"ok":true}"#);
        assert!(r.is_success());
        assert_eq!(r.reason, "OK");
        assert_eq!(r.headers.get("content-type"), Some("application/json"));

        let rd = Response::redirect(302, "https://hidden.example");
        assert!(rd.is_redirect());
        assert_eq!(rd.headers.get("location"), Some("https://hidden.example"));

        let nf = Response::new(404);
        assert_eq!(nf.reason, "Not Found");
    }

    #[test]
    fn method_roundtrip() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Options,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("BREW"), None);
    }
}
