//! Allocation-free HTTP/1.1 parsing for the serving hot path.
//!
//! [`read_request_fast`] is byte-for-byte equivalent to
//! [`crate::parse::read_request`] (the property tests in
//! `tests/proptest_http.rs` pin the equivalence, including error
//! variants) but parses in place over a reusable per-connection
//! [`Scratch`] buffer:
//!
//! - the head terminator is found with the SWAR `memchr`-anchored
//!   scanner from `fw-types::memmem`, scanning each byte once even when
//!   the head arrives across several reads (the scalar parser re-scans
//!   its whole buffer per fill);
//! - the request line and headers are recorded as *spans* into the
//!   receive buffer instead of `String`s — the only per-request heap
//!   traffic is amortized growth of buffers that live as long as the
//!   connection;
//! - consumed messages are compacted lazily at the next read, so
//!   keep-alive connections reuse one buffer for their whole lifetime
//!   (and, unlike the scalar parser's per-message `BufConn`, read-ahead
//!   is carried between messages: pipelined requests are not dropped).
//!
//! The render helpers at the bottom produce output byte-identical to
//! [`crate::parse::write_response`] / [`crate::parse::write_request`]
//! for the message shapes the serving plane emits, which is what lets
//! fw-serve cache fully rendered wire images and keep its
//! response-stream digest unchanged.

use crate::parse::{HttpError, Limits};
use crate::types::{reason_phrase, Method};
use fw_net::Connection;
use fw_types::memmem::find_subsequence;

/// Per-connection reusable parse/render state. One `Scratch` serves one
/// connection at a time; a pooled serving worker owns one and reuses it
/// across every connection it accepts.
pub struct Scratch {
    /// Rolling receive buffer. `buf[..start]` is the previous message,
    /// consumed lazily at the next read; spans index into `buf`.
    buf: Vec<u8>,
    /// Bytes of the previous message to drop at the next read call.
    start: usize,
    /// Absolute offset up to which the head-terminator scan has
    /// advanced (so each byte is scanned once across fills).
    scanned: usize,
    /// Header spans of the current message: (name, value) ranges.
    hdrs: Vec<(u32, u32, u32, u32)>,
    /// Decoded chunked body (content-length bodies stay in `buf`).
    chunked_body: Vec<u8>,
    /// Staging area for transport reads.
    chunk: Box<[u8; 8 * 1024]>,
    /// Render buffer for outgoing messages.
    pub out: Vec<u8>,
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch::new()
    }
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch {
            buf: Vec::with_capacity(8 * 1024),
            start: 0,
            scanned: 0,
            hdrs: Vec::with_capacity(16),
            chunked_body: Vec::new(),
            chunk: Box::new([0u8; 8 * 1024]),
            out: Vec::with_capacity(8 * 1024),
        }
    }

    /// Forget any buffered or half-parsed state (fresh connection).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.scanned = 0;
        self.hdrs.clear();
        self.chunked_body.clear();
        self.out.clear();
    }

    /// Drop the previous message's bytes and restart span bookkeeping.
    fn begin_message(&mut self) {
        if self.start > 0 {
            if self.start == self.buf.len() {
                self.buf.clear();
            } else {
                // Pipelined leftover: slide it to the front.
                self.buf.drain(..self.start);
            }
            self.start = 0;
        }
        self.scanned = 0;
        self.hdrs.clear();
        self.chunked_body.clear();
    }

    /// Pull more bytes from the transport. `Ok(false)` on EOF.
    fn fill(&mut self, conn: &mut dyn Connection) -> Result<bool, HttpError> {
        let n = conn.read(&mut self.chunk[..])?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&self.chunk[..n]);
        Ok(true)
    }

    /// Resolve a span against the receive buffer.
    fn span_str(&self, lo: u32, hi: u32) -> &str {
        std::str::from_utf8(&self.buf[lo as usize..hi as usize]).unwrap_or("")
    }

    /// The request target (path + query) of `req`.
    pub fn target(&self, req: &FastRequest) -> &str {
        self.span_str(req.target.0, req.target.1)
    }

    /// The headers of `req`, trimmed, in wire order.
    pub fn headers<'s>(&'s self, req: &FastRequest) -> impl Iterator<Item = (&'s str, &'s str)> {
        self.hdrs[..req.hdr_count as usize]
            .iter()
            .map(|&(nl, nh, vl, vh)| (self.span_str(nl, nh), self.span_str(vl, vh)))
    }

    /// First value of the named header (case-insensitive), like
    /// `HeaderMap::get`.
    pub fn header<'s>(&'s self, req: &FastRequest, name: &str) -> Option<&'s str> {
        self.headers(req)
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
    }

    /// The request body of `req`.
    pub fn body(&self, req: &FastRequest) -> &[u8] {
        if req.body_chunked {
            &self.chunked_body
        } else {
            &self.buf[req.body.0 as usize..req.body.1 as usize]
        }
    }
}

/// A parsed request whose strings live in the [`Scratch`] it was read
/// into. Resolved with the `Scratch` accessors; holding only plain
/// offsets keeps the borrow checker out of the serve loop (the scratch
/// can render the response while the request is still alive).
#[derive(Debug, Clone, Copy)]
pub struct FastRequest {
    pub method: Method,
    target: (u32, u32),
    hdr_count: u32,
    body: (u32, u32),
    body_chunked: bool,
    /// `Connection: close` was requested.
    pub close: bool,
}

/// Span of subslice `s` inside the buffer starting at `base`.
fn span(base: *const u8, s: &str) -> (u32, u32) {
    let off = s.as_ptr() as usize - base as usize;
    (off as u32, (off + s.len()) as u32)
}

/// Read one request in place. Equivalent to
/// [`crate::parse::read_request`], including which [`HttpError`]
/// variant and message every malformed input produces.
pub fn read_request_fast(
    conn: &mut dyn Connection,
    scratch: &mut Scratch,
    limits: &Limits,
) -> Result<FastRequest, HttpError> {
    scratch.begin_message();

    // --- Head: incremental SWAR scan for the terminator. -------------
    let head_end = loop {
        // Re-scan a 3-byte overlap so a terminator split across fills
        // is still found, then remember how far we got.
        let from = scratch.scanned.saturating_sub(3);
        if let Some(rel) = find_subsequence(&scratch.buf[from..], b"\r\n\r\n") {
            let pos = from + rel;
            if pos + 4 > limits.max_head {
                return Err(HttpError::TooLarge("head"));
            }
            break pos + 4;
        }
        scratch.scanned = scratch.buf.len();
        if scratch.buf.len() > limits.max_head {
            return Err(HttpError::TooLarge("head"));
        }
        if !scratch.fill(conn)? {
            if scratch.buf.is_empty() {
                return Err(HttpError::Eof);
            }
            return Err(HttpError::Parse("eof inside head"));
        }
    };

    // --- Request line + headers: the scalar grammar over spans. ------
    // The whole head must be UTF-8, exactly like the scalar parser;
    // line splitting matches `str::lines` (splits on '\n', strips one
    // trailing '\r', so LF-only endings are tolerated inside the head).
    let base = scratch.buf.as_ptr();
    let head_str = std::str::from_utf8(&scratch.buf[..head_end])
        .map_err(|_| HttpError::Parse("non-utf8 head"))?;
    let mut lines = head_str.lines();
    let request_line = lines.next().ok_or(HttpError::Parse("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(HttpError::Parse("bad method"))?;
    let target = parts
        .next()
        .filter(|t| t.starts_with('/') || *t == "*")
        .ok_or(HttpError::Parse("bad target"))?;
    let target = span(base, target);
    let version = parts.next().ok_or(HttpError::Parse("missing version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Parse("unsupported version"));
    }

    let mut hdr_spans: Vec<(u32, u32, u32, u32)> = std::mem::take(&mut scratch.hdrs);
    hdr_spans.clear();
    let mut content_length: Option<&str> = None;
    let mut chunked = false;
    let mut close = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = match line.split_once(':') {
            Some(nv) => nv,
            None => {
                scratch.hdrs = hdr_spans;
                return Err(HttpError::Parse("header missing colon"));
            }
        };
        if name.is_empty() || name.contains(' ') {
            scratch.hdrs = hdr_spans;
            return Err(HttpError::Parse("bad header name"));
        }
        let (name, value) = (name.trim(), value.trim());
        let (nl, nh) = span(base, name);
        let (vl, vh) = span(base, value);
        hdr_spans.push((nl, nh, vl, vh));
        // First-match / any-token semantics of `HeaderMap::get` and
        // `HeaderMap::contains_token`, evaluated inline.
        if content_length.is_none() && name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value);
        }
        if !chunked && name.eq_ignore_ascii_case("transfer-encoding") {
            chunked = value
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("chunked"));
        }
        if !close && name.eq_ignore_ascii_case("connection") {
            close = value
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("close"));
        }
    }
    let hdr_count = hdr_spans.len() as u32;
    // `content_length` borrowed from `buf`; turn it into an owned parse
    // result before any fills can grow (and move) the buffer.
    let content_length = match content_length {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) if chunked => None, // scalar never reaches body_length when chunked
            Err(_) => {
                scratch.hdrs = hdr_spans;
                return Err(HttpError::Parse("bad content-length"));
            }
        },
        None => None,
    };
    scratch.hdrs = hdr_spans;

    // --- Body. --------------------------------------------------------
    let mut req = FastRequest {
        method,
        target,
        hdr_count,
        body: (head_end as u32, head_end as u32),
        body_chunked: false,
        close,
    };
    if chunked {
        let consumed = read_chunked_into(conn, scratch, head_end, limits)?;
        req.body_chunked = true;
        scratch.start = consumed;
    } else if let Some(n) = content_length {
        if n > limits.max_body {
            return Err(HttpError::TooLarge("body"));
        }
        while scratch.buf.len() < head_end + n {
            if !scratch.fill(conn)? {
                return Err(HttpError::Parse("eof inside body"));
            }
        }
        req.body = (head_end as u32, (head_end + n) as u32);
        scratch.start = head_end + n;
    } else {
        scratch.start = head_end;
    }
    fw_obs::counter_inc!("fw.http.parse.req");
    Ok(req)
}

/// Decode a chunked body starting at `cursor` into
/// `scratch.chunked_body`, mirroring `BufConn::read_body_chunked`
/// (including its line-length limits and error messages). Returns the
/// buffer offset one past the terminating CRLF.
fn read_chunked_into(
    conn: &mut dyn Connection,
    scratch: &mut Scratch,
    mut cursor: usize,
    limits: &Limits,
) -> Result<usize, HttpError> {
    loop {
        let line = read_line_at(conn, scratch, &mut cursor, 128)?;
        let size_str = {
            let s = scratch.span_str(line.0, line.1);
            s.split(';').next().unwrap_or("").trim()
        };
        let size =
            usize::from_str_radix(size_str, 16).map_err(|_| HttpError::Parse("bad chunk size"))?;
        if scratch.chunked_body.len() + size > limits.max_body {
            return Err(HttpError::TooLarge("chunked body"));
        }
        if size == 0 {
            // Trailer section: lines until the empty line.
            loop {
                let t = read_line_at(conn, scratch, &mut cursor, 1024)?;
                if t.0 == t.1 {
                    return Ok(cursor);
                }
            }
        }
        while scratch.buf.len() < cursor + size {
            if !scratch.fill(conn)? {
                return Err(HttpError::Parse("eof inside body"));
            }
        }
        // Split borrow: data lives in `buf`, accumulates in `chunked_body`.
        let Scratch {
            buf, chunked_body, ..
        } = scratch;
        chunked_body.extend_from_slice(&buf[cursor..cursor + size]);
        cursor += size;
        let crlf = read_line_at(conn, scratch, &mut cursor, 2)?;
        if crlf.0 != crlf.1 {
            return Err(HttpError::Parse("missing chunk crlf"));
        }
    }
}

/// Read one CRLF-terminated line starting at `*cursor`; returns the
/// line's span (terminator excluded) and advances the cursor past it.
fn read_line_at(
    conn: &mut dyn Connection,
    scratch: &mut Scratch,
    cursor: &mut usize,
    max: usize,
) -> Result<(u32, u32), HttpError> {
    let mut scanned = *cursor;
    loop {
        let from = scanned.saturating_sub(1).max(*cursor);
        if let Some(rel) = find_subsequence(&scratch.buf[from..], b"\r\n") {
            let pos = from + rel;
            std::str::from_utf8(&scratch.buf[*cursor..pos])
                .map_err(|_| HttpError::Parse("non-utf8 line"))?;
            let lo = *cursor as u32;
            *cursor = pos + 2;
            return Ok((lo, pos as u32));
        }
        scanned = scratch.buf.len();
        if scratch.buf.len() - *cursor > max + 2 {
            return Err(HttpError::TooLarge("line"));
        }
        if !scratch.fill(conn)? {
            return Err(HttpError::Parse("eof inside line"));
        }
    }
}

/// A response's framing essentials, parsed by [`read_response_fast`].
/// The body is consumed from the transport (keep-alive framing stays
/// intact) but not retained — the load harness digests response bytes
/// at the transport layer and only needs the status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastResponse {
    pub status: u16,
    pub body_len: usize,
}

/// Client-side fast path: parse one response head, consume the body.
/// Framing and validation mirror [`crate::parse::read_response`].
pub fn read_response_fast(
    conn: &mut dyn Connection,
    scratch: &mut Scratch,
    limits: &Limits,
) -> Result<FastResponse, HttpError> {
    scratch.begin_message();

    let head_end = loop {
        let from = scratch.scanned.saturating_sub(3);
        if let Some(rel) = find_subsequence(&scratch.buf[from..], b"\r\n\r\n") {
            let pos = from + rel;
            if pos + 4 > limits.max_head {
                return Err(HttpError::TooLarge("head"));
            }
            break pos + 4;
        }
        scratch.scanned = scratch.buf.len();
        if scratch.buf.len() > limits.max_head {
            return Err(HttpError::TooLarge("head"));
        }
        if !scratch.fill(conn)? {
            if scratch.buf.is_empty() {
                return Err(HttpError::Eof);
            }
            return Err(HttpError::Parse("eof inside head"));
        }
    };

    let head_str = std::str::from_utf8(&scratch.buf[..head_end])
        .map_err(|_| HttpError::Parse("non-utf8 head"))?;
    let mut lines = head_str.lines();
    let status_line = lines.next().ok_or(HttpError::Parse("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Parse("bad status version"));
    }
    let status: u16 = parts
        .next()
        .ok_or(HttpError::Parse("missing status code"))?
        .parse()
        .map_err(|_| HttpError::Parse("bad status code"))?;
    if !(100..600).contains(&status) {
        return Err(HttpError::Parse("status code out of range"));
    }
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Parse("header missing colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Parse("bad header name"));
        }
        let (name, value) = (name.trim(), value.trim());
        if !chunked && name.eq_ignore_ascii_case("transfer-encoding") {
            chunked = value
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("chunked"));
        }
        if content_length.is_none() && name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Parse("bad content-length"))?,
            );
        }
    }

    let body_len;
    if status == 204 || status == 304 {
        body_len = 0;
        scratch.start = head_end;
    } else if chunked {
        scratch.chunked_body.clear();
        let consumed = read_chunked_into(conn, scratch, head_end, limits)?;
        body_len = scratch.chunked_body.len();
        scratch.start = consumed;
    } else if let Some(n) = content_length {
        if n > limits.max_body {
            return Err(HttpError::TooLarge("body"));
        }
        while scratch.buf.len() < head_end + n {
            if !scratch.fill(conn)? {
                return Err(HttpError::Parse("eof inside body"));
            }
        }
        body_len = n;
        scratch.start = head_end + n;
    } else {
        // No framing: the body runs to EOF.
        loop {
            if scratch.buf.len() - head_end > limits.max_body {
                return Err(HttpError::TooLarge("body"));
            }
            if !scratch.fill(conn)? {
                break;
            }
        }
        body_len = scratch.buf.len() - head_end;
        scratch.start = scratch.buf.len();
    }
    fw_obs::counter_inc!("fw.http.parse.resp");
    Ok(FastResponse { status, body_len })
}

/// Append a decimal integer without going through `format!`.
fn push_uint(out: &mut Vec<u8>, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Render a full response wire image: byte-identical to
/// [`crate::parse::write_response`] of a `Response::with_body(status,
/// content_type, body)`. Returns the head length (the body is
/// `out[head_len..]`).
pub fn render_response(out: &mut Vec<u8>, status: u16, content_type: &str, body: &[u8]) -> usize {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_uint(out, u64::from(status));
    out.push(b' ');
    out.extend_from_slice(reason_phrase(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    push_uint(out, body.len() as u64);
    out.extend_from_slice(b"\r\n\r\n");
    let head_len = out.len();
    out.extend_from_slice(body);
    head_len
}

/// Render a bare-status response (no content-type header), matching
/// [`crate::parse::write_response`] of `Response::new(status)`.
pub fn render_status(out: &mut Vec<u8>, status: u16) {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_uint(out, u64::from(status));
    out.push(b' ');
    out.extend_from_slice(reason_phrase(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: 0\r\n\r\n");
}

/// Render a body-less GET, matching [`crate::parse::write_request`] of
/// `Request::get(target, host)`.
pub fn render_get(out: &mut Vec<u8>, target: &str, host: &str) {
    out.extend_from_slice(b"GET ");
    out.extend_from_slice(target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    out.extend_from_slice(host.as_bytes());
    out.extend_from_slice(b"\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{write_request, write_response};
    use crate::types::{Request, Response};
    use fw_net::pipe_pair;

    fn pair() -> (fw_net::PipeConn, fw_net::PipeConn) {
        pipe_pair(
            "10.0.0.1:50000".parse().unwrap(),
            "203.0.113.1:80".parse().unwrap(),
        )
    }

    #[test]
    fn fast_request_roundtrip_and_keepalive_reuse() {
        let (mut a, mut b) = pair();
        let mut scratch = Scratch::new();
        for i in 0..3 {
            let target = format!("/v1/verdict/fn-{i}.fcapp.run");
            write_request(&mut a, &Request::get(&target, "api.faaswild.sim")).unwrap();
            let req = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
            assert_eq!(req.method, Method::Get);
            assert_eq!(scratch.target(&req), target);
            assert_eq!(scratch.header(&req, "host"), Some("api.faaswild.sim"));
            assert!(!req.close);
            assert!(scratch.body(&req).is_empty());
        }
    }

    #[test]
    fn fast_request_reads_content_length_body() {
        let (mut a, mut b) = pair();
        a.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 7\r\n\r\npayload")
            .unwrap();
        let mut scratch = Scratch::new();
        let req = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(scratch.body(&req), b"payload");
    }

    #[test]
    fn fast_request_decodes_chunked_body() {
        let (mut a, mut b) = pair();
        a.write_all(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-T: t\r\n\r\n",
        )
        .unwrap();
        let mut scratch = Scratch::new();
        let req = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(scratch.body(&req), b"hello");
    }

    #[test]
    fn fast_request_connection_close_token() {
        let (mut a, mut b) = pair();
        a.write_all(b"GET / HTTP/1.1\r\nConnection: keep-alive, Close\r\n\r\n")
            .unwrap();
        let mut scratch = Scratch::new();
        let req = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert!(req.close);
    }

    #[test]
    fn pipelined_requests_are_not_dropped() {
        let (mut a, mut b) = pair();
        a.write_all(b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n")
            .unwrap();
        a.shutdown_write();
        let mut scratch = Scratch::new();
        let r1 = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(scratch.target(&r1), "/one");
        let r2 = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(scratch.target(&r2), "/two");
        assert!(matches!(
            read_request_fast(&mut b, &mut scratch, &Limits::default()),
            Err(HttpError::Eof)
        ));
    }

    #[test]
    fn render_response_matches_scalar_writer() {
        let (mut a, mut b) = pair();
        write_response(&mut a, &Response::json(200, "{\"ok\":true}")).unwrap();
        a.shutdown_write();
        let mut expect = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match b.read(&mut buf).unwrap() {
                0 => break,
                n => expect.extend_from_slice(&buf[..n]),
            }
        }
        let mut out = Vec::new();
        let head_len = render_response(&mut out, 200, "application/json", b"{\"ok\":true}");
        assert_eq!(out, expect);
        assert_eq!(&out[head_len..], b"{\"ok\":true}");
    }

    #[test]
    fn render_status_matches_scalar_writer() {
        let (mut a, mut b) = pair();
        write_response(&mut a, &Response::new(400)).unwrap();
        a.shutdown_write();
        let mut expect = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match b.read(&mut buf).unwrap() {
                0 => break,
                n => expect.extend_from_slice(&buf[..n]),
            }
        }
        let mut out = Vec::new();
        render_status(&mut out, 400);
        assert_eq!(out, expect);
    }

    #[test]
    fn render_get_matches_scalar_writer() {
        let (mut a, mut b) = pair();
        write_request(&mut a, &Request::get("/v1/status", "api.faaswild.sim")).unwrap();
        a.shutdown_write();
        let mut expect = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match b.read(&mut buf).unwrap() {
                0 => break,
                n => expect.extend_from_slice(&buf[..n]),
            }
        }
        let mut out = Vec::new();
        render_get(&mut out, "/v1/status", "api.faaswild.sim");
        assert_eq!(out, expect);
    }

    #[test]
    fn fast_response_parses_status_and_consumes_body() {
        let (mut a, mut b) = pair();
        write_response(&mut a, &Response::json(404, "{\"error\":\"nope\"}")).unwrap();
        write_response(&mut a, &Response::json(200, "{}")).unwrap();
        let mut scratch = Scratch::new();
        let r1 = read_response_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(r1.status, 404);
        assert_eq!(r1.body_len, 16);
        let r2 = read_response_fast(&mut b, &mut scratch, &Limits::default()).unwrap();
        assert_eq!(r2.status, 200);
    }

    #[test]
    fn fast_request_malformed_inputs_match_scalar_errors() {
        let cases: &[(&[u8], &str)] = &[
            (b"NOTAMETHOD / HTTP/1.1\r\n\r\n", "bad method"),
            (b"GET noslash HTTP/1.1\r\n\r\n", "bad target"),
            (b"GET / HTTP/2.9\r\n\r\n", "unsupported version"),
            (
                b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n",
                "bad header name",
            ),
            (
                b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
                "header missing colon",
            ),
        ];
        for (case, msg) in cases {
            let (mut a, mut b) = pair();
            a.write_all(case).unwrap();
            a.shutdown_write();
            let mut scratch = Scratch::new();
            let err = read_request_fast(&mut b, &mut scratch, &Limits::default()).unwrap_err();
            match err {
                HttpError::Parse(m) => assert_eq!(m, *msg, "{case:?}"),
                other => panic!("{case:?} → {other:?}"),
            }
        }
    }
}
