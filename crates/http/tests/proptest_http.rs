//! Property tests: HTTP serialization/parse round-trips and parser
//! robustness under arbitrary and mutated inputs.

use fw_http::fast::{read_request_fast, Scratch};
use fw_http::parse::{
    read_request, read_response, write_request, write_response, write_response_chunked, HttpError,
    Limits,
};
use fw_http::types::{HeaderMap, Method, Request, Response};
use fw_net::{pipe_pair, Connection, PipeConn};
use proptest::prelude::*;

fn pair() -> (PipeConn, PipeConn) {
    pipe_pair(
        "10.0.0.1:50000".parse().unwrap(),
        "203.0.113.1:80".parse().unwrap(),
    )
}

fn arb_header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

fn arb_header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

fn arb_headers() -> impl Strategy<Value = HeaderMap> {
    proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8).prop_map(|hs| {
        let mut m = HeaderMap::new();
        for (n, v) in hs {
            // Reserved framing headers are set by the serializer.
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            m.insert(n, v);
        }
        m
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![
            Just(Method::Get),
            Just(Method::Post),
            Just(Method::Head),
            Just(Method::Put)
        ],
        "/[a-z0-9/._-]{0,30}",
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(method, target, headers, body)| Request {
            method,
            target,
            headers,
            body,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        prop_oneof![
            Just(200u16),
            Just(301u16),
            Just(401u16),
            Just(404u16),
            Just(502u16)
        ],
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(status, headers, body)| {
            let mut r = Response::new(status);
            r.headers = headers;
            r.body = body;
            r
        })
}

/// Collapse an [`HttpError`] to a comparable key (variant + message;
/// io errors by kind).
fn err_key(e: &HttpError) -> String {
    match e {
        HttpError::Io(io) => format!("io:{:?}", io.kind()),
        HttpError::Parse(m) => format!("parse:{m}"),
        HttpError::TooLarge(w) => format!("toolarge:{w}"),
        HttpError::Eof => "eof".to_string(),
    }
}

/// Feed `bytes` to both the scalar and the fast request parser (each on
/// its own closed pipe) and assert they agree: same error variant and
/// message, or the same method/target/headers/body.
fn assert_request_parsers_agree(bytes: &[u8], limits: &Limits) -> Result<(), TestCaseError> {
    let (mut a, mut b) = pair();
    let _ = a.write_all(bytes);
    a.shutdown_write();
    let scalar = read_request(&mut b, limits);

    let (mut c, mut d) = pair();
    let _ = c.write_all(bytes);
    c.shutdown_write();
    let mut scratch = Scratch::new();
    let fast = read_request_fast(&mut d, &mut scratch, limits);

    match (&scalar, &fast) {
        (Ok(s), Ok(f)) => {
            prop_assert_eq!(s.method, f.method);
            prop_assert_eq!(s.target.as_str(), scratch.target(f));
            let scalar_headers: Vec<(&str, &str)> = s.headers.iter().collect();
            let fast_headers: Vec<(&str, &str)> = scratch.headers(f).collect();
            prop_assert_eq!(scalar_headers, fast_headers);
            prop_assert_eq!(s.body.as_slice(), scratch.body(f));
        }
        (Err(se), Err(fe)) => prop_assert_eq!(err_key(se), err_key(fe)),
        _ => prop_assert!(
            false,
            "scalar {:?} vs fast {:?}",
            scalar.is_ok(),
            fast.is_ok()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrips(req in arb_request()) {
        let (mut a, mut b) = pair();
        write_request(&mut a, &req).unwrap();
        a.shutdown_write();
        let got = read_request(&mut b, &Limits::default()).unwrap();
        prop_assert_eq!(got.method, req.method);
        prop_assert_eq!(&got.target, &req.target);
        prop_assert_eq!(&got.body, &req.body);
        for (n, v) in req.headers.iter() {
            prop_assert_eq!(got.headers.get(n), Some(v));
        }
    }

    #[test]
    fn response_roundtrips(resp in arb_response()) {
        let (mut a, mut b) = pair();
        write_response(&mut a, &resp).unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        prop_assert_eq!(got.status, resp.status);
        prop_assert_eq!(&got.body, &resp.body);
    }

    #[test]
    fn chunked_response_roundtrips(resp in arb_response(), chunk in 1usize..64) {
        let (mut a, mut b) = pair();
        write_response_chunked(&mut a, &resp, chunk).unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        prop_assert_eq!(&got.body, &resp.body);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let (mut a, mut b) = pair();
        let _ = a.write_all(&bytes);
        a.shutdown_write();
        let _ = read_request(&mut b, &Limits::default());
        let (mut c, mut d) = pair();
        let _ = c.write_all(&bytes);
        c.shutdown_write();
        let _ = read_response(&mut d, &Limits::default(), false);
    }

    #[test]
    fn fast_parser_matches_scalar_on_valid_requests(req in arb_request()) {
        // Serialize through the scalar writer, then compare both parsers
        // on the exact wire bytes.
        let (mut a, mut probe) = pair();
        write_request(&mut a, &req).unwrap();
        a.shutdown_write();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match probe.read(&mut buf).unwrap() {
                0 => break,
                n => raw.extend_from_slice(&buf[..n]),
            }
        }
        assert_request_parsers_agree(&raw, &Limits::default())?;
    }

    #[test]
    fn fast_parser_matches_scalar_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..768),
    ) {
        assert_request_parsers_agree(&bytes, &Limits::default())?;
    }

    #[test]
    fn fast_parser_matches_scalar_on_truncated_and_mutated_requests(
        req in arb_request(),
        cut in any::<proptest::sample::Index>(),
        idx in any::<proptest::sample::Index>(),
        to in any::<u8>(),
        mutate in any::<bool>(),
    ) {
        let (mut a, mut probe) = pair();
        write_request(&mut a, &req).unwrap();
        a.shutdown_write();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match probe.read(&mut buf).unwrap() {
                0 => break,
                n => raw.extend_from_slice(&buf[..n]),
            }
        }
        if mutate && !raw.is_empty() {
            let i = idx.index(raw.len());
            raw[i] = to;
        } else {
            raw.truncate(cut.index(raw.len() + 1));
        }
        assert_request_parsers_agree(&raw, &Limits::default())?;
    }

    #[test]
    fn fast_parser_matches_scalar_under_tight_limits(
        bytes in proptest::collection::vec(
            prop_oneof![
                Just(b'\r'), Just(b'\n'), Just(b':'), Just(b' '), Just(b'/'),
                any::<u8>(),
            ],
            0..256,
        ),
    ) {
        // Small caps force the TooLarge paths on pathological heads.
        let limits = Limits { max_head: 48, max_body: 16 };
        assert_request_parsers_agree(&bytes, &limits)?;
    }

    #[test]
    fn fast_parser_matches_scalar_on_chunked_requests(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..32,
        cut in any::<proptest::sample::Index>(),
        truncate in any::<bool>(),
    ) {
        // Hand-build a chunked request (the writer only emits chunked
        // responses) and optionally truncate it mid-stream.
        let mut raw = Vec::new();
        raw.extend_from_slice(b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        for c in body.chunks(chunk) {
            raw.extend_from_slice(format!("{:x}\r\n", c.len()).as_bytes());
            raw.extend_from_slice(c);
            raw.extend_from_slice(b"\r\n");
        }
        raw.extend_from_slice(b"0\r\n\r\n");
        if truncate {
            raw.truncate(cut.index(raw.len() + 1));
        }
        assert_request_parsers_agree(&raw, &Limits::default())?;
    }

    #[test]
    fn parser_never_panics_on_mutated_valid(
        resp in arb_response(),
        idx in any::<proptest::sample::Index>(),
        to in any::<u8>(),
    ) {
        // Serialize a valid response, flip one byte, and ensure the parser
        // copes (either parses something or errors — never panics/hangs).
        let (mut a, mut probe) = pair();
        write_response(&mut a, &resp).unwrap();
        a.shutdown_write();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match probe.read(&mut buf).unwrap() {
                0 => break,
                n => raw.extend_from_slice(&buf[..n]),
            }
        }
        let i = idx.index(raw.len());
        raw[i] = to;
        let (mut c, mut d) = pair();
        c.write_all(&raw).unwrap();
        c.shutdown_write();
        let _ = read_response(&mut d, &Limits::default(), false);
    }
}
