//! Property tests: HTTP serialization/parse round-trips and parser
//! robustness under arbitrary and mutated inputs.

use fw_http::parse::{
    read_request, read_response, write_request, write_response, write_response_chunked, Limits,
};
use fw_http::types::{HeaderMap, Method, Request, Response};
use fw_net::{pipe_pair, Connection, PipeConn};
use proptest::prelude::*;

fn pair() -> (PipeConn, PipeConn) {
    pipe_pair(
        "10.0.0.1:50000".parse().unwrap(),
        "203.0.113.1:80".parse().unwrap(),
    )
}

fn arb_header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,20}"
}

fn arb_header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

fn arb_headers() -> impl Strategy<Value = HeaderMap> {
    proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8).prop_map(|hs| {
        let mut m = HeaderMap::new();
        for (n, v) in hs {
            // Reserved framing headers are set by the serializer.
            if n.eq_ignore_ascii_case("content-length")
                || n.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            m.insert(n, v);
        }
        m
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![
            Just(Method::Get),
            Just(Method::Post),
            Just(Method::Head),
            Just(Method::Put)
        ],
        "/[a-z0-9/._-]{0,30}",
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(method, target, headers, body)| Request {
            method,
            target,
            headers,
            body,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        prop_oneof![
            Just(200u16),
            Just(301u16),
            Just(401u16),
            Just(404u16),
            Just(502u16)
        ],
        arb_headers(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(status, headers, body)| {
            let mut r = Response::new(status);
            r.headers = headers;
            r.body = body;
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrips(req in arb_request()) {
        let (mut a, mut b) = pair();
        write_request(&mut a, &req).unwrap();
        a.shutdown_write();
        let got = read_request(&mut b, &Limits::default()).unwrap();
        prop_assert_eq!(got.method, req.method);
        prop_assert_eq!(&got.target, &req.target);
        prop_assert_eq!(&got.body, &req.body);
        for (n, v) in req.headers.iter() {
            prop_assert_eq!(got.headers.get(n), Some(v));
        }
    }

    #[test]
    fn response_roundtrips(resp in arb_response()) {
        let (mut a, mut b) = pair();
        write_response(&mut a, &resp).unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        prop_assert_eq!(got.status, resp.status);
        prop_assert_eq!(&got.body, &resp.body);
    }

    #[test]
    fn chunked_response_roundtrips(resp in arb_response(), chunk in 1usize..64) {
        let (mut a, mut b) = pair();
        write_response_chunked(&mut a, &resp, chunk).unwrap();
        a.shutdown_write();
        let got = read_response(&mut b, &Limits::default(), false).unwrap();
        prop_assert_eq!(&got.body, &resp.body);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..768)) {
        let (mut a, mut b) = pair();
        let _ = a.write_all(&bytes);
        a.shutdown_write();
        let _ = read_request(&mut b, &Limits::default());
        let (mut c, mut d) = pair();
        let _ = c.write_all(&bytes);
        c.shutdown_write();
        let _ = read_response(&mut d, &Limits::default(), false);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid(
        resp in arb_response(),
        idx in any::<proptest::sample::Index>(),
        to in any::<u8>(),
    ) {
        // Serialize a valid response, flip one byte, and ensure the parser
        // copes (either parses something or errors — never panics/hangs).
        let (mut a, mut probe) = pair();
        write_response(&mut a, &resp).unwrap();
        a.shutdown_write();
        let mut raw = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match probe.read(&mut buf).unwrap() {
                0 => break,
                n => raw.extend_from_slice(&buf[..n]),
            }
        }
        let i = idx.index(raw.len());
        raw[i] = to;
        let (mut c, mut d) = pair();
        c.write_all(&raw).unwrap();
        c.shutdown_write();
        let _ = read_response(&mut d, &Limits::default(), false);
    }
}
