//! Property tests for the analysis layer.

use fw_analysis::cluster::{cluster_corpus, ClusterParams};
use fw_analysis::content::ContentType;
use fw_analysis::stats::{cdf_at, entropy_bits, log10_histogram, top_k_share};
use fw_analysis::text::{cosine_distance, TfIdf};
use proptest::prelude::*;

fn arb_docs() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-d ]{0,40}", 1..25)
}

proptest! {
    /// Cosine distance is a bounded, symmetric semi-metric with zero
    /// self-distance (for non-empty vectors).
    #[test]
    fn cosine_distance_properties(docs in arb_docs()) {
        let (_, vecs) = TfIdf::fit_transform(&docs);
        for a in &vecs {
            for b in &vecs {
                let d_ab = cosine_distance(a, b);
                let d_ba = cosine_distance(b, a);
                prop_assert!((0.0..=1.0).contains(&d_ab));
                prop_assert!((d_ab - d_ba).abs() < 1e-6);
            }
            if !a.is_empty() {
                prop_assert!(cosine_distance(a, a) < 1e-5);
            }
        }
    }

    /// Cluster count is monotonically non-increasing in the threshold:
    /// a looser cut can only merge more.
    #[test]
    fn cluster_count_monotone_in_threshold(docs in arb_docs()) {
        let count_at = |t: f32| {
            cluster_corpus(
                &docs,
                &ClusterParams { distance_threshold: t, exact_limit: 4_000 },
            )
            .cluster_count
        };
        let c005 = count_at(0.05);
        let c01 = count_at(0.1);
        let c05 = count_at(0.5);
        let c10 = count_at(1.0);
        prop_assert!(c005 >= c01, "{c005} < {c01}");
        prop_assert!(c01 >= c05, "{c01} < {c05}");
        prop_assert!(c05 >= c10, "{c05} < {c10}");
    }

    /// Every document gets an assignment, cluster ids are dense, and
    /// identical documents always share a cluster.
    #[test]
    fn clustering_assignment_invariants(docs in arb_docs()) {
        let c = cluster_corpus(&docs, &ClusterParams::default());
        prop_assert_eq!(c.assignment.len(), docs.len());
        let max_id = c.assignment.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(c.cluster_count, (max_id as usize) + 1);
        for (i, a) in docs.iter().enumerate() {
            for (j, b) in docs.iter().enumerate() {
                if a == b {
                    prop_assert_eq!(c.assignment[i], c.assignment[j]);
                }
            }
        }
    }

    /// Content classification is total and stable.
    #[test]
    fn content_classify_total(body in "\\PC{0,200}") {
        let a = ContentType::classify(&body, None);
        let b = ContentType::classify(&body, None);
        prop_assert_eq!(a, b);
    }

    /// Stats helpers: CDF is monotone, top-k share bounded and monotone
    /// in k, entropy non-negative, histogram conserves mass.
    #[test]
    fn stats_invariants(values in proptest::collection::vec(1u64..100_000, 1..50)) {
        let floats: Vec<f64> = values.iter().map(|v| *v as f64).collect();
        // CDF monotone in x.
        let lo = cdf_at(&floats, 10.0);
        let hi = cdf_at(&floats, 10_000.0);
        prop_assert!(lo <= hi);
        // top-k share.
        let t1 = top_k_share(&values, 1);
        let t10 = top_k_share(&values, 10);
        let tall = top_k_share(&values, values.len());
        prop_assert!(t1 <= t10 + 1e-12);
        prop_assert!((tall - 1.0).abs() < 1e-12);
        // entropy.
        prop_assert!(entropy_bits(&values) >= 0.0);
        prop_assert!(entropy_bits(&values) <= (values.len() as f64).log2() + 1e-9);
        // histogram mass.
        let bins = log10_histogram(&floats, 4);
        let mass: u64 = bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(mass, values.len() as u64);
    }
}
