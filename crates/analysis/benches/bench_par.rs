//! Criterion benches for the data-parallel analysis stages: the
//! sensitive-data scan fanned out through `par_map_indexed` (serial vs.
//! 8 workers over the same corpus) and the TF-IDF vectorization split.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fw_abuse::sensitive::SensitiveScanner;
use fw_analysis::par_map_indexed;
use fw_analysis::text::TfIdf;

/// A synthetic response corpus with sensitive tokens sprinkled in, so
/// the scanner does real matching + anonymization work per document.
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "{{\"service\":\"svc{i}\",\"password\": \"hunter{i}\",\
                 \"ip\":\"10.0.{}.{}\",\"note\":\"online slot betting casino \
                 jackpot deposit bonus spin welcome round {i}\"}}",
                i % 256,
                (i * 7) % 256
            )
        })
        .collect()
}

fn bench_sensitive_scan(c: &mut Criterion) {
    let docs = corpus(200);
    let scanner = SensitiveScanner::new("faas-wild1");

    let mut group = c.benchmark_group("sensitive_scan_par");
    group.throughput(Throughput::Elements(docs.len() as u64));
    for workers in [1usize, 8] {
        group.bench_function(&format!("workers_{workers}"), |b| {
            b.iter(|| {
                let out = par_map_indexed(&docs, workers, |_, d| scanner.scan_and_anonymize(d));
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_tfidf_vectorize(c: &mut Criterion) {
    let docs = corpus(200);

    let mut group = c.benchmark_group("tfidf_vectorize_par");
    group.throughput(Throughput::Elements(docs.len() as u64));
    for workers in [1usize, 8] {
        group.bench_function(&format!("workers_{workers}"), |b| {
            b.iter(|| {
                let (_, vecs) = TfIdf::fit_transform_par(&docs, workers);
                black_box(vecs.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensitive_scan, bench_tfidf_vectorize);
criterion_main!(benches);
