//! # fw-analysis
//!
//! Text analytics and statistics for the measurement pipeline:
//!
//! * [`content`] — response content typing (JSON / HTML / Plaintext /
//!   Others), the first grouping step of §3.4.
//! * [`text`] — tokenizer, TF-IDF vectorizer and cosine distance over
//!   sparse vectors.
//! * [`cluster`] — agglomerative clustering with average linkage
//!   (nearest-neighbour-chain algorithm, exact) plus a greedy
//!   leader-clustering fallback for very large corpora; the paper cuts the
//!   dendrogram at 90% similarity (cosine distance < 0.1).
//! * [`stats`] — histograms (log10 bins for Figure 5), CDFs, top-k
//!   concentration shares and entropy (Table 2 and its ablation).

pub mod cluster;
pub mod content;
pub mod par;
pub mod stats;
pub mod text;

pub use cluster::{cluster_corpus, cluster_corpus_par, ClusterParams, Clustering};
pub use content::ContentType;
pub use par::{par_map_indexed, par_map_named};
pub use stats::{cdf_points, log10_histogram, top_k_share};
pub use text::{cosine_distance, SparseVec, TfIdf};
