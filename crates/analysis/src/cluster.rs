//! Agglomerative clustering with average linkage (§3.4).
//!
//! The paper clusters TF-IDF vectors with agglomerative (bottom-up)
//! clustering, average linkage, cutting at 90% similarity (cosine
//! distance < 0.1). This module implements:
//!
//! 1. **Exact dedup** — identical documents collapse first (most of a
//!    campaign's pages are byte-identical), shrinking the quadratic stage;
//! 2. **NN-chain agglomerative clustering** — the O(n²) nearest-neighbour
//!    chain algorithm, exact for reducible linkages like average linkage,
//!    with Lance-Williams distance updates;
//! 3. **Leader clustering fallback** — greedy O(n·k) assignment for
//!    corpora beyond `exact_limit`, trading exactness for scale (an
//!    explicit, logged cap — no silent truncation).
//!
//! Average linkage produces no inversions, so cutting the dendrogram at a
//! threshold equals union-finding all merges with distance ≤ threshold.

use crate::text::{cosine_distance, SparseVec};
use std::collections::HashMap;

/// Clustering parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Cut threshold: cosine distance below which documents merge
    /// (paper: 0.1 = 90% similarity).
    pub distance_threshold: f32,
    /// Maximum number of unique documents for the exact O(n²) algorithm;
    /// larger corpora use leader clustering.
    pub exact_limit: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            distance_threshold: 0.1,
            exact_limit: 4_000,
        }
    }
}

/// Result: cluster id per input document, plus cluster count.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// `assignment[i]` is the cluster id of input document `i`.
    pub assignment: Vec<u32>,
    pub cluster_count: usize,
    /// Whether the exact algorithm ran (false = leader fallback).
    pub exact: bool,
}

impl Clustering {
    /// Members per cluster id.
    pub fn members(&self) -> HashMap<u32, Vec<usize>> {
        let mut map: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, c) in self.assignment.iter().enumerate() {
            map.entry(*c).or_default().push(i);
        }
        map
    }

    /// A representative (first member) per cluster, for manual review —
    /// the paper's experts reviewed cluster exemplars.
    pub fn exemplars(&self) -> Vec<(u32, usize)> {
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for (i, c) in self.assignment.iter().enumerate() {
            seen.entry(*c).or_insert(i);
        }
        let mut out: Vec<(u32, usize)> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Cluster a corpus of raw documents (dedup → vectorize → cluster),
/// vectorizing serially.
pub fn cluster_corpus<S: AsRef<str> + Sync>(docs: &[S], params: &ClusterParams) -> Clustering {
    cluster_corpus_par(docs, params, 1)
}

/// [`cluster_corpus`] with TF-IDF vectorization fanned out over
/// `workers` threads (`crate::par::par_map_indexed`) — output is
/// identical at any worker count; dedup and the clustering proper stay
/// serial.
pub fn cluster_corpus_par<S: AsRef<str> + Sync>(
    docs: &[S],
    params: &ClusterParams,
    workers: usize,
) -> Clustering {
    if docs.is_empty() {
        return Clustering {
            assignment: Vec::new(),
            cluster_count: 0,
            exact: true,
        };
    }
    // 1. Exact dedup.
    let mut unique: Vec<&str> = Vec::new();
    let mut doc_to_unique: Vec<usize> = Vec::with_capacity(docs.len());
    let mut index: HashMap<&str, usize> = HashMap::new();
    for d in docs {
        let s = d.as_ref();
        let u = *index.entry(s).or_insert_with(|| {
            unique.push(s);
            unique.len() - 1
        });
        doc_to_unique.push(u);
    }

    // 2. Vectorize unique docs.
    let (_, vecs) = crate::text::TfIdf::fit_transform_par(&unique, workers);

    // 3. Cluster unique docs.
    let (unique_assignment, exact) = if unique.len() <= params.exact_limit {
        (nn_chain_average(&vecs, params.distance_threshold), true)
    } else {
        (leader_cluster(&vecs, params.distance_threshold), false)
    };

    // 4. Expand to the full corpus.
    let assignment: Vec<u32> = doc_to_unique
        .iter()
        .map(|u| unique_assignment[*u])
        .collect();
    let cluster_count = {
        let mut ids: Vec<u32> = assignment.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    Clustering {
        assignment,
        cluster_count,
        exact,
    }
}

/// Exact average-linkage clustering via the nearest-neighbour chain
/// algorithm; returns a cluster id per vector after cutting at
/// `threshold`.
fn nn_chain_average(vecs: &[SparseVec], threshold: f32) -> Vec<u32> {
    let n = vecs.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }

    // Full distance matrix (f32, n²). `exact_limit` bounds memory.
    let mut dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cosine_distance(&vecs[i], &vecs[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<u32> = vec![1; n];
    let mut merges: Vec<(usize, usize, f32)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = active
                .iter()
                .position(|a| *a)
                .expect("remaining > 1 implies an active cluster");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("chain non-empty");
            // Nearest active neighbour of `top` (excluding itself).
            let mut nn = usize::MAX;
            let mut best = f32::INFINITY;
            for j in 0..n {
                if j != top && active[j] {
                    let d = dist[top * n + j];
                    // Tie-break deterministically by index.
                    if d < best || (d == best && j < nn) {
                        best = d;
                        nn = j;
                    }
                }
            }
            debug_assert_ne!(nn, usize::MAX);
            if chain.len() >= 2 && nn == chain[chain.len() - 2] {
                // Reciprocal nearest neighbours: merge.
                let a = chain.pop().expect("top");
                let b = chain.pop().expect("second");
                merges.push((a, b, best));
                // Lance-Williams average-linkage update into slot `a`.
                let (sa, sb) = (size[a] as f32, size[b] as f32);
                for k in 0..n {
                    if active[k] && k != a && k != b {
                        let d = (sa * dist[a * n + k] + sb * dist[b * n + k]) / (sa + sb);
                        dist[a * n + k] = d;
                        dist[k * n + a] = d;
                    }
                }
                size[a] += size[b];
                active[b] = false;
                remaining -= 1;
                break;
            }
            chain.push(nn);
        }
    }

    // Cut: union-find over merges with distance ≤ threshold.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (a, b, d) in merges {
        if d <= threshold {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    normalize_roots(&mut parent)
}

/// Greedy leader clustering: assign each vector to the first leader
/// within the threshold, else it becomes a new leader.
fn leader_cluster(vecs: &[SparseVec], threshold: f32) -> Vec<u32> {
    let mut leaders: Vec<usize> = Vec::new();
    let mut assignment: Vec<u32> = Vec::with_capacity(vecs.len());
    for (i, v) in vecs.iter().enumerate() {
        let mut assigned = None;
        for (c, leader) in leaders.iter().enumerate() {
            if cosine_distance(v, &vecs[*leader]) <= threshold {
                assigned = Some(c as u32);
                break;
            }
        }
        match assigned {
            Some(c) => assignment.push(c),
            None => {
                leaders.push(i);
                assignment.push((leaders.len() - 1) as u32);
            }
        }
    }
    assignment
}

/// Convert a union-find parent table to dense cluster ids `0..k`.
fn normalize_roots(parent: &mut [usize]) -> Vec<u32> {
    let n = parent.len();
    let mut ids: HashMap<usize, u32> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let next = ids.len() as u32;
        out.push(*ids.entry(root).or_insert(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(t: f32) -> ClusterParams {
        ClusterParams {
            distance_threshold: t,
            ..ClusterParams::default()
        }
    }

    #[test]
    fn empty_corpus() {
        let c = cluster_corpus::<&str>(&[], &ClusterParams::default());
        assert_eq!(c.cluster_count, 0);
    }

    #[test]
    fn identical_docs_form_one_cluster() {
        let docs = ["same page body", "same page body", "same page body"];
        let c = cluster_corpus(&docs, &ClusterParams::default());
        assert_eq!(c.cluster_count, 1);
        assert!(c.assignment.iter().all(|&a| a == c.assignment[0]));
    }

    #[test]
    fn near_duplicates_merge_distinct_topics_stay_apart() {
        let docs = [
            "welcome bonus slot betting casino jackpot deposit now spin mega",
            "welcome bonus slot betting casino jackpot deposit today spin mega",
            "openai api key for sale contact wechat cheap bulk discount resale",
            "openai api key for sale contact telegram cheap bulk discount resale",
            "completely unrelated log output from a boring microservice here",
        ];
        let c = cluster_corpus(&docs, &params(0.35));
        assert!(c.exact);
        assert_eq!(c.assignment[0], c.assignment[1], "gambling pair merges");
        assert_eq!(c.assignment[2], c.assignment[3], "openai pair merges");
        assert_ne!(c.assignment[0], c.assignment[2]);
        assert_ne!(c.assignment[4], c.assignment[0]);
        assert_ne!(c.assignment[4], c.assignment[2]);
        assert_eq!(c.cluster_count, 3);
    }

    #[test]
    fn threshold_zero_keeps_everything_apart() {
        let docs = ["aa bb cc", "aa bb dd", "aa bb ee"];
        let c = cluster_corpus(&docs, &params(0.0));
        assert_eq!(c.cluster_count, 3);
    }

    #[test]
    fn threshold_one_merges_everything_sharing_terms() {
        let docs = ["shared word one", "shared word two", "shared word three"];
        let c = cluster_corpus(&docs, &params(1.0));
        assert_eq!(c.cluster_count, 1);
    }

    #[test]
    fn leader_fallback_used_above_limit() {
        let docs: Vec<String> = (0..30)
            .map(|i| format!("doc number {i} unique terms {i}"))
            .collect();
        let c = cluster_corpus(
            &docs,
            &ClusterParams {
                distance_threshold: 0.1,
                exact_limit: 10,
            },
        );
        assert!(!c.exact);
        assert_eq!(c.assignment.len(), 30);
    }

    #[test]
    fn exemplars_one_per_cluster() {
        let docs = ["aaa bbb", "aaa bbb", "ccc ddd"];
        let c = cluster_corpus(&docs, &ClusterParams::default());
        let ex = c.exemplars();
        assert_eq!(ex.len(), c.cluster_count);
    }

    #[test]
    fn exact_and_leader_agree_on_well_separated_data() {
        // Three tight groups with huge inter-group distance: any sane
        // algorithm finds exactly 3 clusters.
        let mut docs = Vec::new();
        for g in 0..3 {
            for v in 0..5 {
                docs.push(format!(
                    "group{g} group{g} topic{g} filler{v} group{g} marker{g} anchor{g} body{g}"
                ));
            }
        }
        let exact = cluster_corpus(&docs, &params(0.45));
        let leader = cluster_corpus(
            &docs,
            &ClusterParams {
                distance_threshold: 0.45,
                exact_limit: 1,
            },
        );
        assert_eq!(exact.cluster_count, 3);
        assert_eq!(leader.cluster_count, 3);
    }

    #[test]
    fn campaign_pages_cluster_like_the_paper() {
        // Simulated gambling campaign: same template, different brand.
        let template = "online slot betting casino welcome bonus 100 deposit \
                        spin mega jackpot slot gacor baccarat roulette sicbo fish hunter \
                        campaign 0042 all rights reserved google site verification ";
        let pages: Vec<String> = (0..8)
            .map(|i| format!("brand{i} {template}{template}{template}"))
            .collect();
        let mut docs = pages;
        docs.push("totally different corporate landing page about cloud storage".into());
        let c = cluster_corpus(&docs, &ClusterParams::default());
        // All campaign pages in one cluster, outlier alone.
        assert_eq!(c.cluster_count, 2);
        assert_eq!(c.assignment[0], c.assignment[7]);
        assert_ne!(c.assignment[0], c.assignment[8]);
    }
}
