//! Tokenization, TF-IDF vectorization and cosine distance (§3.4).
//!
//! "Each response was converted into a TF-IDF vector, and pairwise
//! similarity was measured using cosine distance." Vectors are sparse,
//! L2-normalized, so cosine similarity is a sparse dot product and cosine
//! distance is `1 − dot`.

use std::collections::HashMap;

/// A sparse, L2-normalized vector: `(term index, weight)` sorted by index.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Build from unsorted (index, weight) pairs; normalizes to unit L2.
    fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let norm: f32 = pairs.iter().map(|(_, w)| w * w).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut pairs {
                *w /= norm;
            }
        }
        SparseVec { entries: pairs }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sparse dot product.
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, wa) = self.entries[i];
            let (ib, wb) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }
}

/// Cosine distance between two normalized sparse vectors, clamped to
/// `[0, 1]`.
pub fn cosine_distance(a: &SparseVec, b: &SparseVec) -> f32 {
    (1.0 - a.dot(b)).clamp(0.0, 1.0)
}

/// Tokenize: lowercase alphanumeric runs of length ≥ 2 (ASCII), plus CJK
/// characters as single tokens (the corpus contains Chinese promo text).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else {
            if cur.len() >= 2 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
            // CJK ideographs carry meaning individually.
            if ('\u{4e00}'..='\u{9fff}').contains(&c) {
                out.push(c.to_string());
            }
        }
    }
    if cur.len() >= 2 {
        out.push(cur);
    }
    out
}

/// A fitted TF-IDF model.
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocab: HashMap<String, u32>,
    idf: Vec<f32>,
    doc_count: usize,
}

impl TfIdf {
    /// Fit on a corpus. Terms appearing in every document still get a
    /// small positive idf (smoothed).
    pub fn fit<S: AsRef<str>>(corpus: &[S]) -> TfIdf {
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut df: Vec<u32> = Vec::new();
        for doc in corpus {
            let mut seen: Vec<u32> = tokenize(doc.as_ref())
                .into_iter()
                .map(|tok| {
                    let next = vocab.len() as u32;
                    let idx = *vocab.entry(tok).or_insert(next);
                    if idx as usize >= df.len() {
                        df.push(0);
                    }
                    idx
                })
                .collect();
            seen.sort_unstable();
            seen.dedup();
            for idx in seen {
                df[idx as usize] += 1;
            }
        }
        let n = corpus.len().max(1) as f32;
        let idf = df
            .iter()
            .map(|d| ((1.0 + n) / (1.0 + *d as f32)).ln() + 1.0)
            .collect();
        TfIdf {
            vocab,
            idf,
            doc_count: corpus.len(),
        }
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Transform one document into a normalized TF-IDF vector. Terms
    /// outside the fitted vocabulary are ignored.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let mut tf: HashMap<u32, f32> = HashMap::new();
        for tok in tokenize(doc) {
            if let Some(&idx) = self.vocab.get(&tok) {
                *tf.entry(idx).or_insert(0.0) += 1.0;
            }
        }
        let pairs = tf
            .into_iter()
            .map(|(idx, count)| (idx, count * self.idf[idx as usize]))
            .collect();
        SparseVec::from_pairs(pairs)
    }

    /// Fit and transform the whole corpus.
    pub fn fit_transform<S: AsRef<str>>(corpus: &[S]) -> (TfIdf, Vec<SparseVec>) {
        let model = TfIdf::fit(corpus);
        let vecs = corpus.iter().map(|d| model.transform(d.as_ref())).collect();
        (model, vecs)
    }

    /// Fit and transform with the per-document vectorization fanned out
    /// over `workers` threads.
    ///
    /// Fitting stays serial — vocabulary indices are assigned in
    /// first-seen corpus order, which is inherently sequential. The
    /// transform stage is a pure per-document function of the fitted
    /// model (and `SparseVec::from_pairs` sorts by term index before
    /// normalizing, so each vector's float operations run in a fixed
    /// order) — `par_map_indexed` therefore returns bit-identical
    /// vectors to the serial loop at any worker count.
    pub fn fit_transform_par<S: AsRef<str> + Sync>(
        corpus: &[S],
        workers: usize,
    ) -> (TfIdf, Vec<SparseVec>) {
        let model = TfIdf::fit(corpus);
        let vecs = crate::par::par_map_indexed(corpus, workers, |_, d| model.transform(d.as_ref()));
        (model, vecs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_basics() {
        assert_eq!(
            tokenize("Hello, WORLD-2024! a b8"),
            vec!["hello", "world", "2024", "b8"]
        );
        assert!(tokenize("! @ # $").is_empty());
    }

    #[test]
    fn tokenizer_cjk() {
        let toks = tokenize("购买API key");
        assert!(toks.contains(&"购".to_string()));
        assert!(toks.contains(&"买".to_string()));
        assert!(toks.contains(&"api".to_string()));
        assert!(toks.contains(&"key".to_string()));
    }

    #[test]
    fn identical_docs_have_zero_distance() {
        let corpus = ["the gambling slot site", "the gambling slot site"];
        let (_, vecs) = TfIdf::fit_transform(&corpus);
        assert!(cosine_distance(&vecs[0], &vecs[1]) < 1e-6);
    }

    #[test]
    fn disjoint_docs_have_distance_one() {
        let corpus = ["alpha beta gamma", "delta epsilon zeta"];
        let (_, vecs) = TfIdf::fit_transform(&corpus);
        assert!((cosine_distance(&vecs[0], &vecs[1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similar_docs_are_closer_than_dissimilar() {
        let corpus = [
            "online slot betting casino jackpot welcome bonus",
            "online slot betting casino jackpot deposit bonus",
            "openai api key resale contact wechat",
        ];
        let (_, vecs) = TfIdf::fit_transform(&corpus);
        let near = cosine_distance(&vecs[0], &vecs[1]);
        let far = cosine_distance(&vecs[0], &vecs[2]);
        assert!(near < 0.3, "near = {near}");
        assert!(far > 0.8, "far = {far}");
        assert!(near < far);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        // "common" appears in all docs; "rare" in one.
        let corpus = ["common rare", "common x1", "common x2", "common x3"];
        let model = TfIdf::fit(&corpus);
        let v = model.transform("common rare");
        // The vector has two entries; the rare term must dominate.
        assert_eq!(v.nnz(), 2);
        let rare_idx = model.vocab["rare"];
        let common_idx = model.vocab["common"];
        let weight = |idx: u32| {
            v.entries
                .iter()
                .find(|(i, _)| *i == idx)
                .map(|(_, w)| *w)
                .unwrap()
        };
        assert!(weight(rare_idx) > weight(common_idx));
    }

    #[test]
    fn oov_terms_ignored() {
        let model = TfIdf::fit(&["known words only"]);
        let v = model.transform("unseen vocabulary entirely");
        assert!(v.is_empty());
    }

    #[test]
    fn vectors_are_unit_norm() {
        let (_, vecs) = TfIdf::fit_transform(&["a few words here", "other words there"]);
        for v in &vecs {
            let norm: f32 = v.entries.iter().map(|(_, w)| w * w).sum();
            assert!((norm - 1.0).abs() < 1e-5, "norm² = {norm}");
        }
    }

    #[test]
    fn empty_doc_is_empty_vector() {
        let model = TfIdf::fit(&["something"]);
        assert!(model.transform("").is_empty());
        // Distance to anything is 1 by convention (no shared terms).
        let v = model.transform("something");
        assert!((cosine_distance(&model.transform(""), &v) - 1.0).abs() < 1e-6);
    }
}
