//! Deterministic data-parallel map.
//!
//! The analysis stages (sensitive scan, content typing, TF-IDF
//! vectorization) are embarrassingly parallel per item, but the CI
//! determinism gate byte-diffs their downstream figures — so any
//! parallel execution must be *provably* order-identical to the serial
//! loop. [`par_map_indexed`] gives exactly that contract:
//!
//! 1. Work is partitioned round-robin by index (`skip(w).step_by(n)`),
//!    the same scheme as `C2Scanner::scan_parallel` — the assignment of
//!    items to workers is a pure function of `(index, workers)`, never
//!    of thread timing.
//! 2. Each worker maps its items with the caller's function and tags
//!    every result with the item's original index.
//! 3. Results are merged by sorting on that index, so the output is
//!    `items.map(f)` in input order, regardless of which worker
//!    finished first.
//!
//! The only way a schedule can leak into the result is through `f`
//! itself (shared mutable state, I/O ordering); callers pass pure
//! per-item functions.

/// Default worker count for data-parallel stages: the machine's
/// available parallelism, or 1 if it cannot be determined. Results are
/// worker-count-invariant everywhere this is used, so the value only
/// affects speed.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `workers` scoped threads, returning
/// results in input order. `workers` is clamped to `[1, items.len()]`
/// like `scan_parallel`; `workers == 1` (or one item) runs inline with
/// no thread overhead.
pub fn par_map_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_named(items, workers, "", f)
}

/// [`par_map_indexed`] with a trace label: when event tracing is on,
/// each worker's whole slice runs under a `label[w]` trace span linked
/// child-of the calling thread's current span, so the fork shows up as
/// one connected tree in the Chrome trace and the critical-path walk
/// can attribute stall time to the slowest worker. An empty label (or
/// tracing off) adds nothing to the hot loop.
pub fn par_map_named<T, R, F>(items: &[T], workers: usize, label: &str, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        let _span = if label.is_empty() {
            fw_obs::TraceSpan::inert()
        } else {
            fw_obs::trace_span_arg(label, 0)
        };
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let f = &f;
    let fork = if label.is_empty() {
        0
    } else {
        fw_obs::current_trace_span()
    };
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let _span = if label.is_empty() {
                        fw_obs::TraceSpan::inert()
                    } else {
                        fw_obs::trace_span_child_of(fork, label, w as u64)
                    };
                    items
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, t)| (i, f(i, t)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        let mut tagged: Vec<(usize, R)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map workers do not panic"))
            .collect();
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    })
    .expect("par_map workers do not panic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_input_ordered_at_any_worker_count() {
        let items: Vec<u32> = (0..103).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| u64::from(*v) * 3 + i as u64)
            .collect();
        for workers in [1, 2, 3, 8, 16, 64, 200] {
            let par = par_map_indexed(&items, workers, |i, v| u64::from(*v) * 3 + i as u64);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        assert_eq!(
            par_map_indexed(&[] as &[u8], 8, |_, v| *v),
            Vec::<u8>::new()
        );
        assert_eq!(par_map_indexed(&[7u8], 8, |i, v| (i, *v)), vec![(0, 7)]);
    }

    #[test]
    fn workers_see_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map_indexed(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }
}
