//! Content typing (§3.4): JSON, HTML, Plaintext, Others.
//!
//! "These types provide rough clues about function purposes. JSON often
//! indicates API responses, HTML suggests webpage generation, and
//! Plaintext may contain logs or textual output" — the classifier mirrors
//! that intent: structural sniffing first (with a lightweight JSON walk,
//! not a full parser), markup detection second, script/XML/PHP into
//! Others, everything else Plaintext.

/// The four §3.4 content buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentType {
    Json,
    Html,
    Plaintext,
    Others,
}

impl ContentType {
    pub const ALL: [ContentType; 4] = [
        ContentType::Json,
        ContentType::Html,
        ContentType::Plaintext,
        ContentType::Others,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ContentType::Json => "JSON",
            ContentType::Html => "HTML",
            ContentType::Plaintext => "Plaintext",
            ContentType::Others => "Others",
        }
    }

    /// Classify a response body (optionally hinted by a Content-Type
    /// header value).
    pub fn classify(body: &str, content_type_header: Option<&str>) -> ContentType {
        if let Some(ct) = content_type_header {
            let ct = ct.to_ascii_lowercase();
            if ct.contains("json") {
                return ContentType::Json;
            }
            if ct.contains("html") {
                return ContentType::Html;
            }
            if ct.contains("javascript") || ct.contains("xml") || ct.contains("php") {
                return ContentType::Others;
            }
            if ct.contains("text/plain") {
                return ContentType::Plaintext;
            }
        }
        let t = body.trim_start();
        if looks_like_json(t) {
            return ContentType::Json;
        }
        let lower_head: String = t.chars().take(256).collect::<String>().to_ascii_lowercase();
        if lower_head.starts_with("<!doctype html")
            || lower_head.starts_with("<html")
            || lower_head.contains("<html")
            || (lower_head.starts_with('<') && lower_head.contains("<body"))
            || lower_head.contains("<head>")
        {
            return ContentType::Html;
        }
        if lower_head.starts_with("<?xml")
            || lower_head.starts_with("<?php")
            || lower_head.starts_with("(function")
            || lower_head.starts_with("function ")
            || lower_head.starts_with("var ")
            || lower_head.starts_with("const ")
            || lower_head.starts_with("import ")
        {
            return ContentType::Others;
        }
        if body.trim().is_empty() {
            return ContentType::Plaintext;
        }
        ContentType::Plaintext
    }
}

/// Cheap structural JSON check: balanced braces/brackets with quoted keys
/// near the start. Intentionally permissive — PDNS-era API responses are
/// messy.
fn looks_like_json(t: &str) -> bool {
    let Some(first) = t.chars().next() else {
        return false;
    };
    if first != '{' && first != '[' {
        return false;
    }
    // `[INFO] ...` log lines also start with '[' and happen to balance;
    // require the array's first element to look like a JSON value.
    if first == '[' {
        let inner = t[1..].trim_start();
        let plausible = inner.starts_with(['{', '[', '"', ']', 't', 'f', 'n', '-'])
            || inner.chars().next().is_some_and(|c| c.is_ascii_digit());
        if !plausible {
            return false;
        }
    }
    // Balanced-delimiter walk outside of strings.
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in t.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_detection() {
        assert_eq!(
            ContentType::classify(r#"{"ok":true,"n":3}"#, None),
            ContentType::Json
        );
        assert_eq!(ContentType::classify(r#"[1,2,3]"#, None), ContentType::Json);
        assert_eq!(
            ContentType::classify(r#"  {"nested":{"a":[1,"x"]}} "#, None),
            ContentType::Json
        );
        // Unbalanced → not JSON.
        assert_eq!(
            ContentType::classify(r#"{"broken": "#, None),
            ContentType::Plaintext
        );
    }

    #[test]
    fn html_detection() {
        for body in [
            "<!DOCTYPE html><html><body>x</body></html>",
            "<html><head></head></html>",
            "  <HTML><BODY>caps</BODY></HTML>",
        ] {
            assert_eq!(
                ContentType::classify(body, None),
                ContentType::Html,
                "{body}"
            );
        }
    }

    #[test]
    fn others_detection() {
        assert_eq!(
            ContentType::classify("<?xml version=\"1.0\"?><r/>", None),
            ContentType::Others
        );
        assert_eq!(
            ContentType::classify("(function(){})();", None),
            ContentType::Others
        );
        assert_eq!(
            ContentType::classify("var a = 1;", None),
            ContentType::Others
        );
        assert_eq!(
            ContentType::classify("<?php echo 'x'; ?>", None),
            ContentType::Others
        );
    }

    #[test]
    fn log_lines_with_brackets_are_plaintext() {
        // Regression: `[INFO] ...` balances its brackets but is not JSON.
        for body in [
            "[INFO] job startup complete\n[INFO] healthcheck ok\n",
            "[DEBUG] cache warm, 0 pending jobs",
            "[WARN] retrying",
        ] {
            assert_eq!(
                ContentType::classify(body, None),
                ContentType::Plaintext,
                "{body}"
            );
        }
        // Real JSON arrays still detected.
        assert_eq!(
            ContentType::classify(r#"["a","b"]"#, None),
            ContentType::Json
        );
        assert_eq!(ContentType::classify("[1, 2]", None), ContentType::Json);
        assert_eq!(ContentType::classify("[]", None), ContentType::Json);
        assert_eq!(ContentType::classify("[null]", None), ContentType::Json);
    }

    #[test]
    fn plaintext_fallback() {
        assert_eq!(
            ContentType::classify("INFO: service started", None),
            ContentType::Plaintext
        );
        assert_eq!(ContentType::classify("", None), ContentType::Plaintext);
    }

    #[test]
    fn header_hint_wins() {
        assert_eq!(
            ContentType::classify("not really json", Some("application/json")),
            ContentType::Json
        );
        assert_eq!(
            ContentType::classify("plain", Some("text/html; charset=utf-8")),
            ContentType::Html
        );
        assert_eq!(
            ContentType::classify("x", Some("application/javascript")),
            ContentType::Others
        );
    }
}
