//! Statistics utilities for the usage analyses.
//!
//! * log10-binned histograms and CDFs (Figure 5's request-count
//!   distribution),
//! * top-k concentration shares (Table 2's "Top10" columns),
//! * Shannon entropy (the DESIGN.md ablation comparing top-10 share with
//!   an entropy-based concentration metric).

/// Empirical CDF points `(value, fraction ≤ value)` over sorted data.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in cdf input"));
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let v = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == v {
            j += 1;
        }
        out.push((v, j as f64 / n));
        i = j;
    }
    out
}

/// Fraction of values ≤ x (empirical CDF evaluated at x).
pub fn cdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| **v <= x).count() as f64 / values.len() as f64
}

/// One histogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Bin start (in log10 space for [`log10_histogram`]).
    pub lo: f64,
    pub hi: f64,
    pub count: u64,
}

/// Histogram of `log10(value)` with `bins_per_decade` resolution, like
/// Figure 5's x-axis.
pub fn log10_histogram(values: &[f64], bins_per_decade: u32) -> Vec<Bin> {
    assert!(bins_per_decade > 0, "need at least one bin per decade");
    if values.is_empty() {
        return Vec::new();
    }
    let logs: Vec<f64> = values
        .iter()
        .filter(|v| **v > 0.0)
        .map(|v| v.log10())
        .collect();
    if logs.is_empty() {
        return Vec::new();
    }
    let width = 1.0 / f64::from(bins_per_decade);
    let min_bin = (logs.iter().cloned().fold(f64::INFINITY, f64::min) / width).floor() as i64;
    let max_bin = (logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / width).floor() as i64;
    let mut counts = vec![0u64; (max_bin - min_bin + 1) as usize];
    let last = counts.len() - 1;
    for l in &logs {
        let b = ((l / width).floor() as i64 - min_bin) as usize;
        counts[b.min(last)] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| Bin {
            lo: (min_bin + i as i64) as f64 * width,
            hi: (min_bin + i as i64 + 1) as f64 * width,
            count,
        })
        .collect()
}

/// Share of the total contributed by the `k` largest values (Table 2's
/// Top10 metric with `k = 10`).
pub fn top_k_share(values: &[u64], k: usize) -> f64 {
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = sorted.iter().take(k).sum();
    top as f64 / total as f64
}

/// Shannon entropy (bits) of a count distribution; 0 for a single spike.
pub fn entropy_bits(values: &[u64]) -> f64 {
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    values
        .iter()
        .filter(|v| **v > 0)
        .map(|v| {
            let p = *v as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// p-th percentile (0–100) by nearest-rank on sorted copies.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p));
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let vals = [1.0, 2.0, 2.0, 4.0];
        let pts = cdf_points(&vals);
        assert_eq!(pts, vec![(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]);
        assert_eq!(cdf_at(&vals, 2.0), 0.75);
        assert_eq!(cdf_at(&vals, 0.5), 0.0);
        assert_eq!(cdf_at(&vals, 100.0), 1.0);
    }

    #[test]
    fn log_histogram_bins() {
        // Values 1..10 and 100 → decades 0 and 2.
        let vals = [1.0, 2.0, 5.0, 100.0];
        let bins = log10_histogram(&vals, 1);
        let total: u64 = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        assert_eq!(bins.first().unwrap().lo, 0.0);
        assert_eq!(bins.last().unwrap().count, 1); // the 100
    }

    #[test]
    fn log_histogram_ignores_nonpositive() {
        let bins = log10_histogram(&[0.0, -5.0], 2);
        assert!(bins.is_empty());
    }

    #[test]
    fn top_k_concentration() {
        // One giant, nine minor: top-1 share is high.
        let mut values = vec![1u64; 9];
        values.push(991);
        assert!((top_k_share(&values, 1) - 0.991).abs() < 1e-9);
        assert_eq!(top_k_share(&values, 10), 1.0);
        assert_eq!(top_k_share(&[], 10), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy_bits(&[100]), 0.0);
        let uniform = vec![10u64; 16];
        assert!((entropy_bits(&uniform) - 4.0).abs() < 1e-9);
        // Concentration lowers entropy.
        assert!(entropy_bits(&[97, 1, 1, 1]) < entropy_bits(&[25, 25, 25, 25]));
    }

    #[test]
    fn percentile_and_mean() {
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&vals, 50.0), 3.0);
        assert_eq!(percentile(&vals, 0.0), 1.0);
        assert_eq!(percentile(&vals, 100.0), 5.0);
        assert_eq!(mean(&vals), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
