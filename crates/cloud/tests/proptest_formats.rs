//! Property tests for Table 1 formats and the platform's domain minting.

use fw_cloud::formats::{format_for, identify, UrlParts};
use fw_types::{Fqdn, ProviderId};
use proptest::prelude::*;

fn arb_label(min: usize, max: usize) -> impl Strategy<Value = String> {
    proptest::string::string_regex(&format!("[a-z][a-z0-9]{{{},{}}}", min - 1, max - 1))
        .expect("valid strategy regex")
}

fn arb_fixed(alphabet: &str, len: usize) -> impl Strategy<Value = String> {
    proptest::string::string_regex(&format!("[{alphabet}]{{{len}}}")).expect("valid")
}

fn region_for(provider: ProviderId) -> impl Strategy<Value = String> {
    let regions = fw_cloud::provider::spec(provider).regions;
    proptest::sample::select(regions.iter().map(|r| r.to_string()).collect::<Vec<_>>())
}

fn arb_parts(provider: ProviderId) -> impl Strategy<Value = UrlParts> {
    let random_len = format_for(provider).random_len.max(6);
    let alphabet = if provider == ProviderId::Aliyun {
        "a-z"
    } else {
        "a-z0-9"
    };
    (
        arb_label(2, 12),
        arb_label(2, 12),
        1_000_000_000u64..=1_399_999_999,
        arb_fixed(alphabet, random_len),
        region_for(provider),
    )
        .prop_map(|(fname, pname, uid, random, region)| UrlParts {
            fname,
            pname,
            user_id: format!("{uid:010}"),
            random,
            region,
        })
}

proptest! {
    /// Minted domains always match their own format, and identification
    /// maps them back — except Azure, which is excluded by design.
    #[test]
    fn generate_then_identify_roundtrip(
        (idx, parts) in (0usize..10).prop_flat_map(|idx| {
            arb_parts(ProviderId::ALL[idx]).prop_map(move |p| (idx, p))
        }),
    ) {
        let provider = ProviderId::ALL[idx];
        let format = format_for(provider);
        let (fqdn, path) = format.generate(&parts);
        prop_assert!(format.matches(&fqdn), "{fqdn}");
        prop_assert!(path.starts_with('/'));
        let expect = provider.dns_identifiable().then_some(provider);
        prop_assert_eq!(identify(&fqdn), expect, "{}", fqdn);
    }

    /// Identification never panics and never misattributes arbitrary
    /// domain-shaped noise.
    #[test]
    fn identify_total_on_noise(labels in proptest::collection::vec("[a-z0-9-]{1,20}", 2..6)) {
        let cleaned: Vec<String> = labels
            .into_iter()
            .map(|l| l.trim_matches('-').to_string())
            .filter(|l| !l.is_empty())
            .collect();
        prop_assume!(cleaned.len() >= 2);
        let name = cleaned.join(".");
        if let Ok(fqdn) = Fqdn::parse(&name) {
            if let Some(provider) = identify(&fqdn) {
                // A claim of identification must be backed by the format.
                prop_assert!(format_for(provider).matches(&fqdn), "{}: {}", provider, fqdn);
            }
        }
    }

    /// Region extraction returns a region actually embedded in the
    /// domain string.
    #[test]
    fn extracted_region_is_substring(idx in 0usize..10, seed in 0u64..1000) {
        let provider = ProviderId::ALL[idx];
        let spec = fw_cloud::provider::spec(provider);
        let region = spec.regions[(seed as usize) % spec.regions.len()];
        let random_alphabet = if provider == ProviderId::Aliyun {
            "abcdefghij"
        } else {
            "a1b2c3d4e5"
        };
        let parts = UrlParts {
            fname: "myfn".into(),
            pname: "proj".into(),
            user_id: format!("{:010}", 1_300_000_000 + seed),
            random: random_alphabet
                .chars()
                .cycle()
                .take(format_for(provider).random_len.max(8))
                .collect(),
            region: region.to_string(),
        };
        let format = format_for(provider);
        let (fqdn, _) = format.generate(&parts);
        if let Some(extracted) = format.region_of(&fqdn) {
            prop_assert!(
                fqdn.as_str().contains(&extracted) || extracted.contains(region),
                "{fqdn} vs {extracted}"
            );
        }
    }
}

/// Mutating any single byte of a valid Tencent domain's digits/shape
/// breaks the match or keeps it valid — never panics.
#[test]
fn mutation_robustness() {
    let fqdn = "1300000001-abcde12345-ap-guangzhou.scf.tencentcs.com";
    let format = format_for(ProviderId::Tencent);
    for i in 0..fqdn.len() {
        for b in [b'!', b'A', b'0', b'.', b'-'] {
            let mut bytes = fqdn.as_bytes().to_vec();
            bytes[i] = b;
            if let Ok(s) = String::from_utf8(bytes) {
                if let Ok(f) = Fqdn::parse(&s) {
                    let _ = format.matches(&f);
                    let _ = identify(&f);
                }
            }
        }
    }
}
