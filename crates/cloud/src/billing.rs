//! The serverless price model (§2.3) and Denial-of-Wallet arithmetic.
//!
//! Providers charge per invocation plus compute in GB-seconds. AWS's
//! published numbers are used verbatim (1M free requests and 400k GB-s per
//! month; $0.20 per million requests; $0.0000166667 per GB-s); other
//! providers get approximations in the same shape. The DoW threat from
//! Finding 5 is "unauthorized access drives unexpected charges" — the
//! ledger makes that computable.

use fw_types::{Fqdn, ProviderId};
use std::collections::HashMap;

/// Pricing for one provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceModel {
    pub free_requests_per_month: u64,
    pub free_gb_seconds_per_month: f64,
    /// USD per million requests beyond the free tier.
    pub price_per_million_requests: f64,
    /// USD per GB-second beyond the free tier.
    pub price_per_gb_second: f64,
}

impl PriceModel {
    /// The published AWS Lambda numbers (§2.3).
    pub const AWS: PriceModel = PriceModel {
        free_requests_per_month: 1_000_000,
        free_gb_seconds_per_month: 400_000.0,
        price_per_million_requests: 0.20,
        price_per_gb_second: 0.000_016_666_7,
    };

    /// Per-provider model. Non-AWS providers are approximations with the
    /// same structure (the paper only quotes AWS and Tencent's free
    /// trial).
    pub fn for_provider(provider: ProviderId) -> PriceModel {
        match provider {
            ProviderId::Aws => PriceModel::AWS,
            // Tencent: free trial for new users; afterwards similar to AWS.
            ProviderId::Tencent => PriceModel {
                free_requests_per_month: 1_000_000,
                free_gb_seconds_per_month: 400_000.0,
                price_per_million_requests: 0.19,
                price_per_gb_second: 0.000_016_0,
            },
            ProviderId::Google | ProviderId::Google2 => PriceModel {
                free_requests_per_month: 2_000_000,
                free_gb_seconds_per_month: 400_000.0,
                price_per_million_requests: 0.40,
                price_per_gb_second: 0.000_025_0,
            },
            _ => PriceModel {
                free_requests_per_month: 1_000_000,
                free_gb_seconds_per_month: 400_000.0,
                price_per_million_requests: 0.20,
                price_per_gb_second: 0.000_016_666_7,
            },
        }
    }

    /// Monthly bill for a usage total.
    pub fn monthly_cost(&self, usage: &UsageMeter) -> Invoice {
        let billable_requests = usage
            .invocations
            .saturating_sub(self.free_requests_per_month);
        let billable_gbs = (usage.gb_seconds - self.free_gb_seconds_per_month).max(0.0);
        let request_cost = billable_requests as f64 / 1_000_000.0 * self.price_per_million_requests;
        let compute_cost = billable_gbs * self.price_per_gb_second;
        Invoice {
            invocations: usage.invocations,
            gb_seconds: usage.gb_seconds,
            request_cost_usd: request_cost,
            compute_cost_usd: compute_cost,
            total_usd: request_cost + compute_cost,
            within_free_tier: billable_requests == 0 && billable_gbs == 0.0,
        }
    }

    /// Denial-of-Wallet estimate: cost of an attacker issuing
    /// `requests_per_second` for `seconds`, against a function with
    /// `memory_mb` and `exec_ms` per invocation.
    pub fn dow_cost(
        &self,
        requests_per_second: f64,
        seconds: f64,
        memory_mb: u32,
        exec_ms: u64,
    ) -> Invoice {
        let invocations = (requests_per_second * seconds) as u64;
        let gb_seconds =
            invocations as f64 * (memory_mb as f64 / 1024.0) * (exec_ms as f64 / 1000.0);
        self.monthly_cost(&UsageMeter {
            invocations,
            gb_seconds,
        })
    }
}

/// Accumulated usage for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UsageMeter {
    pub invocations: u64,
    pub gb_seconds: f64,
}

/// One computed bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Invoice {
    pub invocations: u64,
    pub gb_seconds: f64,
    pub request_cost_usd: f64,
    pub compute_cost_usd: f64,
    pub total_usd: f64,
    pub within_free_tier: bool,
}

/// Per-function usage ledger maintained by the platform.
#[derive(Debug, Default)]
pub struct BillingLedger {
    usage: HashMap<Fqdn, UsageMeter>,
}

impl BillingLedger {
    pub fn new() -> BillingLedger {
        BillingLedger::default()
    }

    /// Meter one invocation.
    pub fn record(&mut self, fqdn: &Fqdn, memory_mb: u32, exec_ms: u64) {
        let meter = self.usage.entry(fqdn.clone()).or_default();
        meter.invocations += 1;
        meter.gb_seconds += (memory_mb as f64 / 1024.0) * (exec_ms as f64 / 1000.0);
    }

    pub fn usage(&self, fqdn: &Fqdn) -> UsageMeter {
        self.usage.get(fqdn).copied().unwrap_or_default()
    }

    /// Total invocations across all functions.
    pub fn total_invocations(&self) -> u64 {
        self.usage.values().map(|u| u.invocations).sum()
    }

    pub fn function_count(&self) -> usize {
        self.usage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    #[test]
    fn aws_free_tier_covers_small_usage() {
        let usage = UsageMeter {
            invocations: 500_000,
            gb_seconds: 100_000.0,
        };
        let bill = PriceModel::AWS.monthly_cost(&usage);
        assert!(bill.within_free_tier);
        assert_eq!(bill.total_usd, 0.0);
    }

    #[test]
    fn aws_pricing_matches_published_numbers() {
        // 3M requests (2M billable) and 1M GB-s (600k billable).
        let usage = UsageMeter {
            invocations: 3_000_000,
            gb_seconds: 1_000_000.0,
        };
        let bill = PriceModel::AWS.monthly_cost(&usage);
        assert!(!bill.within_free_tier);
        assert!((bill.request_cost_usd - 0.40).abs() < 1e-9);
        assert!((bill.compute_cost_usd - 600_000.0 * 0.000_016_666_7).abs() < 1e-6);
    }

    #[test]
    fn ledger_accumulates_gb_seconds() {
        let mut ledger = BillingLedger::new();
        let f = fq("x.lambda-url.us-east-1.on.aws");
        // 512 MB × 2000 ms = 1 GB-s per invocation.
        ledger.record(&f, 512, 2000);
        ledger.record(&f, 512, 2000);
        let usage = ledger.usage(&f);
        assert_eq!(usage.invocations, 2);
        assert!((usage.gb_seconds - 2.0).abs() < 1e-9);
        assert_eq!(ledger.total_invocations(), 2);
    }

    #[test]
    fn dow_attack_exceeds_free_tier_quickly() {
        // 100 rps for a day against a 1 GB / 1 s function:
        // 8.64M requests and 8.64M GB-s.
        let bill = PriceModel::AWS.dow_cost(100.0, 86_400.0, 1024, 1000);
        assert!(!bill.within_free_tier);
        assert!(bill.total_usd > 100.0, "total {}", bill.total_usd);
    }

    #[test]
    fn every_provider_has_a_model() {
        for p in ProviderId::ALL {
            let m = PriceModel::for_provider(p);
            assert!(m.price_per_gb_second > 0.0, "{p}");
            assert!(m.free_requests_per_month > 0, "{p}");
        }
    }
}
